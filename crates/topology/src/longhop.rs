//! Long Hop networks (Tomic, ANCS 2013): "optimal networks from error
//! correcting codes".
//!
//! Tomic's construction is a Cayley graph over `Z_2^D`: switches are the
//! `2^D` binary vectors of length `D`, and the generator set contains the `D`
//! hypercube generators (unit vectors) plus extra "long hop" generators taken
//! from the generator matrix of a good binary code, which adds long chords and
//! pushes the bisection bandwidth toward the optimum for the degree.
//!
//! The exact code tables from the paper are not public, so this module keeps
//! the construction (Cayley graph over `Z_2^D`, hypercube generators + extra
//! long-hop generators) but chooses the extra generators with a deterministic
//! greedy rule that maximizes the minimum pairwise Hamming distance of the
//! generator set — the coding-theoretic criterion Tomic's codes optimize.
//! The substitution is recorded in `DESIGN.md`.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`long_hop`]: each of the `degree`
/// generators is a distinct nonzero XOR mask, contributing exactly `2^dim/2`
/// edges, so the Cayley graph is `degree`-regular by construction.
pub fn long_hop_meta(dim: usize, degree: usize, servers_per_switch: usize) -> TopoMeta {
    let n = 1usize << dim;
    TopoMeta {
        name: "Long Hop".into(),
        params: format!("dim={dim}, degree={degree}"),
        switches: n,
        servers: n * servers_per_switch,
        server_switches: if servers_per_switch > 0 { n } else { 0 },
        links: Some(n * degree / 2),
        degree: Some(degree),
    }
}

/// Chooses `extra` additional generators (beyond the unit vectors) by greedily
/// maximizing the minimum Hamming distance to all previously chosen
/// generators, breaking ties toward higher weight then smaller value.
fn choose_long_hop_generators(dim: usize, extra: usize) -> Vec<u64> {
    let mut gens: Vec<u64> = (0..dim).map(|b| 1u64 << b).collect();
    let space = 1u64 << dim;
    for _ in 0..extra {
        let mut best: Option<(u32, u32, u64)> = None; // (min dist, weight, value)
        for cand in 1..space {
            if gens.contains(&cand) {
                continue;
            }
            let min_dist = gens
                .iter()
                .map(|&g| (g ^ cand).count_ones())
                .min()
                .unwrap_or(u32::MAX);
            let weight = cand.count_ones();
            let key = (min_dist, weight, u64::MAX - cand);
            if best.is_none_or(|(d, w, v)| key > (d, w, v)) {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, inv)) => gens.push(u64::MAX - inv),
            None => break,
        }
    }
    gens
}

/// Builds a Long Hop network over `Z_2^dim` with total switch degree `degree`
/// (`degree >= dim`; the first `dim` generators are the hypercube generators)
/// and `servers_per_switch` servers per switch.
pub fn long_hop(dim: usize, degree: usize, servers_per_switch: usize) -> Topology {
    assert!((2..=16).contains(&dim), "dimension out of range");
    assert!(degree >= dim, "degree must be at least the dimension");
    assert!(
        degree < (1usize << dim),
        "degree must be smaller than the node count"
    );
    let gens = choose_long_hop_generators(dim, degree - dim);
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for u in 0..n as u64 {
        for &gen in &gens {
            let v = u ^ gen;
            if v > u {
                g.add_unit_edge(u as usize, v as usize);
            }
        }
    }
    Topology::with_uniform_servers(
        "Long Hop",
        format!("dim={dim}, degree={degree}"),
        g,
        servers_per_switch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::{average_path_length, diameter};

    #[test]
    fn degree_and_counts() {
        let t = long_hop(5, 8, 1);
        assert_eq!(t.num_switches(), 32);
        for u in 0..32 {
            assert_eq!(t.graph.degree(u), 8);
        }
        assert_eq!(t.num_links(), 32 * 8 / 2);
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn pure_hypercube_when_degree_equals_dim() {
        let t = long_hop(4, 4, 1);
        let h = crate::hypercube::hypercube(4, 1);
        assert_eq!(t.num_links(), h.num_links());
        assert_eq!(diameter(&t.graph), Some(4));
    }

    #[test]
    fn long_hops_shorten_paths() {
        let cube = long_hop(6, 6, 1);
        let lh = long_hop(6, 9, 1);
        let apl_cube = average_path_length(&cube.graph).unwrap();
        let apl_lh = average_path_length(&lh.graph).unwrap();
        assert!(
            apl_lh < apl_cube,
            "long hops should shorten average paths: {apl_lh} vs {apl_cube}"
        );
        assert!(diameter(&lh.graph).unwrap() < diameter(&cube.graph).unwrap());
    }

    #[test]
    fn generator_choice_is_deterministic() {
        let a = choose_long_hop_generators(5, 3);
        let b = choose_long_hop_generators(5, 3);
        assert_eq!(a, b);
        // first extra generator after the unit vectors should have weight > 1
        assert!(a[5].count_ones() > 1);
    }

    #[test]
    fn cayley_graph_is_vertex_transitive_in_degree() {
        let t = long_hop(7, 10, 1);
        let d0 = t.graph.degree(0);
        for u in 0..t.num_switches() {
            assert_eq!(t.graph.degree(u), d0);
        }
    }
}
