//! Xpander topology (Valadarsky, Dinitz & Schapira, HotNets 2015).
//!
//! The paper cites Xpander as a recent confirmation that expander-based
//! designs win with scale; this generator provides it as an additional
//! expander family alongside Jellyfish, Long Hop and Slim Fly.
//!
//! Construction: an Xpander is built by *lifting* a complete graph `K_{d+1}`:
//! each of the `d + 1` meta-nodes becomes a group of `lift` switches, and for
//! every meta-edge a random perfect matching connects the two groups. Every
//! switch has exactly `d` inter-switch links, and the result is a good
//! expander with high probability.

use crate::topology::Topology;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tb_graph::connectivity::is_connected;
use tb_graph::Graph;

/// Builds an Xpander with meta-degree `d` (so `d + 1` groups), `lift` switches
/// per group and `servers_per_switch` servers per switch. Retries the random
/// lift until the graph is connected.
pub fn xpander(d: usize, lift: usize, servers_per_switch: usize, seed: u64) -> Topology {
    assert!(d >= 2, "meta-degree must be at least 2");
    assert!(lift >= 1, "lift must be at least 1");
    let groups = d + 1;
    let n = groups * lift;
    for attempt in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9e37)));
        let mut g = Graph::new(n);
        let node = |grp: usize, i: usize| grp * lift + i;
        for g1 in 0..groups {
            for g2 in g1 + 1..groups {
                // Random perfect matching between the two groups.
                let mut perm: Vec<usize> = (0..lift).collect();
                perm.shuffle(&mut rng);
                for (i, &j) in perm.iter().enumerate() {
                    g.add_unit_edge(node(g1, i), node(g2, j));
                }
            }
        }
        if is_connected(&g) {
            return Topology::with_uniform_servers(
                "Xpander",
                format!("d={d}, lift={lift}, seed={seed}"),
                g,
                servers_per_switch,
            );
        }
    }
    panic!("failed to build a connected Xpander after 100 lifts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::shortest_path::average_path_length;

    #[test]
    fn xpander_is_d_regular() {
        let t = xpander(5, 8, 3, 1);
        assert_eq!(t.num_switches(), 48);
        assert_eq!(t.num_links(), 48 * 5 / 2);
        for u in 0..t.num_switches() {
            assert_eq!(t.graph.degree(u), 5);
        }
        assert_eq!(t.num_servers(), 48 * 3);
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn lift_one_is_a_complete_graph() {
        let t = xpander(4, 1, 1, 3);
        assert_eq!(t.num_switches(), 5);
        assert_eq!(t.num_links(), 10);
    }

    #[test]
    fn no_intra_group_links() {
        let d = 4;
        let lift = 6;
        let t = xpander(d, lift, 1, 9);
        for e in t.graph.edges() {
            assert_ne!(e.u / lift, e.v / lift, "intra-group link {e:?}");
        }
    }

    #[test]
    fn xpander_paths_are_short_like_a_random_graph() {
        let t = xpander(6, 10, 1, 5);
        let rnd = tb_graph::random::random_regular_graph(70, 6, 5);
        let apl_x = average_path_length(&t.graph).unwrap();
        let apl_r = average_path_length(&rnd).unwrap();
        assert!((apl_x / apl_r - 1.0).abs() < 0.25, "{apl_x} vs {apl_r}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xpander(4, 5, 1, 11);
        let b = xpander(4, 5, 1, 11);
        let ea: Vec<_> = a.graph.edges().iter().map(|e| (e.u, e.v)).collect();
        let eb: Vec<_> = b.graph.edges().iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(ea, eb);
    }
}
