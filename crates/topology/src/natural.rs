//! Stand-ins for the paper's 66 "natural networks" (food webs, social
//! networks, ...) used in the cut-vs-throughput study (§III-B, Table II).
//!
//! The original datasets are not redistributable, so this module generates a
//! diverse collection of synthetic graphs with the qualitative property the
//! paper relies on — a denser core with sparser edges — using standard
//! generative models (documented substitution, see `DESIGN.md`).

use crate::topology::Topology;
use tb_graph::connectivity::is_connected;
use tb_graph::random::{barabasi_albert, erdos_renyi, stochastic_block_model, watts_strogatz};
use tb_graph::Graph;

fn largest_component(g: &Graph) -> Graph {
    if is_connected(g) {
        return g.clone();
    }
    let comp = tb_graph::connectivity::connected_components(g);
    let num = comp.iter().copied().max().unwrap_or(0) + 1;
    let mut sizes = vec![0usize; num];
    for &c in &comp {
        sizes[c] += 1;
    }
    let big = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i)
        .unwrap();
    let mut remap = vec![usize::MAX; g.num_nodes()];
    let mut next = 0usize;
    for u in 0..g.num_nodes() {
        if comp[u] == big {
            remap[u] = next;
            next += 1;
        }
    }
    let mut out = Graph::new(next);
    for e in g.edges() {
        if comp[e.u] == big && comp[e.v] == big {
            out.add_edge(remap[e.u], remap[e.v], e.cap);
        }
    }
    out
}

/// Generates `count` natural-network stand-ins of varying size and structure,
/// each attached with one traffic endpoint per node. The collection cycles
/// through scale-free (Barabási–Albert), small-world (Watts–Strogatz),
/// community-structured (stochastic block model) and Erdős–Rényi graphs.
pub fn natural_networks(count: usize, seed: u64) -> Vec<Topology> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let s = seed.wrapping_add(i as u64);
        let n = 12 + (i % 8) * 6; // sizes 12..54
        let (name, g) = match i % 4 {
            0 => ("natural/scale-free", barabasi_albert(n, 2 + (i / 4) % 3, s)),
            1 => ("natural/small-world", watts_strogatz(n, 4, 0.2, s)),
            2 => (
                "natural/community",
                stochastic_block_model(n, 2 + i % 3, 0.5, 0.05, s),
            ),
            _ => ("natural/erdos-renyi", erdos_renyi(n, 0.15, s)),
        };
        let g = largest_component(&g);
        if g.num_nodes() < 4 || g.num_edges() < 3 {
            continue;
        }
        out.push(Topology::with_uniform_servers(
            name,
            format!("n={}, instance={i}", g.num_nodes()),
            g,
            1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_connected_diverse_graphs() {
        let nets = natural_networks(16, 11);
        assert!(nets.len() >= 12);
        let mut names: Vec<&str> = nets.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() >= 3, "should produce several model families");
        for t in &nets {
            assert!(is_connected(&t.graph), "{} must be connected", t.describe());
            assert!(t.num_servers() == t.num_switches());
            assert!(t.graph.validate().is_ok());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = natural_networks(8, 5);
        let b = natural_networks(8, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Edge-exact, not just size: the sweep cache requires the same
            // seed to rebuild the same graph in any process.
            let ex: Vec<(usize, usize)> = x.graph.edges().iter().map(|e| (e.u, e.v)).collect();
            let ey: Vec<(usize, usize)> = y.graph.edges().iter().map(|e| (e.u, e.v)).collect();
            assert_eq!(ex, ey, "{}", x.describe());
        }
    }
}
