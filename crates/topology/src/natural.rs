//! Stand-ins for the paper's 66 "natural networks" (food webs, social
//! networks, ...) used in the cut-vs-throughput study (§III-B, Table II).
//!
//! The original datasets are not redistributable, so this module generates a
//! diverse collection of synthetic graphs with the qualitative property the
//! paper relies on — a denser core with sparser edges — using standard
//! generative models (documented substitution, see `DESIGN.md`).
//!
//! Each instance's model family and node count are fixed functions of its
//! index ([`natural_meta`] is construction-free); the generator
//! rejection-samples deterministic sub-seeds until the model produces a
//! connected graph, so the delivered graph always has exactly the advertised
//! node count. (An earlier revision kept the largest component of one draw
//! instead, which made instance sizes — and hence all topology metadata —
//! depend on the random wiring.)

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::connectivity::is_connected;
use tb_graph::random::{barabasi_albert, erdos_renyi, stochastic_block_model, watts_strogatz};
use tb_graph::Graph;

/// Odd multiplier decorrelating the per-attempt sub-seeds (splitmix64's
/// golden-ratio increment).
const ATTEMPT_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Model family and node count of the `index`-th stand-in. Sizes cycle
/// through 12..54 and the four generative models.
fn plan(index: usize) -> (&'static str, usize) {
    let n = 12 + (index % 8) * 6;
    let name = match index % 4 {
        0 => "natural/scale-free",
        1 => "natural/small-world",
        2 => "natural/community",
        _ => "natural/erdos-renyi",
    };
    (name, n)
}

/// Construction-free metadata for [`natural_network`]: the model family and
/// node count are functions of the index alone. Link counts and degrees vary
/// with the random wiring, so they are `None`.
pub fn natural_meta(index: usize) -> TopoMeta {
    let (name, n) = plan(index);
    TopoMeta {
        name: name.into(),
        params: format!("n={n}, instance={index}"),
        switches: n,
        servers: n,
        server_switches: n,
        links: None,
        degree: None,
    }
}

/// Generates the `index`-th natural-network stand-in: one attempt of the
/// planned model per deterministic sub-seed until the draw is connected.
///
/// # Panics
/// Panics if no connected instance appears within 10 000 attempts (the
/// models and sizes used here connect within a handful of draws).
pub fn natural_network(index: usize, seed: u64) -> Topology {
    let (name, n) = plan(index);
    for attempt in 0u64..10_000 {
        let s = seed
            .wrapping_add(index as u64)
            .wrapping_add(attempt.wrapping_mul(ATTEMPT_STRIDE));
        let g: Graph = match index % 4 {
            0 => barabasi_albert(n, 2 + (index / 4) % 3, s),
            1 => watts_strogatz(n, 4, 0.2, s),
            2 => stochastic_block_model(n, 2 + index % 3, 0.5, 0.05, s),
            _ => erdos_renyi(n, 0.15, s),
        };
        if is_connected(&g) {
            return Topology::with_uniform_servers(name, format!("n={n}, instance={index}"), g, 1);
        }
    }
    panic!("no connected natural network for index {index}, seed {seed}");
}

/// Generates `count` natural-network stand-ins of varying size and structure,
/// each attached with one traffic endpoint per node. The collection cycles
/// through scale-free (Barabási–Albert), small-world (Watts–Strogatz),
/// community-structured (stochastic block model) and Erdős–Rényi graphs.
pub fn natural_networks(count: usize, seed: u64) -> Vec<Topology> {
    (0..count).map(|i| natural_network(i, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_connected_diverse_graphs() {
        let nets = natural_networks(16, 11);
        assert_eq!(nets.len(), 16);
        let mut names: Vec<&str> = nets.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4, "should produce all four model families");
        for t in &nets {
            assert!(is_connected(&t.graph), "{} must be connected", t.describe());
            assert!(t.num_servers() == t.num_switches());
            assert!(t.graph.validate().is_ok());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = natural_networks(8, 5);
        let b = natural_networks(8, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Edge-exact, not just size: the sweep cache requires the same
            // seed to rebuild the same graph in any process.
            let ex: Vec<(usize, usize)> = x.graph.edges().iter().map(|e| (e.u, e.v)).collect();
            let ey: Vec<(usize, usize)> = y.graph.edges().iter().map(|e| (e.u, e.v)).collect();
            assert_eq!(ex, ey, "{}", x.describe());
        }
    }

    #[test]
    fn metadata_matches_construction() {
        for index in 0..24 {
            for seed in [1u64, 7, 99] {
                let meta = natural_meta(index);
                let t = natural_network(index, seed);
                assert_eq!(meta.name, t.name, "index {index}");
                assert_eq!(meta.params, t.params, "index {index}");
                assert_eq!(meta.switches, t.num_switches(), "index {index}");
                assert_eq!(meta.servers, t.num_servers(), "index {index}");
            }
        }
    }

    #[test]
    fn instances_are_independent_of_count() {
        // Instance i is the same graph whether generated alone or as part of
        // a larger collection (the sweep cache keys cells by index alone).
        let all = natural_networks(6, 3);
        for (i, t) in all.iter().enumerate() {
            let solo = natural_network(i, 3);
            let ea: Vec<(usize, usize)> = t.graph.edges().iter().map(|e| (e.u, e.v)).collect();
            let eb: Vec<(usize, usize)> = solo.graph.edges().iter().map(|e| (e.u, e.v)).collect();
            assert_eq!(ea, eb);
        }
    }
}
