//! DCell topology (Guo et al., SIGCOMM 2008).
//!
//! DCell is server-centric and recursive. `DCell_0` is `n` servers attached to
//! one mini-switch. `DCell_l` is built from `g_l = t_{l-1} + 1` copies of
//! `DCell_{l-1}` (where `t_{l-1}` is the number of servers in a `DCell_{l-1}`),
//! with exactly one server-to-server link between every pair of copies:
//! sub-cell `i` and sub-cell `j` (`i < j`) are joined by a link between server
//! `j - 1` of cell `i` and server `i` of cell `j`.
//!
//! As with BCube, DCell servers relay traffic, so they are modeled as relay
//! nodes carrying one endpoint each, while mini-switches carry none.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`dcell`].
///
/// Link recursion: `DCell_0` has `n` star links; `DCell_l` is `g_l` copies of
/// `DCell_{l-1}` plus one link per cell pair (`g_l = t_{l-1} + 1`). At each
/// level every server of a cell carries exactly one inter-cell link, so the
/// server relay degree is `level + 1` and the mini-switch degree is `n`.
pub fn dcell_meta(n: usize, level: usize) -> TopoMeta {
    let mut t = n;
    let mut links = n;
    for _ in 0..level {
        let cells = t + 1;
        links = cells * links + cells * (cells - 1) / 2;
        t *= cells;
    }
    TopoMeta {
        name: "DCell".into(),
        params: format!("n={n}, level={level}"),
        switches: t + t / n,
        servers: t,
        server_switches: t,
        links: Some(links),
        degree: Some(n.max(level + 1)),
    }
}

/// Number of servers in a `DCell_level` built from `n`-port mini-switches.
pub fn dcell_servers(n: usize, level: usize) -> usize {
    let mut t = n;
    for _ in 0..level {
        t = t * (t + 1);
    }
    t
}

/// Builds `DCell_level` with `n` servers per `DCell_0`.
///
/// Node layout: server relay nodes come first (`0..num_servers`, one endpoint
/// each), followed by the mini-switches (one per `DCell_0`, no endpoints).
pub fn dcell(n: usize, level: usize) -> Topology {
    assert!(n >= 2, "DCell needs at least 2 servers per DCell_0");
    let num_servers = dcell_servers(n, level);
    assert!(num_servers <= 1 << 20, "DCell instance too large");
    let num_switches = num_servers / n;
    let total = num_servers + num_switches;
    let mut g = Graph::new(total);

    // DCell_0 star links.
    for s in 0..num_servers {
        let sw = num_servers + s / n;
        g.add_unit_edge(s, sw);
    }

    // Recursive inter-cell links. Servers of a DCell_l are numbered
    // contiguously, so the recursion works on index ranges.
    build_links(&mut g, n, level, 0, num_servers);

    let mut servers = vec![0usize; total];
    for s in servers.iter_mut().take(num_servers) {
        *s = 1;
    }
    Topology::new("DCell", format!("n={n}, level={level}"), g, servers)
}

/// Adds the level-`level` (and recursively lower) inter-cell links for the
/// DCell whose servers are `base..base + size`.
fn build_links(g: &mut Graph, n: usize, level: usize, base: usize, size: usize) {
    if level == 0 {
        return;
    }
    // size = t_{l}, sub-cell size = t_{l-1}, number of sub-cells = t_{l-1}+1.
    let mut sub = n;
    for _ in 0..level - 1 {
        sub = sub * (sub + 1);
    }
    let cells = sub + 1;
    debug_assert_eq!(sub * cells, size);
    for i in 0..cells {
        build_links(g, n, level - 1, base + i * sub, sub);
    }
    for i in 0..cells {
        for j in i + 1..cells {
            let u = base + i * sub + (j - 1);
            let v = base + j * sub + i;
            g.add_unit_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;

    #[test]
    fn server_count_recurrence() {
        assert_eq!(dcell_servers(4, 0), 4);
        assert_eq!(dcell_servers(4, 1), 20);
        assert_eq!(dcell_servers(4, 2), 420);
        assert_eq!(dcell_servers(2, 2), 42);
        assert_eq!(dcell_servers(5, 1), 30);
    }

    #[test]
    fn dcell0_is_star() {
        let t = dcell(4, 0);
        assert_eq!(t.num_servers(), 4);
        assert_eq!(t.num_switches(), 5);
        assert_eq!(t.num_links(), 4);
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn dcell1_structure() {
        // DCell_1 with n=4: 5 sub-cells of 4 servers; 20 servers, 5 switches,
        // 20 star links + C(5,2)=10 inter-cell links.
        let t = dcell(4, 1);
        assert_eq!(t.num_servers(), 20);
        assert_eq!(t.num_switches(), 25);
        assert_eq!(t.num_links(), 20 + 10);
        assert!(is_connected(&t.graph));
        // Level-1 servers have 1 switch link + 1 inter-cell link.
        for s in 0..20 {
            assert!(t.graph.degree(s) <= 2);
        }
        // Each sub-cell has exactly 4 servers, and cells - 1 = 4 of them get
        // an inter-cell link, i.e. every server has exactly 2 links here.
        for s in 0..20 {
            assert_eq!(t.graph.degree(s), 2, "server {s}");
        }
    }

    #[test]
    fn dcell2_connected_and_degrees_bounded() {
        let t = dcell(2, 2);
        assert_eq!(t.num_servers(), 42);
        assert!(is_connected(&t.graph));
        // Each server has at most level+1 = 3 links (1 to switch + up to 2 inter-cell).
        for s in 0..42 {
            assert!(t.graph.degree(s) <= 3);
            assert!(t.graph.degree(s) >= 1);
        }
    }

    #[test]
    fn paper_family_dcell_5ary() {
        // The paper's Table I row "DCell (5-ary)": n=5.
        let t = dcell(5, 1);
        assert_eq!(t.num_servers(), 30);
        assert!(is_connected(&t.graph));
    }
}
