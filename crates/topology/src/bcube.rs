//! BCube topology (Guo et al., SIGCOMM 2009).
//!
//! BCube is *server-centric*: BCube_k built from n-port switches has
//! `n^(k+1)` servers, each with `k+1` NIC ports, and `(k+1) * n^k` switches
//! arranged in `k+1` levels. A server with address `(a_k, ..., a_1, a_0)`
//! (digits in base `n`) connects at level `i` to the level-`i` switch whose
//! index is the address with digit `i` removed.
//!
//! Because BCube servers forward traffic, the throughput model represents each
//! BCube server as a relay node (a "switch" in the graph) with exactly one
//! attached traffic endpoint, while the commodity n-port switches carry no
//! endpoints — this is the standard reduction used by the paper's framework
//! for server-centric designs (§III-A2).

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`bcube`].
pub fn bcube_meta(n: usize, k: usize) -> TopoMeta {
    let num_servers = n.pow(k as u32 + 1);
    let num_switches = (k + 1) * n.pow(k as u32);
    TopoMeta {
        name: "BCube".into(),
        params: format!("n={n}, k={k}"),
        switches: num_servers + num_switches,
        servers: num_servers,
        server_switches: num_servers,
        // Every server relay node links to one switch per level.
        links: Some(num_servers * (k + 1)),
        degree: Some(n.max(k + 1)),
    }
}

/// Builds BCube with `n`-port switches and `k + 1` levels (i.e. `BCube_k`).
///
/// Graph layout: nodes `0..n^(k+1)` are the server relay nodes (1 endpoint
/// each); the following `(k+1) * n^k` nodes are the commodity switches
/// (0 endpoints).
///
/// # Panics
/// Panics if `n < 2` or the size would exceed ~1M nodes.
pub fn bcube(n: usize, k: usize) -> Topology {
    assert!(n >= 2, "BCube needs switches with at least 2 ports");
    let num_servers = n.pow(k as u32 + 1);
    let switches_per_level = n.pow(k as u32);
    let num_switches = (k + 1) * switches_per_level;
    let total = num_servers + num_switches;
    assert!(total <= 1 << 20, "BCube instance too large");

    let mut g = Graph::new(total);
    let switch_id = |level: usize, index: usize| num_servers + level * switches_per_level + index;

    for server in 0..num_servers {
        // digits of the server address, least significant first
        for level in 0..=k {
            // Remove digit `level` from the address to get the switch index.
            let high = server / n.pow(level as u32 + 1);
            let low = server % n.pow(level as u32);
            let idx = high * n.pow(level as u32) + low;
            g.add_unit_edge(server, switch_id(level, idx));
        }
    }

    let mut servers = vec![0usize; total];
    for s in servers.iter_mut().take(num_servers) {
        *s = 1;
    }
    Topology::new("BCube", format!("n={n}, k={k}"), g, servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;

    #[test]
    fn bcube0_is_a_star() {
        // BCube_0 with n=4: 4 servers and one switch.
        let t = bcube(4, 0);
        assert_eq!(t.num_switches(), 4 + 1);
        assert_eq!(t.num_servers(), 4);
        assert_eq!(t.num_links(), 4);
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn bcube1_counts() {
        // BCube_1, n=4: 16 servers, 8 switches, each server 2 ports.
        let t = bcube(4, 1);
        assert_eq!(t.num_servers(), 16);
        assert_eq!(t.num_switches(), 16 + 8);
        assert_eq!(t.num_links(), 16 * 2);
        for server in 0..16 {
            assert_eq!(t.graph.degree(server), 2);
            assert_eq!(t.servers[server], 1);
        }
        for sw in 16..24 {
            assert_eq!(t.graph.degree(sw), 4);
            assert_eq!(t.servers[sw], 0);
        }
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn bcube2_binary() {
        // The paper's "BCube (2-ary)" family: n=2, scaling k.
        let t = bcube(2, 2);
        assert_eq!(t.num_servers(), 8);
        assert_eq!(t.num_switches(), 8 + 3 * 4);
        assert!(is_connected(&t.graph));
        // Every server has k+1 = 3 ports.
        for server in 0..8 {
            assert_eq!(t.graph.degree(server), 3);
        }
    }

    #[test]
    fn same_level_servers_share_one_switch() {
        // In BCube_1 n=2: servers 0b00 and 0b01 share the level-0 switch.
        let t = bcube(2, 1);
        // server 0 = (0,0), server 1 = (0,1): same level-0? level 0 removes
        // digit 0, so index = high digit -> both index 0 -> shared.
        let g = &t.graph;
        let s0: Vec<usize> = g.neighbors(0).iter().map(|&(v, _)| v).collect();
        let s1: Vec<usize> = g.neighbors(1).iter().map(|&(v, _)| v).collect();
        assert!(s0.iter().any(|v| s1.contains(v)));
    }
}
