//! Deterministic fault injection: remove switches and links from a built
//! [`Topology`] under a seeded failure draw.
//!
//! The failure model follows the operator view of degradation studies:
//!
//! * a **switch failure** removes every link incident to the switch and
//!   detaches its servers; the node itself stays in the graph (no
//!   relabeling), so switch ids — and with them TM stencils and cache keys —
//!   are stable across failure scenarios,
//! * a **link failure** removes one additional surviving link.
//!
//! Servers on switches that remain alive but end up disconnected from the
//! rest of the network are deliberately *kept*: their demands become
//! unreachable, which is exactly the condition the degradation-aware solver
//! path (`tb_flow::SolveStatus::DisconnectedDemandsDropped`) exists to
//! absorb.
//!
//! Draws are sub-seeded with the same splitmix64-stride idiom as the
//! natural-network generator (`crate::natural`): every drawn index is a pure
//! function of `(seed, draw position)`, so the surviving graph is
//! bit-identical across processes, platforms and thread counts.

use crate::topology::Topology;
use tb_graph::connectivity::connected_components;
use tb_graph::Graph;

/// Odd multiplier decorrelating per-draw sub-seeds (splitmix64's golden-ratio
/// increment; the same constant the natural-network generator strides with).
const DRAW_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective 64-bit mixer, bit-identical on
/// every platform. Used to turn `(seed, draw)` pairs into independent draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(DRAW_STRIDE);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draws `count` distinct indices from `0..pool` (saturating at `pool`) via a
/// partial Fisher–Yates shuffle keyed on `seed`; returned sorted ascending.
fn sample_distinct(count: usize, pool: usize, seed: u64) -> Vec<usize> {
    let k = count.min(pool);
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..pool).collect();
    for draw in 0..k {
        let r = splitmix64(seed.wrapping_add((draw as u64).wrapping_mul(DRAW_STRIDE)));
        let j = draw + (r % (pool - draw) as u64) as usize;
        idx.swap(draw, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// A deterministic failure scenario: how many links and switches to fail,
/// under which draw seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Surviving links to fail *in addition to* those lost to switch
    /// failures (saturates at the number of surviving links).
    pub link_failures: usize,
    /// Switches to fail (saturates at the switch count).
    pub switch_failures: usize,
    /// Seed of the failure draws; switch and link draws use decorrelated
    /// sub-streams of this seed.
    pub seed: u64,
}

/// What a fault application did and what survived, recorded for metadata and
/// degradation reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Ids of the failed switches, ascending.
    pub failed_switches: Vec<usize>,
    /// Base-graph edge ids removed as explicit link failures (ascending;
    /// excludes links lost to switch failures).
    pub failed_links: Vec<usize>,
    /// Connected components among the surviving (alive) switches; failed
    /// switches — left in the graph as isolated nodes — are not counted.
    pub components: usize,
    /// Alive-switch count of the largest surviving component.
    pub largest_component: usize,
    /// Servers still attached after switch failures.
    pub surviving_servers: usize,
    /// Links remaining in the faulted graph.
    pub surviving_links: usize,
}

/// Applies `plan` to `base`, returning the degraded topology and the fault
/// report. Failed switches keep their node ids (isolated, server-free);
/// surviving edges keep their original order and capacities, so the result
/// is bit-identical for a given `(base, plan)` in any process.
pub fn apply_faults(base: &Topology, plan: &FaultPlan) -> (Topology, FaultReport) {
    let n = base.num_switches();
    let switch_seed = splitmix64(plan.seed);
    let link_seed = splitmix64(plan.seed.wrapping_add(DRAW_STRIDE));

    let failed_switches = sample_distinct(plan.switch_failures, n, switch_seed);
    let mut dead = vec![false; n];
    for &s in &failed_switches {
        dead[s] = true;
    }

    // Links that survive the switch failures, in base edge order.
    let alive_edges: Vec<usize> = (0..base.graph.num_edges())
        .filter(|&id| {
            let e = base.graph.edge(id);
            !dead[e.u] && !dead[e.v]
        })
        .collect();
    // Explicit link failures are drawn among the survivors.
    let failed_links: Vec<usize> =
        sample_distinct(plan.link_failures, alive_edges.len(), link_seed)
            .into_iter()
            .map(|pos| alive_edges[pos])
            .collect();
    let mut cut = vec![false; base.graph.num_edges()];
    for &id in &failed_links {
        cut[id] = true;
    }

    let mut graph = Graph::new(n);
    for &id in &alive_edges {
        if cut[id] {
            continue;
        }
        let e = base.graph.edge(id);
        graph.add_edge(e.u, e.v, e.cap);
    }
    let servers: Vec<usize> = base
        .servers
        .iter()
        .enumerate()
        .map(|(u, &s)| if dead[u] { 0 } else { s })
        .collect();

    // Surviving-component census over the alive switches only.
    let comp = connected_components(&graph);
    let mut sizes = vec![0usize; n.max(1)];
    let mut components = 0usize;
    let mut largest = 0usize;
    for u in 0..n {
        if dead[u] {
            continue;
        }
        sizes[comp[u]] += 1;
        if sizes[comp[u]] == 1 {
            components += 1;
        }
        largest = largest.max(sizes[comp[u]]);
    }

    let report = FaultReport {
        surviving_servers: servers.iter().sum(),
        surviving_links: graph.num_edges(),
        failed_switches,
        failed_links,
        components,
        largest_component: largest,
    };
    let params = format!(
        "{}, faults[seed={}, -{}sw, -{}ln, comps={}]",
        base.params,
        plan.seed,
        report.failed_switches.len(),
        report.failed_links.len(),
        report.components
    );
    let topo = Topology::new(base.name.clone(), params, graph, servers);
    (topo, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::hypercube;

    fn base() -> Topology {
        hypercube(4, 2)
    }

    fn edge_list(t: &Topology) -> Vec<(usize, usize)> {
        t.graph.edges().iter().map(|e| (e.u, e.v)).collect()
    }

    #[test]
    fn faults_are_deterministic_for_a_plan() {
        let b = base();
        let plan = FaultPlan {
            link_failures: 3,
            switch_failures: 2,
            seed: 7,
        };
        let (t1, r1) = apply_faults(&b, &plan);
        let (t2, r2) = apply_faults(&b, &plan);
        assert_eq!(edge_list(&t1), edge_list(&t2));
        assert_eq!(t1.servers, t2.servers);
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let b = base();
        let mk = |seed| {
            apply_faults(
                &b,
                &FaultPlan {
                    link_failures: 4,
                    switch_failures: 0,
                    seed,
                },
            )
            .1
            .failed_links
        };
        // 16 choose 4 draw spaces: at least one of a handful of seeds must
        // differ from seed 0's draw.
        let base_draw = mk(0);
        assert!((1..6).any(|s| mk(s) != base_draw));
    }

    #[test]
    fn switch_failure_removes_incident_links_and_servers() {
        let b = base();
        let plan = FaultPlan {
            link_failures: 0,
            switch_failures: 1,
            seed: 3,
        };
        let (t, r) = apply_faults(&b, &plan);
        assert_eq!(r.failed_switches.len(), 1);
        let s = r.failed_switches[0];
        assert_eq!(t.servers[s], 0);
        assert!(t.graph.neighbors(s).is_empty());
        // A 4-cube loses exactly its 4 incident links.
        assert_eq!(t.num_links(), b.num_links() - 4);
        assert_eq!(r.surviving_links, t.num_links());
        assert_eq!(r.surviving_servers, b.num_servers() - b.servers[s]);
        // Switch ids are stable: no relabeling.
        assert_eq!(t.num_switches(), b.num_switches());
    }

    #[test]
    fn link_failures_remove_exactly_that_many_links() {
        let b = base();
        let plan = FaultPlan {
            link_failures: 5,
            switch_failures: 0,
            seed: 11,
        };
        let (t, r) = apply_faults(&b, &plan);
        assert_eq!(t.num_links(), b.num_links() - 5);
        assert_eq!(r.failed_links.len(), 5);
        let mut uniq = r.failed_links.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 5, "link draws must be distinct");
        assert!(t.servers == b.servers);
    }

    #[test]
    fn excess_failures_saturate() {
        let b = base();
        let plan = FaultPlan {
            link_failures: 10_000,
            switch_failures: 10_000,
            seed: 1,
        };
        let (t, r) = apply_faults(&b, &plan);
        assert_eq!(r.failed_switches.len(), b.num_switches());
        assert_eq!(t.num_links(), 0);
        assert_eq!(r.surviving_servers, 0);
        assert_eq!(r.components, 0);
        assert_eq!(r.largest_component, 0);
    }

    #[test]
    fn component_census_ignores_dead_switches() {
        let b = base();
        let (t, r) = apply_faults(
            &b,
            &FaultPlan {
                link_failures: 0,
                switch_failures: 3,
                seed: 5,
            },
        );
        // A hypercube minus 3 switches stays connected among survivors.
        assert_eq!(r.components, 1);
        assert_eq!(r.largest_component, b.num_switches() - 3);
        assert!(t.params.contains("faults[seed=5"));
        assert!(t.graph.validate().is_ok());
    }
}
