//! Hypercube topology (Bhuyan & Agrawal 1984).
//!
//! A `d`-dimensional hypercube has `2^d` switches; two switches are linked iff
//! their labels differ in exactly one bit. The paper uses one server per
//! switch in Fig 2 and scales the servers-per-switch count elsewhere.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`hypercube`].
pub fn hypercube_meta(dim: usize, servers_per_switch: usize) -> TopoMeta {
    let n = 1usize << dim;
    TopoMeta {
        name: "hypercube".into(),
        params: format!("d={dim}"),
        switches: n,
        servers: n * servers_per_switch,
        server_switches: if servers_per_switch > 0 { n } else { 0 },
        links: Some(n * dim / 2),
        degree: Some(dim),
    }
}

/// Builds a `d`-dimensional hypercube with `servers_per_switch` servers on
/// every switch.
///
/// # Panics
/// Panics if `dim == 0` or `dim > 20` (the latter only to guard against
/// accidentally huge graphs).
pub fn hypercube(dim: usize, servers_per_switch: usize) -> Topology {
    assert!(dim > 0 && dim <= 20, "hypercube dimension out of range");
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1 << b);
            if u < v {
                g.add_unit_edge(u, v);
            }
        }
    }
    Topology::with_uniform_servers("hypercube", format!("d={dim}"), g, servers_per_switch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::{apsp_unweighted, diameter};

    #[test]
    fn counts() {
        for d in 1..=8 {
            let t = hypercube(d, 1);
            assert_eq!(t.num_switches(), 1 << d);
            assert_eq!(t.num_links(), d * (1 << d) / 2);
            assert_eq!(t.num_servers(), 1 << d);
            for u in 0..t.num_switches() {
                assert_eq!(t.graph.degree(u), d);
            }
            assert!(is_connected(&t.graph));
        }
    }

    #[test]
    fn diameter_equals_dimension() {
        for d in 2..=6 {
            let t = hypercube(d, 1);
            assert_eq!(diameter(&t.graph), Some(d as u32));
        }
    }

    #[test]
    fn distances_are_hamming_distances() {
        let t = hypercube(4, 1);
        let dist = apsp_unweighted(&t.graph);
        for (u, row) in dist.iter().enumerate() {
            for (v, d) in row.iter().enumerate() {
                assert_eq!(*d, (u ^ v).count_ones());
            }
        }
    }

    #[test]
    fn servers_scale() {
        let t = hypercube(3, 5);
        assert_eq!(t.num_servers(), 40);
    }
}
