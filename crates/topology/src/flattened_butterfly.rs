//! Flattened butterfly topology (Kim, Dally & Abts, ISCA 2007).
//!
//! The k-ary n-flat flattens a k-ary n-fly butterfly: it has `k^(n-1)`
//! switches arranged in an (n-1)-dimensional array with `k` positions per
//! dimension; switches that differ in exactly one coordinate are directly
//! connected. Each switch hosts `k` servers (concentration c = k).
//!
//! The paper's §III-B example — "a 5-ary 3-stage flattened butterfly with only
//! 25 switches and 125 servers" — is `flattened_butterfly(5, 3)`.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`flattened_butterfly`].
pub fn flattened_butterfly_meta(k: usize, n_stages: usize) -> TopoMeta {
    flattened_butterfly_with_servers_meta(k, n_stages, k)
}

/// Construction-free metadata for [`flattened_butterfly_with_servers`].
pub fn flattened_butterfly_with_servers_meta(
    k: usize,
    n_stages: usize,
    servers_per_switch: usize,
) -> TopoMeta {
    let dims = n_stages - 1;
    let n = k.pow(dims as u32);
    let degree = (k - 1) * dims;
    TopoMeta {
        name: "flattened butterfly".into(),
        params: format!("k={k}, n={n_stages}"),
        switches: n,
        servers: n * servers_per_switch,
        server_switches: if servers_per_switch > 0 { n } else { 0 },
        links: Some(n * degree / 2),
        degree: Some(degree),
    }
}

/// Builds a k-ary n-flat flattened butterfly (`n >= 2` stages, so `n - 1`
/// dimensions of `k` switches each), with `k` servers per switch.
pub fn flattened_butterfly(k: usize, n_stages: usize) -> Topology {
    flattened_butterfly_with_servers(k, n_stages, k)
}

/// Same as [`flattened_butterfly`] but with an explicit concentration
/// (servers per switch).
pub fn flattened_butterfly_with_servers(
    k: usize,
    n_stages: usize,
    servers_per_switch: usize,
) -> Topology {
    assert!(k >= 2, "need k >= 2");
    assert!(n_stages >= 2, "need at least 2 stages (1 dimension)");
    let dims = n_stages - 1;
    let n = k.pow(dims as u32);
    let mut g = Graph::new(n);
    // Coordinates of switch id in base k (dims digits).
    for u in 0..n {
        let mut stride = 1;
        for _d in 0..dims {
            let digit = (u / stride) % k;
            // connect to every other value of this digit (only add once: v > u)
            for other in 0..k {
                if other == digit {
                    continue;
                }
                let v = (u as isize + (other as isize - digit as isize) * stride as isize) as usize;
                if v > u {
                    g.add_unit_edge(u, v);
                }
            }
            stride *= k;
        }
    }
    Topology::with_uniform_servers(
        "flattened butterfly",
        format!("k={k}, n={n_stages}"),
        g,
        servers_per_switch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn paper_example_5ary_3stage() {
        let t = flattened_butterfly(5, 3);
        assert_eq!(t.num_switches(), 25);
        assert_eq!(t.num_servers(), 125);
        // Each switch connects to 4 others in its row and 4 in its column.
        for u in 0..25 {
            assert_eq!(t.graph.degree(u), 8);
        }
        assert_eq!(t.num_links(), 25 * 8 / 2);
        assert!(is_connected(&t.graph));
        assert_eq!(diameter(&t.graph), Some(2));
    }

    #[test]
    fn one_dimension_is_complete_graph() {
        let t = flattened_butterfly(6, 2);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_links(), 15);
        assert_eq!(diameter(&t.graph), Some(1));
    }

    #[test]
    fn three_dimensions() {
        let t = flattened_butterfly(3, 4);
        assert_eq!(t.num_switches(), 27);
        for u in 0..27 {
            assert_eq!(t.graph.degree(u), 3 * 2);
        }
        assert_eq!(diameter(&t.graph), Some(3));
    }

    #[test]
    fn custom_concentration() {
        let t = flattened_butterfly_with_servers(4, 3, 2);
        assert_eq!(t.num_servers(), 16 * 2);
    }
}
