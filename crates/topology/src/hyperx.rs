//! HyperX topology (Ahn et al., SC 2009).
//!
//! A regular HyperX `(L, S, K, T)` arranges `S^L` switches in an
//! `L`-dimensional array with `S` switches per dimension. Two switches that
//! differ in exactly one coordinate are joined by `K` parallel links
//! (link trunking), and every switch hosts `T` servers.
//!
//! The paper evaluates HyperX instances found by a *design search*: given a
//! switch radix, a server count and a target bisection ratio, pick the
//! cheapest regular HyperX meeting them (§IV-A1, Fig 7). [`design_search`]
//! reproduces that process for regular (equal-`S`) HyperX networks using the
//! closed-form bisection ratio `beta = K*S / (2*T)` from the HyperX paper.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`hyperx`].
pub fn hyperx_meta(dims: usize, s: usize, k: usize, t: usize) -> TopoMeta {
    let n = s.pow(dims as u32);
    let degree = (s - 1) * dims * k;
    TopoMeta {
        name: "HyperX".into(),
        params: format!("L={dims}, S={s}, K={k}, T={t}"),
        switches: n,
        servers: n * t,
        server_switches: if t > 0 { n } else { 0 },
        links: Some(n * degree / 2),
        degree: Some(degree),
    }
}

/// Construction-free metadata for [`build_design`].
pub fn design_meta(d: &HyperXDesign) -> TopoMeta {
    hyperx_meta(d.dims, d.s, d.k, d.t)
}

/// Builds a regular HyperX with `dims` dimensions, `s` switches per dimension,
/// `k` parallel links between adjacent switches and `t` servers per switch.
pub fn hyperx(dims: usize, s: usize, k: usize, t: usize) -> Topology {
    assert!(dims >= 1 && s >= 2 && k >= 1);
    let n = s.pow(dims as u32);
    assert!(n <= 1 << 18, "HyperX instance too large");
    let mut g = Graph::new(n);
    for u in 0..n {
        let mut stride = 1;
        for _d in 0..dims {
            let digit = (u / stride) % s;
            for other in digit + 1..s {
                let v = u + (other - digit) * stride;
                for _ in 0..k {
                    g.add_unit_edge(u, v);
                }
            }
            stride *= s;
        }
    }
    Topology::with_uniform_servers("HyperX", format!("L={dims}, S={s}, K={k}, T={t}"), g, t)
}

/// A candidate produced by [`design_search`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperXDesign {
    /// Number of dimensions.
    pub dims: usize,
    /// Switches per dimension.
    pub s: usize,
    /// Link trunking factor.
    pub k: usize,
    /// Servers per switch.
    pub t: usize,
    /// Achieved bisection ratio `K*S / (2*T)`.
    pub bisection: f64,
    /// Total switch count `S^L`.
    pub switches: usize,
    /// Total server count `T * S^L`.
    pub servers: usize,
}

/// Searches for the cheapest (fewest switches, then fewest total ports)
/// regular HyperX that supports at least `min_servers` servers with switch
/// radix at most `radix` and bisection ratio at least `target_bisection`.
///
/// Mirrors the paper's observation that "even a slight variation in one of
/// the parameters can lead to a significant difference in HyperX construction
/// and hence throughput": the discrete search space makes the output jumpy in
/// `min_servers`.
pub fn design_search(
    radix: usize,
    min_servers: usize,
    target_bisection: f64,
) -> Option<HyperXDesign> {
    let mut best: Option<HyperXDesign> = None;
    for dims in 1..=5usize {
        for s in 2..=radix {
            let switches = match s.checked_pow(dims as u32) {
                Some(v) if v <= (1 << 16) => v,
                _ => continue,
            };
            for t in 1..=radix {
                if t * switches < min_servers {
                    continue;
                }
                for k in 1..=radix {
                    let ports = t + (s - 1) * dims * k;
                    if ports > radix {
                        break;
                    }
                    let bisection = k as f64 * s as f64 / (2.0 * t as f64);
                    if bisection + 1e-9 < target_bisection {
                        continue;
                    }
                    let cand = HyperXDesign {
                        dims,
                        s,
                        k,
                        t,
                        bisection,
                        switches,
                        servers: t * switches,
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            (cand.switches, cand.servers, cand.dims)
                                < (b.switches, b.servers, b.dims)
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
        }
    }
    best
}

/// Builds the topology described by a [`HyperXDesign`].
pub fn build_design(d: &HyperXDesign) -> Topology {
    hyperx(d.dims, d.s, d.k, d.t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn hyperx_counts() {
        let t = hyperx(2, 4, 1, 2);
        assert_eq!(t.num_switches(), 16);
        // each switch: (4-1) links in each of 2 dims
        for u in 0..16 {
            assert_eq!(t.graph.degree(u), 6);
        }
        assert_eq!(t.num_servers(), 32);
        assert!(is_connected(&t.graph));
        assert_eq!(diameter(&t.graph), Some(2));
    }

    #[test]
    fn trunking_multiplies_links() {
        let t1 = hyperx(1, 4, 1, 1);
        let t2 = hyperx(1, 4, 3, 1);
        assert_eq!(t2.num_links(), 3 * t1.num_links());
        assert_eq!(t2.graph.edge_multiplicity(0, 1), 3);
    }

    #[test]
    fn hyperx_with_one_dimension_is_complete_graph() {
        let t = hyperx(1, 5, 1, 1);
        assert_eq!(t.num_links(), 10);
        assert_eq!(diameter(&t.graph), Some(1));
    }

    #[test]
    fn design_search_meets_constraints() {
        let d = design_search(24, 300, 0.4).expect("a design should exist");
        assert!(d.servers >= 300);
        assert!(d.bisection >= 0.4 - 1e-9);
        assert!(d.t + (d.s - 1) * d.dims * d.k <= 24);
        let topo = build_design(&d);
        assert_eq!(topo.num_switches(), d.switches);
        assert_eq!(topo.num_servers(), d.servers);
        assert!(is_connected(&topo.graph));
    }

    #[test]
    fn design_search_infeasible_returns_none() {
        assert!(design_search(3, 10_000, 0.9).is_none());
    }

    #[test]
    fn higher_bisection_costs_more_switches_or_equal() {
        let lo = design_search(32, 500, 0.2).unwrap();
        let hi = design_search(32, 500, 0.5).unwrap();
        assert!(hi.switches >= lo.switches);
    }
}
