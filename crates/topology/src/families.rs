//! Enumeration of the ten topology families benchmarked in the paper, with
//! pre-chosen instance ladders used by the scaling experiments (Figs 5–9) and
//! representative mid-size instances used by the per-family experiments
//! (Figs 4, 10–14, Table II).
//!
//! Instance parameters are chosen so that each family spans roughly the
//! tens-to-thousands-of-servers range the paper plots while staying solvable
//! with the bundled LP/FPTAS solvers on a single machine.

use crate::{
    bcube::bcube,
    dcell::dcell,
    dragonfly::balanced_dragonfly,
    fattree::fat_tree,
    flattened_butterfly::flattened_butterfly,
    hypercube::hypercube,
    hyperx::{build_design, design_search},
    jellyfish::jellyfish,
    longhop::long_hop,
    slimfly::{canonical_servers_per_router, slim_fly},
    topology::Topology,
};
use serde::{Deserialize, Serialize};

/// The ten computer-network topology families of §III-A3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// BCube (server-centric, 2-ary in the paper's Table I).
    BCube,
    /// DCell (server-centric, 5-ary in the paper's Table I).
    DCell,
    /// Dragonfly (balanced: a = 2h, p = h).
    Dragonfly,
    /// Three-level fat tree.
    FatTree,
    /// Flattened butterfly.
    FlattenedButterfly,
    /// Hypercube.
    Hypercube,
    /// HyperX (design-searched for a target bisection).
    HyperX,
    /// Jellyfish (uniform random regular graph).
    Jellyfish,
    /// Long Hop network.
    LongHop,
    /// Slim Fly (MMS graph).
    SlimFly,
}

/// All families, in the display order used by the paper's figures.
pub const ALL_FAMILIES: [Family; 10] = [
    Family::BCube,
    Family::DCell,
    Family::Dragonfly,
    Family::FatTree,
    Family::FlattenedButterfly,
    Family::Hypercube,
    Family::HyperX,
    Family::Jellyfish,
    Family::LongHop,
    Family::SlimFly,
];

/// How large an instance ladder to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small instances only (tests, smoke runs, criterion benches).
    Small,
    /// The full ladder used to regenerate the paper's scaling figures.
    Full,
}

impl Family {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Family::BCube => "BCube",
            Family::DCell => "DCell",
            Family::Dragonfly => "Dragonfly",
            Family::FatTree => "Fat tree",
            Family::FlattenedButterfly => "Flattened BF",
            Family::Hypercube => "Hypercube",
            Family::HyperX => "HyperX",
            Family::Jellyfish => "Jellyfish",
            Family::LongHop => "Long Hop",
            Family::SlimFly => "Slim Fly",
        }
    }

    /// Whether the family prescribes server locations (server-centric or
    /// tree-structured designs); all other families attach servers to every
    /// switch (§III-A2).
    pub fn has_prescribed_server_locations(&self) -> bool {
        matches!(self, Family::BCube | Family::DCell | Family::FatTree)
    }

    /// The instance ladder used for scaling experiments, ordered by size.
    pub fn instances(&self, scale: Scale, seed: u64) -> Vec<Topology> {
        let full = scale == Scale::Full;
        match self {
            Family::BCube => {
                let mut v = vec![bcube(2, 2), bcube(2, 3), bcube(4, 1), bcube(4, 2)];
                if full {
                    v.push(bcube(2, 5));
                    v.push(bcube(4, 3));
                }
                v
            }
            Family::DCell => {
                let mut v = vec![dcell(3, 1), dcell(4, 1), dcell(5, 1), dcell(3, 2)];
                if full {
                    v.push(dcell(4, 2));
                    v.push(dcell(5, 2));
                }
                v
            }
            Family::Dragonfly => {
                let mut v = vec![
                    balanced_dragonfly(1),
                    balanced_dragonfly(2),
                    balanced_dragonfly(3),
                ];
                if full {
                    v.push(balanced_dragonfly(4));
                }
                v
            }
            Family::FatTree => {
                let mut v = vec![fat_tree(4), fat_tree(6), fat_tree(8)];
                if full {
                    v.push(fat_tree(10));
                    v.push(fat_tree(12));
                    v.push(fat_tree(14));
                }
                v
            }
            Family::FlattenedButterfly => {
                let mut v = vec![
                    flattened_butterfly(3, 3),
                    flattened_butterfly(4, 3),
                    flattened_butterfly(5, 3),
                ];
                if full {
                    v.push(flattened_butterfly(6, 3));
                    v.push(flattened_butterfly(8, 3));
                    v.push(flattened_butterfly(10, 3));
                }
                v
            }
            Family::Hypercube => {
                let mut v = vec![hypercube(4, 2), hypercube(5, 3), hypercube(6, 3)];
                if full {
                    v.push(hypercube(7, 4));
                    v.push(hypercube(8, 4));
                    v.push(hypercube(9, 5));
                }
                v
            }
            Family::HyperX => {
                // Targets start at a few hundred servers so the design search
                // returns multi-dimensional HyperX instances (very small
                // targets degenerate into a handful of heavily trunked
                // switches, which are not representative of the family).
                let targets: &[usize] = if full {
                    &[256, 400, 512, 648, 864, 1024]
                } else {
                    &[256, 400, 512]
                };
                targets
                    .iter()
                    .filter_map(|&n| design_search(24, n, 0.4))
                    .map(|d| build_design(&d))
                    .collect()
            }
            Family::Jellyfish => {
                let params: &[(usize, usize, usize)] = if full {
                    &[
                        (25, 6, 3),
                        (50, 8, 4),
                        (100, 10, 5),
                        (200, 12, 6),
                        (400, 14, 7),
                    ]
                } else {
                    &[(25, 6, 3), (50, 8, 4), (100, 10, 5)]
                };
                params
                    .iter()
                    .enumerate()
                    .map(|(i, &(n, r, s))| jellyfish(n, r, s, seed.wrapping_add(i as u64)))
                    .collect()
            }
            Family::LongHop => {
                let mut v = vec![long_hop(5, 8, 2), long_hop(6, 9, 3)];
                if full {
                    v.push(long_hop(7, 10, 4));
                    v.push(long_hop(8, 11, 5));
                }
                v
            }
            Family::SlimFly => {
                let mut v = vec![slim_fly(5, canonical_servers_per_router(5))];
                if full {
                    v.push(slim_fly(13, canonical_servers_per_router(13)));
                    v.push(slim_fly(17, canonical_servers_per_router(17)));
                }
                v
            }
        }
    }

    /// A representative mid-size instance used by the per-family (non-scaling)
    /// experiments: Fig 4, Figs 10–14 and Table II.
    pub fn representative(&self, seed: u64) -> Topology {
        match self {
            Family::BCube => bcube(4, 2),
            Family::DCell => dcell(4, 1),
            Family::Dragonfly => balanced_dragonfly(2),
            Family::FatTree => fat_tree(8),
            Family::FlattenedButterfly => flattened_butterfly(5, 3),
            Family::Hypercube => hypercube(6, 3),
            Family::HyperX => design_search(24, 256, 0.4)
                .map(|d| build_design(&d))
                .expect("HyperX design search must succeed for the representative size"),
            Family::Jellyfish => jellyfish(64, 8, 4, seed),
            Family::LongHop => long_hop(6, 9, 3),
            Family::SlimFly => slim_fly(5, canonical_servers_per_router(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;

    #[test]
    fn all_families_produce_small_instances() {
        for f in ALL_FAMILIES {
            let instances = f.instances(Scale::Small, 1);
            assert!(!instances.is_empty(), "{} has no instances", f.name());
            for t in &instances {
                assert!(
                    is_connected(&t.graph),
                    "{} instance disconnected",
                    t.describe()
                );
                assert!(t.num_servers() > 0);
                assert!(t.graph.validate().is_ok());
            }
        }
    }

    #[test]
    fn instance_ladders_are_increasing_in_size() {
        for f in ALL_FAMILIES {
            let instances = f.instances(Scale::Small, 1);
            for w in instances.windows(2) {
                assert!(
                    w[0].num_servers() <= w[1].num_servers(),
                    "{}: ladder not sorted by servers",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn representatives_are_connected_and_modest() {
        for f in ALL_FAMILIES {
            let t = f.representative(3);
            assert!(is_connected(&t.graph));
            assert!(
                t.num_switches() <= 1200,
                "{} representative too large",
                f.name()
            );
        }
    }

    #[test]
    fn prescribed_server_locations_flag() {
        assert!(Family::FatTree.has_prescribed_server_locations());
        assert!(Family::BCube.has_prescribed_server_locations());
        assert!(!Family::Jellyfish.has_prescribed_server_locations());
    }
}
