//! Enumeration of the ten topology families benchmarked in the paper, with
//! pre-chosen instance ladders used by the scaling experiments (Figs 5–9) and
//! representative mid-size instances used by the per-family experiments
//! (Figs 4, 10–14, Table II).
//!
//! Instance parameters are chosen so that each family spans roughly the
//! tens-to-thousands-of-servers range the paper plots while staying solvable
//! with the bundled LP/FPTAS solvers on a single machine.

use crate::{
    bcube::{bcube, bcube_meta},
    dcell::{dcell, dcell_meta},
    dragonfly::{balanced_dragonfly, balanced_dragonfly_meta},
    fattree::{fat_tree, fat_tree_meta},
    flattened_butterfly::{flattened_butterfly, flattened_butterfly_meta},
    hypercube::{hypercube, hypercube_meta},
    hyperx::{build_design, design_meta, design_search},
    jellyfish::{jellyfish, jellyfish_meta},
    longhop::{long_hop, long_hop_meta},
    meta::TopoMeta,
    slimfly::{canonical_servers_per_router, slim_fly, slim_fly_meta},
    topology::Topology,
};
use serde::{Deserialize, Serialize};

// Per-rung parameter tables shared by `ladder_instance` (which builds) and
// `ladder_meta` (which must describe the same instance without building).
const BCUBE_RUNGS: [(usize, usize); 6] = [(2, 2), (2, 3), (4, 1), (4, 2), (2, 5), (4, 3)];
const DCELL_RUNGS: [(usize, usize); 6] = [(3, 1), (4, 1), (5, 1), (3, 2), (4, 2), (5, 2)];
const FATTREE_RUNGS: [usize; 6] = [4, 6, 8, 10, 12, 14];
const FBFLY_RUNGS: [usize; 6] = [3, 4, 5, 6, 8, 10];
const HYPERCUBE_RUNGS: [(usize, usize); 6] = [(4, 2), (5, 3), (6, 3), (7, 4), (8, 4), (9, 5)];
const LONGHOP_RUNGS: [(usize, usize, usize); 4] = [(5, 8, 2), (6, 9, 3), (7, 10, 4), (8, 11, 5)];
const SLIMFLY_RUNGS: [usize; 3] = [5, 13, 17];

/// The ten computer-network topology families of §III-A3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// BCube (server-centric, 2-ary in the paper's Table I).
    BCube,
    /// DCell (server-centric, 5-ary in the paper's Table I).
    DCell,
    /// Dragonfly (balanced: a = 2h, p = h).
    Dragonfly,
    /// Three-level fat tree.
    FatTree,
    /// Flattened butterfly.
    FlattenedButterfly,
    /// Hypercube.
    Hypercube,
    /// HyperX (design-searched for a target bisection).
    HyperX,
    /// Jellyfish (uniform random regular graph).
    Jellyfish,
    /// Long Hop network.
    LongHop,
    /// Slim Fly (MMS graph).
    SlimFly,
}

/// All families, in the display order used by the paper's figures.
pub const ALL_FAMILIES: [Family; 10] = [
    Family::BCube,
    Family::DCell,
    Family::Dragonfly,
    Family::FatTree,
    Family::FlattenedButterfly,
    Family::Hypercube,
    Family::HyperX,
    Family::Jellyfish,
    Family::LongHop,
    Family::SlimFly,
];

/// How large an instance ladder to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small instances only (tests, smoke runs, criterion benches).
    Small,
    /// The full ladder used to regenerate the paper's scaling figures.
    Full,
}

impl Family {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Family::BCube => "BCube",
            Family::DCell => "DCell",
            Family::Dragonfly => "Dragonfly",
            Family::FatTree => "Fat tree",
            Family::FlattenedButterfly => "Flattened BF",
            Family::Hypercube => "Hypercube",
            Family::HyperX => "HyperX",
            Family::Jellyfish => "Jellyfish",
            Family::LongHop => "Long Hop",
            Family::SlimFly => "Slim Fly",
        }
    }

    /// Whether the family prescribes server locations (server-centric or
    /// tree-structured designs); all other families attach servers to every
    /// switch (§III-A2).
    pub fn has_prescribed_server_locations(&self) -> bool {
        matches!(self, Family::BCube | Family::DCell | Family::FatTree)
    }

    /// Number of rungs in the family's instance ladder at `scale`. Rungs are
    /// indexed `0..ladder_len`; a rung's construction can still fail (HyperX
    /// design searches with no feasible design), in which case
    /// [`Family::ladder_instance`] returns `None` for that index.
    pub fn ladder_len(&self, scale: Scale) -> usize {
        let full = scale == Scale::Full;
        match self {
            Family::BCube => {
                if full {
                    6
                } else {
                    4
                }
            }
            Family::DCell => {
                if full {
                    6
                } else {
                    4
                }
            }
            Family::Dragonfly => {
                if full {
                    4
                } else {
                    3
                }
            }
            Family::FatTree => {
                if full {
                    6
                } else {
                    3
                }
            }
            Family::FlattenedButterfly => {
                if full {
                    6
                } else {
                    3
                }
            }
            Family::Hypercube => {
                if full {
                    6
                } else {
                    3
                }
            }
            Family::HyperX => Self::hyperx_targets(full).len(),
            Family::Jellyfish => Self::jellyfish_params(full).len(),
            Family::LongHop => {
                if full {
                    4
                } else {
                    2
                }
            }
            Family::SlimFly => {
                if full {
                    3
                } else {
                    1
                }
            }
        }
    }

    fn hyperx_targets(full: bool) -> &'static [usize] {
        // Targets start at a few hundred servers so the design search
        // returns multi-dimensional HyperX instances (very small
        // targets degenerate into a handful of heavily trunked
        // switches, which are not representative of the family).
        if full {
            &[256, 400, 512, 648, 864, 1024]
        } else {
            &[256, 400, 512]
        }
    }

    fn jellyfish_params(full: bool) -> &'static [(usize, usize, usize)] {
        if full {
            &[
                (25, 6, 3),
                (50, 8, 4),
                (100, 10, 5),
                (200, 12, 6),
                (400, 14, 7),
            ]
        } else {
            &[(25, 6, 3), (50, 8, 4), (100, 10, 5)]
        }
    }

    /// Builds the `index`-th rung of the instance ladder without constructing
    /// the other rungs — the lazy per-cell entry point the sweep engine uses.
    /// `None` for an out-of-range index or an infeasible design search.
    pub fn ladder_instance(&self, scale: Scale, seed: u64, index: usize) -> Option<Topology> {
        if index >= self.ladder_len(scale) {
            return None;
        }
        let full = scale == Scale::Full;
        Some(match self {
            Family::BCube => {
                let (n, k) = BCUBE_RUNGS[index];
                bcube(n, k)
            }
            Family::DCell => {
                let (n, k) = DCELL_RUNGS[index];
                dcell(n, k)
            }
            Family::Dragonfly => balanced_dragonfly(index + 1),
            Family::FatTree => fat_tree(FATTREE_RUNGS[index]),
            Family::FlattenedButterfly => flattened_butterfly(FBFLY_RUNGS[index], 3),
            Family::Hypercube => {
                let (d, s) = HYPERCUBE_RUNGS[index];
                hypercube(d, s)
            }
            Family::HyperX => {
                let n = Self::hyperx_targets(full)[index];
                return design_search(24, n, 0.4).map(|d| build_design(&d));
            }
            Family::Jellyfish => {
                let (n, r, s) = Self::jellyfish_params(full)[index];
                jellyfish(n, r, s, seed.wrapping_add(index as u64))
            }
            Family::LongHop => {
                let (d, deg, s) = LONGHOP_RUNGS[index];
                long_hop(d, deg, s)
            }
            Family::SlimFly => {
                let q = SLIMFLY_RUNGS[index];
                slim_fly(q, canonical_servers_per_router(q))
            }
        })
    }

    /// Construction-free metadata for the `index`-th ladder rung — describes
    /// exactly the instance [`Family::ladder_instance`] would build (pinned
    /// by the `metadata_equiv` property test) without constructing a graph.
    /// `None` under the same conditions `ladder_instance` returns `None`.
    pub fn ladder_meta(&self, scale: Scale, seed: u64, index: usize) -> Option<TopoMeta> {
        if index >= self.ladder_len(scale) {
            return None;
        }
        let full = scale == Scale::Full;
        Some(match self {
            Family::BCube => {
                let (n, k) = BCUBE_RUNGS[index];
                bcube_meta(n, k)
            }
            Family::DCell => {
                let (n, k) = DCELL_RUNGS[index];
                dcell_meta(n, k)
            }
            Family::Dragonfly => balanced_dragonfly_meta(index + 1),
            Family::FatTree => fat_tree_meta(FATTREE_RUNGS[index]),
            Family::FlattenedButterfly => flattened_butterfly_meta(FBFLY_RUNGS[index], 3),
            Family::Hypercube => {
                let (d, s) = HYPERCUBE_RUNGS[index];
                hypercube_meta(d, s)
            }
            Family::HyperX => {
                let n = Self::hyperx_targets(full)[index];
                return design_search(24, n, 0.4).map(|d| design_meta(&d));
            }
            Family::Jellyfish => {
                let (n, r, s) = Self::jellyfish_params(full)[index];
                jellyfish_meta(n, r, s, seed.wrapping_add(index as u64))
            }
            Family::LongHop => {
                let (d, deg, s) = LONGHOP_RUNGS[index];
                long_hop_meta(d, deg, s)
            }
            Family::SlimFly => {
                let q = SLIMFLY_RUNGS[index];
                slim_fly_meta(q, canonical_servers_per_router(q))
            }
        })
    }

    /// The successfully built rungs of the ladder, paired with their stable
    /// ladder indices (which [`Family::ladder_instance`] accepts even when
    /// earlier rungs failed to build).
    pub fn ladder(&self, scale: Scale, seed: u64) -> Vec<(usize, Topology)> {
        (0..self.ladder_len(scale))
            .filter_map(|i| self.ladder_instance(scale, seed, i).map(|t| (i, t)))
            .collect()
    }

    /// The instance ladder used for scaling experiments, ordered by size.
    pub fn instances(&self, scale: Scale, seed: u64) -> Vec<Topology> {
        self.ladder(scale, seed)
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    /// A representative mid-size instance used by the per-family (non-scaling)
    /// experiments: Fig 4, Figs 10–14 and Table II.
    pub fn representative(&self, seed: u64) -> Topology {
        match self {
            Family::BCube => bcube(4, 2),
            Family::DCell => dcell(4, 1),
            Family::Dragonfly => balanced_dragonfly(2),
            Family::FatTree => fat_tree(8),
            Family::FlattenedButterfly => flattened_butterfly(5, 3),
            Family::Hypercube => hypercube(6, 3),
            Family::HyperX => design_search(24, 256, 0.4)
                .map(|d| build_design(&d))
                .expect("HyperX design search must succeed for the representative size"),
            Family::Jellyfish => jellyfish(64, 8, 4, seed),
            Family::LongHop => long_hop(6, 9, 3),
            Family::SlimFly => slim_fly(5, canonical_servers_per_router(5)),
        }
    }

    /// Construction-free metadata for [`Family::representative`].
    pub fn representative_meta(&self, seed: u64) -> TopoMeta {
        match self {
            Family::BCube => bcube_meta(4, 2),
            Family::DCell => dcell_meta(4, 1),
            Family::Dragonfly => balanced_dragonfly_meta(2),
            Family::FatTree => fat_tree_meta(8),
            Family::FlattenedButterfly => flattened_butterfly_meta(5, 3),
            Family::Hypercube => hypercube_meta(6, 3),
            Family::HyperX => design_search(24, 256, 0.4)
                .map(|d| design_meta(&d))
                .expect("HyperX design search must succeed for the representative size"),
            Family::Jellyfish => jellyfish_meta(64, 8, 4, seed),
            Family::LongHop => long_hop_meta(6, 9, 3),
            Family::SlimFly => slim_fly_meta(5, canonical_servers_per_router(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;

    #[test]
    fn all_families_produce_small_instances() {
        for f in ALL_FAMILIES {
            let instances = f.instances(Scale::Small, 1);
            assert!(!instances.is_empty(), "{} has no instances", f.name());
            for t in &instances {
                assert!(
                    is_connected(&t.graph),
                    "{} instance disconnected",
                    t.describe()
                );
                assert!(t.num_servers() > 0);
                assert!(t.graph.validate().is_ok());
            }
        }
    }

    #[test]
    fn ladder_instance_matches_eager_instances() {
        for f in ALL_FAMILIES {
            for scale in [Scale::Small, Scale::Full] {
                let eager = f.instances(scale, 7);
                let lazy: Vec<Topology> = (0..f.ladder_len(scale))
                    .filter_map(|i| f.ladder_instance(scale, 7, i))
                    .collect();
                assert_eq!(eager.len(), lazy.len(), "{}", f.name());
                for (a, b) in eager.iter().zip(&lazy) {
                    assert_eq!(a.params, b.params, "{}", f.name());
                    assert_eq!(a.num_servers(), b.num_servers(), "{}", f.name());
                    assert_eq!(a.num_links(), b.num_links(), "{}", f.name());
                }
            }
        }
    }

    #[test]
    fn ladder_instance_out_of_range_is_none() {
        for f in ALL_FAMILIES {
            let len = f.ladder_len(Scale::Small);
            assert!(f.ladder_instance(Scale::Small, 1, len + 10).is_none());
        }
    }

    #[test]
    fn instance_ladders_are_increasing_in_size() {
        for f in ALL_FAMILIES {
            let instances = f.instances(Scale::Small, 1);
            for w in instances.windows(2) {
                assert!(
                    w[0].num_servers() <= w[1].num_servers(),
                    "{}: ladder not sorted by servers",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn representatives_are_connected_and_modest() {
        for f in ALL_FAMILIES {
            let t = f.representative(3);
            assert!(is_connected(&t.graph));
            assert!(
                t.num_switches() <= 1200,
                "{} representative too large",
                f.name()
            );
        }
    }

    #[test]
    fn prescribed_server_locations_flag() {
        assert!(Family::FatTree.has_prescribed_server_locations());
        assert!(Family::BCube.has_prescribed_server_locations());
        assert!(!Family::Jellyfish.has_prescribed_server_locations());
    }
}
