//! Dragonfly topology (Kim, Dally, Scott & Abts, ISCA 2008).
//!
//! A dragonfly is a two-level hierarchy: routers are grouped; within a group
//! the `a` routers form a complete graph; each router also has `h` global
//! links to other groups and `p` attached servers. The canonical balanced
//! configuration uses `a = 2p = 2h` and `g = a*h + 1` groups, so that every
//! pair of groups is joined by exactly one global link.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`dragonfly`].
pub fn dragonfly_meta(p: usize, a: usize, h: usize) -> TopoMeta {
    let groups = a * h + 1;
    let n = groups * a;
    TopoMeta {
        name: "Dragonfly".into(),
        params: format!("p={p}, a={a}, h={h}"),
        switches: n,
        servers: n * p,
        server_switches: if p > 0 { n } else { 0 },
        // Intra-group cliques plus one global link per group pair.
        links: Some(groups * a * (a - 1) / 2 + groups * (groups - 1) / 2),
        degree: Some(a - 1 + h),
    }
}

/// Construction-free metadata for [`balanced_dragonfly`].
pub fn balanced_dragonfly_meta(h: usize) -> TopoMeta {
    dragonfly_meta(h, 2 * h, h)
}

/// Builds a dragonfly from its three defining parameters:
/// `p` servers per router, `a` routers per group, `h` global links per router.
/// The number of groups is `a*h + 1` (one global link between each group pair).
pub fn dragonfly(p: usize, a: usize, h: usize) -> Topology {
    assert!(
        a >= 1 && h >= 1,
        "need at least one router and one global link"
    );
    let groups = a * h + 1;
    let n = groups * a;
    let mut g = Graph::new(n);
    let router = |grp: usize, r: usize| grp * a + r;

    // Intra-group complete graph.
    for grp in 0..groups {
        for r1 in 0..a {
            for r2 in r1 + 1..a {
                g.add_unit_edge(router(grp, r1), router(grp, r2));
            }
        }
    }
    // Global links: group gi's global port q (0..a*h) leads to group
    // `q` if q < gi else `q + 1`; the port is hosted on router q / h.
    // Each unordered group pair gets exactly one link; add it from the
    // lower-numbered group to avoid duplicates.
    for gi in 0..groups {
        for q in 0..a * h {
            let gj = if q < gi { q } else { q + 1 };
            if gj <= gi {
                continue;
            }
            // Port on the remote side: group gj sees gi at port index gi
            // (because gi < gj).
            let local_router = router(gi, q / h);
            let remote_router = router(gj, gi / h);
            g.add_unit_edge(local_router, remote_router);
        }
    }

    Topology::with_uniform_servers("Dragonfly", format!("p={p}, a={a}, h={h}"), g, p)
}

/// Builds the canonical balanced dragonfly with `a = 2h`, `p = h`.
pub fn balanced_dragonfly(h: usize) -> Topology {
    dragonfly(h, 2 * h, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn balanced_counts() {
        for h in 1..=4 {
            let t = balanced_dragonfly(h);
            let a = 2 * h;
            let groups = a * h + 1;
            assert_eq!(t.num_switches(), groups * a);
            assert_eq!(t.num_servers(), groups * a * h);
            // links: intra a*(a-1)/2 per group + one per group pair
            let expected = groups * a * (a - 1) / 2 + groups * (groups - 1) / 2;
            assert_eq!(t.num_links(), expected);
            assert!(is_connected(&t.graph));
        }
    }

    #[test]
    fn router_degree_is_a_minus_1_plus_h() {
        let h = 3;
        let t = balanced_dragonfly(h);
        let a = 2 * h;
        for u in 0..t.num_switches() {
            assert_eq!(t.graph.degree(u), (a - 1) + h, "router {u}");
        }
    }

    #[test]
    fn every_group_pair_has_exactly_one_global_link() {
        let h = 2;
        let a = 2 * h;
        let groups = a * h + 1;
        let t = dragonfly(h, a, h);
        let group_of = |u: usize| u / a;
        let mut pair_count = std::collections::HashMap::new();
        for e in t.graph.edges() {
            let (gu, gv) = (group_of(e.u), group_of(e.v));
            if gu != gv {
                let key = (gu.min(gv), gu.max(gv));
                *pair_count.entry(key).or_insert(0usize) += 1;
            }
        }
        assert_eq!(pair_count.len(), groups * (groups - 1) / 2);
        assert!(pair_count.values().all(|&c| c == 1));
    }

    #[test]
    fn diameter_is_at_most_three() {
        // router -> global -> router within group -> global is never needed in
        // the balanced single-link-per-pair configuration: max 3 hops
        // (local, global, local).
        let t = balanced_dragonfly(2);
        assert!(diameter(&t.graph).unwrap() <= 3);
    }

    #[test]
    fn minimal_dragonfly() {
        let t = dragonfly(1, 1, 1);
        // 2 groups of 1 router joined by one link.
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_links(), 1);
    }
}
