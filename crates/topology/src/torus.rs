//! k-ary n-cube (torus / mesh) topologies.
//!
//! Tori are the traditional HPC interconnect the paper's cited worst-case
//! traffic literature (Towles & Dally) analyzes; they are included as an
//! extension of the benchmark beyond the ten headline families, and they pair
//! naturally with the stencil traffic patterns in `tb_traffic::stencils`
//! (tornado traffic is the classical torus adversary).

use crate::topology::Topology;
use tb_graph::Graph;

/// Builds a k-ary n-dimensional torus (`radix^dims` switches, wrap-around
/// links in every dimension) with `servers_per_switch` servers per switch.
///
/// For `radix == 2` the wrap-around link would duplicate the mesh link, so a
/// single link is used (the graph stays simple).
pub fn torus(dims: usize, radix: usize, servers_per_switch: usize) -> Topology {
    assert!(dims >= 1 && radix >= 2, "need dims >= 1 and radix >= 2");
    let n = radix.pow(dims as u32);
    assert!(n <= 1 << 20, "torus instance too large");
    // Connect each node to its +1 neighbor (wrap-around) in every dimension;
    // this covers each undirected link exactly once. For radix 2 the +1 and -1
    // neighbors coincide, so the wrap edge is skipped when it would duplicate
    // the mesh edge.
    let mut g = Graph::new(n);
    for u in 0..n {
        let mut stride = 1;
        for _d in 0..dims {
            let digit = (u / stride) % radix;
            let next = (digit + 1) % radix;
            let v = u - digit * stride + next * stride;
            if v != u && !(radix == 2 && v < u) {
                g.add_unit_edge(u, v);
            }
            stride *= radix;
        }
    }
    Topology::with_uniform_servers(
        "torus",
        format!("{radix}-ary {dims}-cube"),
        g,
        servers_per_switch,
    )
}

/// Builds a mesh (torus without the wrap-around links).
pub fn mesh(dims: usize, radix: usize, servers_per_switch: usize) -> Topology {
    assert!(dims >= 1 && radix >= 2);
    let n = radix.pow(dims as u32);
    assert!(n <= 1 << 20, "mesh instance too large");
    let mut g = Graph::new(n);
    for u in 0..n {
        let mut stride = 1;
        for _d in 0..dims {
            let digit = (u / stride) % radix;
            if digit + 1 < radix {
                g.add_unit_edge(u, u + stride);
            }
            stride *= radix;
        }
    }
    Topology::with_uniform_servers(
        "mesh",
        format!("{radix}-ary {dims}-mesh"),
        g,
        servers_per_switch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn ring_is_a_one_dimensional_torus() {
        let t = torus(1, 8, 1);
        assert_eq!(t.num_switches(), 8);
        assert_eq!(t.num_links(), 8);
        for u in 0..8 {
            assert_eq!(t.graph.degree(u), 2);
        }
        assert_eq!(diameter(&t.graph), Some(4));
    }

    #[test]
    fn torus_2d_counts() {
        let t = torus(2, 4, 2);
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_links(), 32);
        for u in 0..16 {
            assert_eq!(t.graph.degree(u), 4);
        }
        assert!(is_connected(&t.graph));
        assert_eq!(t.num_servers(), 32);
        // max distance: 2 + 2
        assert_eq!(diameter(&t.graph), Some(4));
    }

    #[test]
    fn binary_torus_equals_hypercube() {
        // radix-2 torus has no doubled wrap links: it is exactly the
        // hypercube of the same dimension.
        let t = torus(3, 2, 1);
        let h = crate::hypercube::hypercube(3, 1);
        assert_eq!(t.num_links(), h.num_links());
        assert_eq!(diameter(&t.graph), diameter(&h.graph));
    }

    #[test]
    fn mesh_has_no_wraparound() {
        let m = mesh(1, 6, 1);
        assert_eq!(m.num_links(), 5);
        assert_eq!(diameter(&m.graph), Some(5));
        let t = torus(1, 6, 1);
        assert_eq!(t.num_links(), 6);
    }

    #[test]
    fn mesh_2d_structure() {
        let m = mesh(2, 3, 1);
        assert_eq!(m.num_switches(), 9);
        assert_eq!(m.num_links(), 12);
        assert!(is_connected(&m.graph));
        // corner nodes have degree 2, center has 4
        assert_eq!(m.graph.degree(0), 2);
        assert_eq!(m.graph.degree(4), 4);
    }
}
