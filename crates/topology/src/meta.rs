//! Construction-free topology metadata.
//!
//! A [`TopoMeta`] describes a topology instance — its display labels, switch
//! and server counts, and (where closed-form) link count and degree cap —
//! without building the graph. Every generator module exposes a `*_meta`
//! companion (e.g. [`crate::hypercube::hypercube_meta`]) whose output is
//! guaranteed to match the constructed [`Topology`](crate::Topology) exactly;
//! the contract is pinned by the `metadata_equiv` property test.
//!
//! The sweep engine uses this layer to expand scenario grids and render
//! tables without constructing a single graph, which is what makes fully
//! cache-hot runs build-free end to end (observable through
//! [`crate::topology::constructions`]).

/// Construction-free description of one topology instance.
///
/// `name` and `params` are exactly the strings the constructed
/// [`Topology`](crate::Topology) would carry; the counts match the built
/// graph. `links` and `degree` are `None` only where no closed form exists
/// (e.g. Erdős–Rényi natural-network stand-ins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoMeta {
    /// Family name, identical to `Topology::name`.
    pub name: String,
    /// Instance parameter string, identical to `Topology::params`.
    pub params: String,
    /// Number of switches (graph nodes).
    pub switches: usize,
    /// Total number of attached servers.
    pub servers: usize,
    /// Number of switches carrying at least one server.
    pub server_switches: usize,
    /// Number of switch-to-switch links, when derivable without construction.
    pub links: Option<usize>,
    /// Maximum inter-switch degree (the instance's degree cap), when
    /// derivable without construction.
    pub degree: Option<usize>,
}
