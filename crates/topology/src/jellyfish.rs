//! Jellyfish topology (Singla et al., NSDI 2012): a uniform-random regular
//! graph of top-of-rack switches, each hosting the same number of servers.
//!
//! Jellyfish doubles as the paper's *normalizer*: for any topology, a random
//! graph with exactly the same equipment (same switch count, same per-switch
//! inter-switch degree, same per-switch server count) is built and the
//! topology's throughput is reported relative to it ("relative throughput",
//! §IV). [`same_equipment`] implements that construction.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::random::{configuration_model, configuration_model_multigraph, random_regular_graph};

/// Construction-free metadata for [`jellyfish`]: the random wiring varies
/// with the seed, but the equipment (and the `r`-regular link count) does
/// not.
pub fn jellyfish_meta(
    switches: usize,
    degree: usize,
    servers_per_switch: usize,
    seed: u64,
) -> TopoMeta {
    TopoMeta {
        name: "Jellyfish".into(),
        params: format!("N={switches}, r={degree}, seed={seed}"),
        switches,
        servers: switches * servers_per_switch,
        server_switches: if servers_per_switch > 0 { switches } else { 0 },
        links: Some(switches * degree / 2),
        degree: Some(degree),
    }
}

/// Construction-free metadata for [`same_equipment`], derived from the
/// reference topology's metadata: the rewiring preserves every count.
pub fn same_equipment_meta(reference: &TopoMeta, seed: u64) -> TopoMeta {
    TopoMeta {
        name: "Jellyfish (same equipment)".into(),
        params: format!("of {} [{}], seed={seed}", reference.name, reference.params),
        switches: reference.switches,
        servers: reference.servers,
        server_switches: reference.server_switches,
        links: reference.links,
        degree: reference.degree,
    }
}

/// Builds a Jellyfish network: `switches` top-of-rack switches, each with
/// `degree` inter-switch links and `servers_per_switch` servers.
pub fn jellyfish(switches: usize, degree: usize, servers_per_switch: usize, seed: u64) -> Topology {
    let g = random_regular_graph(switches, degree, seed);
    Topology::with_uniform_servers(
        "Jellyfish",
        format!("N={switches}, r={degree}, seed={seed}"),
        g,
        servers_per_switch,
    )
}

/// Builds a random graph with *exactly the same equipment* as `reference`:
/// same number of switches, every switch keeping its inter-switch degree and
/// its server count, but with the links rewired uniformly at random
/// (configuration model conditioned on simplicity and connectivity).
pub fn same_equipment(reference: &Topology, seed: u64) -> Topology {
    let degrees = reference.graph.degree_sequence();
    let n = degrees.len();
    // Degree sequences with a node degree >= n (possible when the reference
    // uses link trunking, e.g. HyperX with K > 1) cannot be realized as a
    // simple graph; fall back to the multigraph configuration model, which is
    // the natural "rewire the same cables at random" interpretation.
    let g = if degrees.iter().any(|&d| d >= n) {
        configuration_model_multigraph(&degrees, seed)
    } else {
        configuration_model(&degrees, seed)
    };
    Topology::new(
        "Jellyfish (same equipment)",
        format!("of {} [{}], seed={seed}", reference.name, reference.params),
        g,
        reference.servers.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::fat_tree;
    use crate::hypercube::hypercube;
    use tb_graph::connectivity::is_connected;

    #[test]
    fn jellyfish_counts() {
        let t = jellyfish(40, 5, 6, 1);
        assert_eq!(t.num_switches(), 40);
        assert_eq!(t.num_links(), 100);
        assert_eq!(t.num_servers(), 240);
        assert!(is_connected(&t.graph));
        for u in 0..40 {
            assert_eq!(t.graph.degree(u), 5);
        }
    }

    #[test]
    fn same_equipment_preserves_equipment() {
        let reference = hypercube(4, 2);
        let rnd = same_equipment(&reference, 7);
        assert_eq!(rnd.num_switches(), reference.num_switches());
        assert_eq!(rnd.num_links(), reference.num_links());
        assert_eq!(rnd.num_servers(), reference.num_servers());
        assert_eq!(
            rnd.graph.degree_sequence(),
            reference.graph.degree_sequence()
        );
        assert_eq!(rnd.servers, reference.servers);
        assert!(is_connected(&rnd.graph));
    }

    #[test]
    fn same_equipment_of_irregular_topology() {
        // Fat tree has an irregular *used*-port sequence (core switches use
        // fewer inter-switch links than k if servers are counted separately);
        // the configuration model must match it exactly.
        let reference = fat_tree(4);
        let rnd = same_equipment(&reference, 3);
        assert_eq!(
            rnd.graph.degree_sequence(),
            reference.graph.degree_sequence()
        );
        assert!(is_connected(&rnd.graph));
    }

    #[test]
    fn different_seeds_give_different_wirings() {
        let a = jellyfish(30, 4, 1, 1);
        let b = jellyfish(30, 4, 1, 2);
        let ea: Vec<_> = a.graph.edges().iter().map(|e| (e.u, e.v)).collect();
        let eb: Vec<_> = b.graph.edges().iter().map(|e| (e.u, e.v)).collect();
        assert_ne!(ea, eb);
    }
}
