//! Slim Fly topology (Besta & Hoefler, SC 2014), built from the
//! McKay–Miller–Širáň (MMS) graphs.
//!
//! For a prime `q` with `q ≡ 1 (mod 4)` the MMS graph has `2 q^2` routers in
//! two blocks. Routers in block 0 are labeled `(0, x, y)` and in block 1
//! `(1, m, c)` with `x, y, m, c ∈ F_q`. Let `ξ` be a primitive root mod `q`,
//! `X` the set of even powers of `ξ` and `X'` the set of odd powers. Then:
//!
//! * `(0, x, y) ~ (0, x, y')`  iff `y − y' ∈ X`,
//! * `(1, m, c) ~ (1, m, c')`  iff `c − c' ∈ X'`,
//! * `(0, x, y) ~ (1, m, c)`   iff `y = m·x + c (mod q)`.
//!
//! The resulting network degree is `k' = (3q − 1) / 2` and the diameter is 2.
//! Slim Fly attaches `p ≈ ⌈k'/2⌉` servers per router. Only prime `q ≡ 1
//! (mod 4)` is implemented (q = 5, 13, 17, 29, ...), which covers the sizes
//! the paper plots; this restriction is recorded in `DESIGN.md`.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`slim_fly`]: the MMS graph on `2q^2`
/// routers is `k' = (3q-1)/2`-regular.
pub fn slim_fly_meta(q: usize, servers_per_router: usize) -> TopoMeta {
    let n = 2 * q * q;
    let degree = network_degree(q);
    TopoMeta {
        name: "Slim Fly".into(),
        params: format!("q={q}"),
        switches: n,
        servers: n * servers_per_router,
        server_switches: if servers_per_router > 0 { n } else { 0 },
        links: Some(n * degree / 2),
        degree: Some(degree),
    }
}

/// Returns true if `q` is prime.
fn is_prime(q: usize) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Finds a primitive root modulo the prime `q`.
fn primitive_root(q: usize) -> usize {
    let phi = q - 1;
    let mut factors = Vec::new();
    let mut m = phi;
    let mut d = 2;
    while d * d <= m {
        if m.is_multiple_of(d) {
            factors.push(d);
            while m.is_multiple_of(d) {
                m /= d;
            }
        }
        d += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    'outer: for g in 2..q {
        for &f in &factors {
            if mod_pow(g, phi / f, q) == 1 {
                continue 'outer;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

fn mod_pow(mut base: usize, mut exp: usize, modulus: usize) -> usize {
    let mut result = 1usize;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    result
}

/// The generator sets `X` (even powers of the primitive root) and `X'`
/// (odd powers) used by the MMS construction.
fn generator_sets(q: usize) -> (Vec<usize>, Vec<usize>) {
    let xi = primitive_root(q);
    let mut even = Vec::with_capacity((q - 1) / 2);
    let mut odd = Vec::with_capacity((q - 1) / 2);
    let mut value = 1usize;
    for i in 0..q - 1 {
        if i % 2 == 0 {
            even.push(value);
        } else {
            odd.push(value);
        }
        value = value * xi % q;
    }
    (even, odd)
}

/// Network degree of the Slim Fly MMS graph for prime `q`: `(3q - 1) / 2`.
pub fn network_degree(q: usize) -> usize {
    (3 * q - 1) / 2
}

/// Builds a Slim Fly (MMS) network for prime `q ≡ 1 (mod 4)` with
/// `servers_per_router` servers attached to every router.
///
/// # Panics
/// Panics if `q` is not a prime congruent to 1 mod 4.
pub fn slim_fly(q: usize, servers_per_router: usize) -> Topology {
    assert!(is_prime(q), "q must be prime (got {q})");
    assert!(q % 4 == 1, "q must satisfy q ≡ 1 (mod 4) (got {q})");
    let (x_even, x_odd) = generator_sets(q);
    let n = 2 * q * q;
    let block0 = |x: usize, y: usize| x * q + y;
    let block1 = |m: usize, c: usize| q * q + m * q + c;
    let mut g = Graph::new(n);

    // Intra-block edges. X and X' are symmetric sets (q ≡ 1 mod 4 makes −1 an
    // even power), so add each pair once.
    for x in 0..q {
        for y in 0..q {
            for &delta in &x_even {
                let y2 = (y + delta) % q;
                if block0(x, y2) > block0(x, y) {
                    g.add_unit_edge(block0(x, y), block0(x, y2));
                }
            }
        }
    }
    for m in 0..q {
        for c in 0..q {
            for &delta in &x_odd {
                let c2 = (c + delta) % q;
                if block1(m, c2) > block1(m, c) {
                    g.add_unit_edge(block1(m, c), block1(m, c2));
                }
            }
        }
    }
    // Inter-block edges: (0, x, y) ~ (1, m, c) iff y = m x + c.
    for x in 0..q {
        for m in 0..q {
            for c in 0..q {
                let y = (m * x + c) % q;
                g.add_unit_edge(block0(x, y), block1(m, c));
            }
        }
    }

    Topology::with_uniform_servers("Slim Fly", format!("q={q}"), g, servers_per_router)
}

/// The canonical server count per router used by the Slim Fly paper:
/// `⌈k'/2⌉` where `k'` is the network degree.
pub fn canonical_servers_per_router(q: usize) -> usize {
    network_degree(q).div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn primitive_roots() {
        assert_eq!(mod_pow(primitive_root(5), 4, 5), 1);
        assert_eq!(mod_pow(primitive_root(13), 12, 13), 1);
        // A primitive root's order must be exactly q-1: squares differ from 1
        // at (q-1)/2.
        for q in [5usize, 13, 17, 29] {
            let r = primitive_root(q);
            assert_ne!(mod_pow(r, (q - 1) / 2, q), 1, "q={q}");
        }
    }

    #[test]
    fn generator_sets_are_symmetric_for_q_1_mod_4() {
        for q in [5usize, 13, 17] {
            let (even, odd) = generator_sets(q);
            assert_eq!(even.len(), (q - 1) / 2);
            assert_eq!(odd.len(), (q - 1) / 2);
            for &v in &even {
                assert!(
                    even.contains(&((q - v) % q)),
                    "even set not symmetric for q={q}"
                );
            }
            for &v in &odd {
                assert!(
                    odd.contains(&((q - v) % q)),
                    "odd set not symmetric for q={q}"
                );
            }
        }
    }

    #[test]
    fn slim_fly_q5_structure() {
        let t = slim_fly(5, 1);
        assert_eq!(t.num_switches(), 50);
        let deg = network_degree(5); // 7
        assert_eq!(deg, 7);
        for u in 0..50 {
            assert_eq!(t.graph.degree(u), deg, "router {u}");
        }
        assert_eq!(t.num_links(), 50 * deg / 2);
        assert!(is_connected(&t.graph));
        assert_eq!(diameter(&t.graph), Some(2));
    }

    #[test]
    fn slim_fly_q13_is_diameter_two() {
        let t = slim_fly(13, 1);
        assert_eq!(t.num_switches(), 338);
        for u in 0..t.num_switches() {
            assert_eq!(t.graph.degree(u), network_degree(13));
        }
        assert_eq!(diameter(&t.graph), Some(2));
    }

    #[test]
    #[should_panic]
    fn q_not_1_mod_4_rejected() {
        slim_fly(7, 1);
    }

    #[test]
    fn canonical_concentration() {
        assert_eq!(canonical_servers_per_router(5), 4);
        assert_eq!(canonical_servers_per_router(13), 10);
    }
}
