//! # tb-topology
//!
//! Generators for every network topology family evaluated in the paper
//! (§III-A3), plus the auxiliary constructions used in its analysis:
//!
//! | Family | Module | Reference |
//! |---|---|---|
//! | BCube | [`bcube`] | Guo et al., SIGCOMM 2009 |
//! | DCell | [`dcell`] | Guo et al., SIGCOMM 2008 |
//! | Dragonfly | [`dragonfly`] | Kim et al., ISCA 2008 |
//! | Fat tree | [`fattree`] | Al-Fares et al., SIGCOMM 2008 / Leiserson 1985 |
//! | Flattened butterfly | [`flattened_butterfly`] | Kim et al., ISCA 2007 |
//! | Hypercube | [`hypercube`] | Bhuyan & Agrawal 1984 |
//! | HyperX | [`hyperx`] | Ahn et al., SC 2009 |
//! | Jellyfish (random regular) | [`jellyfish`] | Singla et al., NSDI 2012 |
//! | Long Hop | [`longhop`] | Tomic, ANCS 2013 |
//! | Slim Fly | [`slimfly`] | Besta & Hoefler, SC 2014 |
//! | Natural-network stand-ins | [`natural`] | §III-B (66 natural networks) |
//! | Theorem-1 constructions | [`expander`] | §II-B / Appendix A |
//!
//! Beyond the paper's ten families, the crate also provides torus/mesh
//! ([`torus`]), Xpander ([`xpander`], cited by the paper as [44]) and
//! leaf–spine ([`leafspine`]) generators for extension studies.
//!
//! Every generator returns a [`Topology`]: a switch [`Graph`](tb_graph::Graph)
//! plus the number of servers attached to each switch. Server placement
//! follows §III-A2: structured networks (fat tree, BCube, DCell) attach
//! servers only at their prescribed locations; all other networks attach
//! servers to every switch.

pub mod bcube;
pub mod dcell;
pub mod dragonfly;
pub mod expander;
pub mod families;
pub mod fattree;
pub mod faults;
pub mod flattened_butterfly;
pub mod hypercube;
pub mod hyperx;
pub mod jellyfish;
pub mod leafspine;
pub mod longhop;
pub mod meta;
pub mod natural;
pub mod slimfly;
pub mod topology;
pub mod torus;
pub mod xpander;

pub use families::{Family, ALL_FAMILIES};
pub use meta::TopoMeta;
pub use topology::{constructions, Topology};
