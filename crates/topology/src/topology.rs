//! The [`Topology`] type: a switch graph plus server attachments.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use tb_graph::Graph;

/// Process-wide count of [`Topology`] constructions.
static CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Number of [`Topology`] values constructed by this process so far (every
/// generator funnels through [`Topology::new`]). The sweep engine reads this
/// before and after a run to prove that cache-hot runs build **zero**
/// topologies end to end; like the solver-invocation counter in `tb_flow`,
/// it is global, so exact-zero assertions belong in single-test binaries.
pub fn constructions() -> u64 {
    CONSTRUCTIONS.load(Ordering::Relaxed)
}

/// A network topology under evaluation: the switch-level graph, the number of
/// servers attached to every switch, and descriptive metadata.
///
/// Server-to-switch links are modeled as infinite capacity (§II-A of the
/// paper), so servers never appear as graph nodes; only their counts matter,
/// because the hose model limits each *server* to one unit of traffic in and
/// one unit out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable family name (e.g. `"fat tree"`).
    pub name: String,
    /// Parameter string describing this instance (e.g. `"k=8"`).
    pub params: String,
    /// The switch graph.
    pub graph: Graph,
    /// Number of servers attached to each switch (indexed by switch id).
    pub servers: Vec<usize>,
}

impl Topology {
    /// Creates a topology, checking that the server vector matches the graph.
    pub fn new(
        name: impl Into<String>,
        params: impl Into<String>,
        graph: Graph,
        servers: Vec<usize>,
    ) -> Self {
        assert_eq!(
            servers.len(),
            graph.num_nodes(),
            "servers vector must have one entry per switch"
        );
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        Topology {
            name: name.into(),
            params: params.into(),
            graph,
            servers,
        }
    }

    /// Creates a topology with the same number of servers on every switch.
    pub fn with_uniform_servers(
        name: impl Into<String>,
        params: impl Into<String>,
        graph: Graph,
        servers_per_switch: usize,
    ) -> Self {
        let n = graph.num_nodes();
        Topology::new(name, params, graph, vec![servers_per_switch; n])
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Total number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.iter().sum()
    }

    /// Number of switch-to-switch links.
    pub fn num_links(&self) -> usize {
        self.graph.num_edges()
    }

    /// Returns a copy of this topology with every server-attached switch
    /// carrying `per_switch` servers instead of its current count; switches
    /// without servers stay server-free. Used to vary the RM(k) concentration
    /// on the same switch graph (the Fig. 2 series) without re-deriving the
    /// topology's server-placement invariants by hand.
    pub fn with_servers_per_switch(&self, per_switch: usize) -> Topology {
        let servers: Vec<usize> = self
            .servers
            .iter()
            .map(|&s| if s > 0 { per_switch } else { 0 })
            .collect();
        Topology::new(
            self.name.clone(),
            self.params.clone(),
            self.graph.clone(),
            servers,
        )
    }

    /// Switch ids that have at least one server attached (the "top of rack"
    /// switches; traffic originates and terminates only here).
    pub fn server_switches(&self) -> Vec<usize> {
        (0..self.num_switches())
            .filter(|&u| self.servers[u] > 0)
            .collect()
    }

    /// Equipment summary used when building a same-equipment random graph and
    /// in experiment logs.
    pub fn equipment(&self) -> Equipment {
        Equipment {
            switches: self.num_switches(),
            links: self.num_links(),
            servers: self.num_servers(),
            degree_sequence: self.graph.degree_sequence(),
            servers_per_switch: self.servers.clone(),
        }
    }

    /// A short single-line description.
    pub fn describe(&self) -> String {
        format!(
            "{} [{}]: {} switches, {} links, {} servers",
            self.name,
            self.params,
            self.num_switches(),
            self.num_links(),
            self.num_servers()
        )
    }
}

/// The hardware inventory of a topology instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Equipment {
    /// Number of switches.
    pub switches: usize,
    /// Number of switch-to-switch links.
    pub links: usize,
    /// Total servers.
    pub servers: usize,
    /// Inter-switch ports used on each switch.
    pub degree_sequence: Vec<usize>,
    /// Servers attached to each switch.
    pub servers_per_switch: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;

    #[test]
    fn counts_and_description() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = Topology::new("test", "tiny", g, vec![2, 0, 1]);
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.num_servers(), 3);
        assert_eq!(t.server_switches(), vec![0, 2]);
        assert!(t.describe().contains("test"));
        let eq = t.equipment();
        assert_eq!(eq.switches, 3);
        assert_eq!(eq.degree_sequence, vec![1, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn mismatched_server_vector_panics() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        Topology::new("bad", "", g, vec![1, 1]);
    }

    #[test]
    fn with_servers_per_switch_reattaches_only_server_switches() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = Topology::new("test", "tiny", g, vec![2, 0, 1]);
        let r = t.with_servers_per_switch(5);
        assert_eq!(r.servers, vec![5, 0, 5]);
        assert_eq!(r.name, t.name);
        assert_eq!(r.num_links(), t.num_links());
    }

    #[test]
    fn uniform_servers() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let t = Topology::with_uniform_servers("ring", "n=4", g, 3);
        assert_eq!(t.num_servers(), 12);
        assert_eq!(t.server_switches().len(), 4);
    }
}
