//! Two-level leaf–spine (folded Clos) topology.
//!
//! The most common production data-center fabric; a useful baseline next to
//! the three-level fat tree, and the smallest member of the Clos family the
//! paper's fat-tree results generalize to.

use crate::topology::Topology;
use tb_graph::Graph;

/// Builds a leaf–spine fabric: `leaves` leaf switches, `spines` spine
/// switches, every leaf connected to every spine by `trunking` parallel links,
/// and `servers_per_leaf` servers on each leaf. Spine switches carry no
/// servers.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    trunking: usize,
    servers_per_leaf: usize,
) -> Topology {
    assert!(leaves >= 2 && spines >= 1 && trunking >= 1);
    let n = leaves + spines;
    let mut g = Graph::new(n);
    for l in 0..leaves {
        for s in 0..spines {
            for _ in 0..trunking {
                g.add_unit_edge(l, leaves + s);
            }
        }
    }
    let mut servers = vec![0usize; n];
    for srv in servers.iter_mut().take(leaves) {
        *srv = servers_per_leaf;
    }
    Topology::new(
        "leaf-spine",
        format!("{leaves} leaves x {spines} spines, trunk={trunking}"),
        g,
        servers,
    )
}

/// The oversubscription ratio of a leaf–spine design: downlink capacity per
/// leaf (servers) divided by uplink capacity per leaf (spines × trunking).
/// 1.0 means non-blocking; larger values are oversubscribed.
pub fn oversubscription(
    leaves: usize,
    spines: usize,
    trunking: usize,
    servers_per_leaf: usize,
) -> f64 {
    let _ = leaves;
    servers_per_leaf as f64 / (spines as f64 * trunking as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn structure() {
        let t = leaf_spine(8, 4, 1, 4);
        assert_eq!(t.num_switches(), 12);
        assert_eq!(t.num_links(), 32);
        assert_eq!(t.num_servers(), 32);
        assert!(is_connected(&t.graph));
        assert_eq!(diameter(&t.graph), Some(2));
        for l in 0..8 {
            assert_eq!(t.graph.degree(l), 4);
            assert_eq!(t.servers[l], 4);
        }
        for s in 8..12 {
            assert_eq!(t.graph.degree(s), 8);
            assert_eq!(t.servers[s], 0);
        }
    }

    #[test]
    fn trunking_multiplies_links() {
        let t = leaf_spine(4, 2, 3, 2);
        assert_eq!(t.num_links(), 4 * 2 * 3);
        assert_eq!(t.graph.edge_multiplicity(0, 4), 3);
    }

    #[test]
    fn oversubscription_ratio() {
        assert_eq!(oversubscription(8, 4, 1, 4), 1.0);
        assert_eq!(oversubscription(8, 2, 1, 4), 2.0);
        assert_eq!(oversubscription(8, 4, 2, 4), 0.5);
    }
}
