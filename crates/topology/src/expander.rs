//! The two graph families used in the paper's Theorem 1 (§II-B, Appendix A) to
//! separate sparsest cut from worst-case throughput:
//!
//! * **Graph A** — a clustered random graph: two equal clusters; every node
//!   has degree `alpha` inside its cluster and `beta` across, with
//!   `beta ≈ alpha / log n`,
//! * **Graph B** — a `2d`-regular random expander on `n / p` nodes whose edges
//!   are each replaced by paths of length `p` (a subdivision).
//!
//! These are used by the `theorem1_demo` experiment binary to show that A has
//! higher throughput while B has the higher (sparser-cut) score.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tb_graph::random::random_regular_graph;
use tb_graph::Graph;

/// Builds the clustered random graph ("Graph A"): `n` nodes split into two
/// clusters of `n/2`; every node gets `alpha` edges to random nodes of its own
/// cluster and `beta` edges to random nodes of the other cluster (degrees are
/// met exactly by construction of random regular/bipartite-regular layers).
pub fn clustered_random(n: usize, alpha: usize, beta: usize, seed: u64) -> Topology {
    assert!(n >= 4 && n.is_multiple_of(2), "n must be even and >= 4");
    let half = n / 2;
    assert!(
        alpha < half && beta <= half,
        "degrees too large for the cluster size"
    );
    assert!((half * alpha).is_multiple_of(2), "alpha * n/2 must be even");
    let mut g = Graph::new(n);
    // Intra-cluster: an alpha-regular random graph in each cluster.
    for (offset, s) in [(0usize, seed), (half, seed.wrapping_add(1))] {
        if alpha > 0 {
            let sub = random_regular_graph(half, alpha, s);
            for e in sub.edges() {
                g.add_unit_edge(e.u + offset, e.v + offset);
            }
        }
    }
    // Inter-cluster: beta random perfect matchings between the clusters gives
    // every node exactly beta cross edges.
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(2));
    for _ in 0..beta {
        let mut perm: Vec<usize> = (0..half).collect();
        // Fisher-Yates shuffle.
        for i in (1..half).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for (left, &right) in perm.iter().enumerate() {
            g.add_unit_edge(left, half + right);
        }
    }
    Topology::with_uniform_servers(
        "clustered random (Graph A)",
        format!("n={n}, alpha={alpha}, beta={beta}"),
        g,
        1,
    )
}

/// Construction-free metadata for [`clustered_random`]: degrees are met
/// exactly (alpha-regular layers plus beta cross matchings), so the link
/// count is closed-form.
pub fn clustered_random_meta(n: usize, alpha: usize, beta: usize) -> TopoMeta {
    TopoMeta {
        name: "clustered random (Graph A)".into(),
        params: format!("n={n}, alpha={alpha}, beta={beta}"),
        switches: n,
        servers: n,
        server_switches: n,
        links: Some(n * alpha / 2 + n / 2 * beta),
        degree: Some(alpha + beta),
    }
}

/// Construction-free metadata for [`subdivided_expander`]: the base expander
/// has `base_nodes * d` edges, each subdivided into a path of `p` links.
pub fn subdivided_expander_meta(base_nodes: usize, d: usize, p: usize) -> TopoMeta {
    let base_edges = base_nodes * d;
    TopoMeta {
        name: "subdivided expander (Graph B)".into(),
        params: format!("N={base_nodes}, d={d}, p={p}"),
        switches: base_nodes + base_edges * (p - 1),
        servers: base_nodes,
        server_switches: base_nodes,
        links: Some(base_edges * p),
        degree: Some(2 * d),
    }
}

/// Builds the subdivided expander ("Graph B"): a `2d`-regular random graph on
/// `base_nodes` nodes with every edge replaced by a path of `p` edges.
/// Endpoints (the original expander nodes) carry one traffic endpoint each;
/// the subdivision nodes carry none.
pub fn subdivided_expander(base_nodes: usize, d: usize, p: usize, seed: u64) -> Topology {
    assert!(p >= 1);
    let base = random_regular_graph(base_nodes, 2 * d, seed);
    let g = base.subdivide(p);
    let mut servers = vec![0usize; g.num_nodes()];
    for s in servers.iter_mut().take(base_nodes) {
        *s = 1;
    }
    Topology::new(
        "subdivided expander (Graph B)",
        format!("N={base_nodes}, d={d}, p={p}"),
        g,
        servers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;

    #[test]
    fn clustered_random_degrees() {
        let t = clustered_random(40, 4, 2, 3);
        assert_eq!(t.num_switches(), 40);
        for u in 0..40 {
            assert_eq!(t.graph.degree(u), 6, "node {u}");
        }
        assert!(is_connected(&t.graph));
        // Cross edges: exactly beta * n/2.
        let cross = t
            .graph
            .edges()
            .iter()
            .filter(|e| (e.u < 20) != (e.v < 20))
            .count();
        assert_eq!(cross, 2 * 20);
    }

    #[test]
    fn clustered_random_cut_between_clusters_is_beta_half_n() {
        let t = clustered_random(24, 4, 1, 9);
        let in_set: Vec<bool> = (0..24).map(|u| u < 12).collect();
        assert_eq!(t.graph.cut_capacity(&in_set) as usize, 12);
    }

    #[test]
    fn subdivided_expander_structure() {
        let t = subdivided_expander(16, 2, 3, 5);
        // base: 16 nodes of degree 4 -> 32 edges; subdivision adds 2 nodes per edge.
        assert_eq!(t.num_switches(), 16 + 32 * 2);
        assert_eq!(t.num_links(), 32 * 3);
        assert_eq!(t.num_servers(), 16);
        assert!(is_connected(&t.graph));
        // Original nodes keep degree 4; path nodes have degree 2.
        for u in 0..16 {
            assert_eq!(t.graph.degree(u), 4);
        }
        for u in 16..t.num_switches() {
            assert_eq!(t.graph.degree(u), 2);
        }
    }

    #[test]
    fn p_equals_one_is_plain_expander() {
        let t = subdivided_expander(20, 3, 1, 7);
        assert_eq!(t.num_switches(), 20);
        assert_eq!(t.num_links(), 20 * 6 / 2);
    }
}
