//! Three-level fat-tree / folded-Clos topology (Al-Fares et al., SIGCOMM 2008).
//!
//! A `k`-ary fat tree (k even) has `k` pods. Each pod contains `k/2` edge
//! switches and `k/2` aggregation switches; there are `(k/2)^2` core switches.
//! Every switch has radix `k`. Servers attach only to edge switches, `k/2`
//! per edge switch, for a total of `k^3/4` servers. Built as a non-blocking
//! (full bisection) topology, which is the configuration the paper evaluates.

use crate::meta::TopoMeta;
use crate::topology::Topology;
use tb_graph::Graph;

/// Construction-free metadata for [`fat_tree`].
pub fn fat_tree_meta(k: usize) -> TopoMeta {
    let half = k / 2;
    let num_edge = k * half;
    TopoMeta {
        name: "fat tree".into(),
        params: format!("k={k}"),
        switches: 2 * num_edge + half * half,
        servers: num_edge * half,
        server_switches: num_edge,
        // edge–aggregation plus aggregation–core, k * (k/2)^2 links each.
        links: Some(2 * k * half * half),
        degree: Some(k),
    }
}

/// Builds a `k`-ary three-level fat tree.
///
/// Switch ids are laid out as: edge switches first (pod-major), then
/// aggregation switches (pod-major), then core switches.
///
/// # Panics
/// Panics if `k` is odd or `k < 2`.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree requires even k >= 2"
    );
    let half = k / 2;
    let num_edge = k * half;
    let num_agg = k * half;
    let num_core = half * half;
    let n = num_edge + num_agg + num_core;
    let edge_id = |pod: usize, i: usize| pod * half + i;
    let agg_id = |pod: usize, i: usize| num_edge + pod * half + i;
    let core_id = |i: usize, j: usize| num_edge + num_agg + i * half + j;

    let mut g = Graph::new(n);
    for pod in 0..k {
        for e in 0..half {
            for a in 0..half {
                g.add_unit_edge(edge_id(pod, e), agg_id(pod, a));
            }
        }
        // Aggregation switch `a` of each pod connects to core switches in row `a`.
        for a in 0..half {
            for j in 0..half {
                g.add_unit_edge(agg_id(pod, a), core_id(a, j));
            }
        }
    }
    let mut servers = vec![0usize; n];
    for s in servers.iter_mut().take(num_edge) {
        *s = half;
    }
    Topology::new("fat tree", format!("k={k}"), g, servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::connectivity::is_connected;
    use tb_graph::shortest_path::diameter;

    #[test]
    fn counts_match_alfares() {
        for k in [4usize, 6, 8, 10] {
            let t = fat_tree(k);
            let half = k / 2;
            // k^2/2 edge + k^2/2 aggregation + (k/2)^2 core switches.
            assert_eq!(t.num_switches(), k * k + half * half);
            assert_eq!(t.num_servers(), k * k * k / 4);
            // Each edge switch uses k/2 uplinks; each agg k/2 down + k/2 up;
            // each core k downlinks.
            assert_eq!(t.num_links(), k * half * half + k * half * half);
            assert!(is_connected(&t.graph));
        }
    }

    #[test]
    fn switch_radix_is_k() {
        let k = 8;
        let t = fat_tree(k);
        let half = k / 2;
        let num_edge = k * half;
        let num_agg = k * half;
        for u in 0..t.num_switches() {
            let ports = t.graph.degree(u) + t.servers[u];
            if u < num_edge {
                assert_eq!(ports, k, "edge switch {u}");
            } else if u < num_edge + num_agg {
                assert_eq!(ports, k, "agg switch {u}");
            } else {
                assert_eq!(ports, k, "core switch {u}");
            }
        }
    }

    #[test]
    fn servers_only_on_edge_switches() {
        let t = fat_tree(6);
        let num_edge = 6 * 3;
        for (u, &s) in t.servers.iter().enumerate() {
            if u < num_edge {
                assert_eq!(s, 3);
            } else {
                assert_eq!(s, 0);
            }
        }
    }

    #[test]
    fn diameter_is_four_switch_hops() {
        // Edge -> agg -> core -> agg -> edge: 4 switch-level hops.
        let t = fat_tree(4);
        assert_eq!(diameter(&t.graph), Some(4));
    }
}
