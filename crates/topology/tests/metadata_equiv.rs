//! The metadata contract, property-tested: for every family, every ladder
//! rung, every representative and every natural-network stand-in, across
//! scales and seeds, the construction-free metadata must describe the
//! constructed topology *exactly* — names, params, switch/server counts,
//! link counts and degree caps. The sweep engine's zero-build cache-hot path
//! depends on this equivalence.
//!
//! This binary holds a single test on purpose: it first proves that the
//! metadata pass constructs **zero** topologies (reading the process-global
//! construction counter), which would race against any sibling test that
//! builds graphs concurrently.

use tb_topology::families::{Scale, ALL_FAMILIES};
use tb_topology::natural::{natural_meta, natural_network};
use tb_topology::{constructions, TopoMeta, Topology};

const SEEDS: [u64; 3] = [1, 7, 1_000_003];
const NATURAL_INDICES: usize = 16;

fn assert_meta_matches(meta: &TopoMeta, built: &Topology, what: &str) {
    assert_eq!(meta.name, built.name, "{what}: name");
    assert_eq!(meta.params, built.params, "{what}: params");
    assert_eq!(meta.switches, built.num_switches(), "{what}: switches");
    assert_eq!(meta.servers, built.num_servers(), "{what}: servers");
    assert_eq!(
        meta.server_switches,
        built.server_switches().len(),
        "{what}: server switches"
    );
    if let Some(links) = meta.links {
        assert_eq!(links, built.num_links(), "{what}: links");
    }
    if let Some(degree) = meta.degree {
        let max_degree = (0..built.num_switches())
            .map(|u| built.graph.degree(u))
            .max()
            .unwrap_or(0);
        assert_eq!(degree, max_degree, "{what}: degree cap");
    }
}

#[test]
fn metadata_is_construction_free_and_exact() {
    // Phase 1: collect every metadata record without building anything.
    let builds_before = constructions();
    let mut metas: Vec<(String, Option<TopoMeta>)> = Vec::new();
    for family in ALL_FAMILIES {
        for scale in [Scale::Small, Scale::Full] {
            for seed in SEEDS {
                for index in 0..family.ladder_len(scale) {
                    metas.push((
                        format!("{}/{scale:?}/{seed}/{index}", family.name()),
                        family.ladder_meta(scale, seed, index),
                    ));
                }
                // Out-of-range rungs must have no metadata.
                assert!(family
                    .ladder_meta(scale, seed, family.ladder_len(scale) + 3)
                    .is_none());
            }
        }
        for seed in SEEDS {
            metas.push((
                format!("{}/representative/{seed}", family.name()),
                Some(family.representative_meta(seed)),
            ));
        }
    }
    for index in 0..NATURAL_INDICES {
        metas.push((format!("natural/{index}"), Some(natural_meta(index))));
    }
    assert_eq!(
        constructions() - builds_before,
        0,
        "metadata lookups must not construct topologies"
    );

    // Phase 2: build each instance and compare. Rung feasibility must agree
    // between metadata and construction.
    let mut checked = 0usize;
    for family in ALL_FAMILIES {
        for scale in [Scale::Small, Scale::Full] {
            for seed in SEEDS {
                for index in 0..family.ladder_len(scale) {
                    let what = format!("{}/{scale:?}/{seed}/{index}", family.name());
                    let meta = metas
                        .iter()
                        .find(|(k, _)| *k == what)
                        .map(|(_, m)| m.clone())
                        .expect("collected above");
                    match family.ladder_instance(scale, seed, index) {
                        Some(built) => {
                            let meta =
                                meta.unwrap_or_else(|| panic!("{what}: builds but no metadata"));
                            assert_meta_matches(&meta, &built, &what);
                            checked += 1;
                        }
                        None => assert!(meta.is_none(), "{what}: metadata without a build"),
                    }
                }
            }
        }
        for seed in SEEDS {
            let what = format!("{}/representative/{seed}", family.name());
            let built = family.representative(seed);
            assert_meta_matches(&family.representative_meta(seed), &built, &what);
            checked += 1;
        }
    }
    for index in 0..NATURAL_INDICES {
        for seed in SEEDS {
            let built = natural_network(index, seed);
            assert_meta_matches(&natural_meta(index), &built, &format!("natural/{index}"));
            checked += 1;
        }
    }
    assert!(checked > 100, "property test must cover the full grid");
}
