//! The shared multiplicative-weights length layer.
//!
//! Every solver in this crate prices routes against a *length function*: a
//! positive weight per directed arc (Fleischer, exact-LP validation sweeps) or
//! per link (the path-restricted solver). Before this module, each solver
//! carried its own copy of the same machinery — `delta` initialization,
//! the multiplicative update, the incremental `D(l)` potential, and ad-hoc
//! closures summing lengths along a path. They now all read lengths through
//! one interface:
//!
//! * [`ArcLengths`] — the read side: `len_of` plus derived `path_cost`.
//!   Implemented by plain `[f64]` slices, [`LengthSnapshot`] and
//!   [`MwuLengths`].
//! * [`LengthSnapshot`] — an explicitly *frozen* borrow of a length function.
//!   The batch-parallel routing epochs hand one snapshot to every worker; the
//!   type exists so "read-only against the epoch snapshot" is visible in
//!   kernel signatures instead of being a comment.
//! * [`MwuLengths`] — the owned state: lengths, capacities (plus cached
//!   reciprocals), the step size and the incrementally-maintained
//!   `D(l) = Σ_a len_a · cap_a`. [`reset`](MwuLengths::reset) re-initializes
//!   in place so a solver workspace reuses the buffers across solves.
//!
//! Two update flavors exist for bit-compatibility with the committed golden
//! artifacts: [`apply`](MwuLengths::apply) multiplies by the cached reciprocal
//! capacity (the Fleischer hot path, where a multiply measurably beats a
//! divide), while [`apply_quotient`](MwuLengths::apply_quotient) divides by
//! the capacity — the arithmetic the path-restricted solver has always used.
//! The two differ by at most one rounding step per update, but the golden
//! suite pins results bit-for-bit, so each solver keeps its historical form.

/// Upper limit on the rescaled initial potential `D_0` a warm start may
/// claim (cold init has `D_0 = m · delta ≪ 1`). A skewed shape whose floor
/// rescale would already spend a quarter of the saturation budget leaves too
/// few phases of headroom to be worth anything — reject it and run cold.
pub const WARM_MAX_D0: f64 = 0.25;

/// Read access to a per-arc (or per-link) length function.
pub trait ArcLengths {
    /// The length of arc/link `id`.
    fn len_of(&self, id: usize) -> f64;

    /// Sum of lengths along a path given as length indices.
    fn path_cost<I: IntoIterator<Item = usize>>(&self, ids: I) -> f64 {
        ids.into_iter().map(|id| self.len_of(id)).sum()
    }
}

impl ArcLengths for [f64] {
    #[inline]
    fn len_of(&self, id: usize) -> f64 {
        self[id]
    }
}

/// A frozen, read-only view of a length function.
///
/// Holding a `LengthSnapshot` guarantees (by the borrow checker) that the
/// underlying lengths cannot change while any reader is alive — exactly the
/// property the batch-parallel routing epochs need: all workers of an epoch
/// price their trees against the same snapshot, and the merged length update
/// only happens after the snapshot is dropped.
#[derive(Debug, Clone, Copy)]
pub struct LengthSnapshot<'a> {
    lens: &'a [f64],
}

impl<'a> LengthSnapshot<'a> {
    /// Freezes a borrowed length slice.
    pub fn new(lens: &'a [f64]) -> Self {
        LengthSnapshot { lens }
    }

    /// The underlying dense slice (for kernels that index directly, e.g. the
    /// SSSP relax loop).
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.lens
    }
}

impl ArcLengths for LengthSnapshot<'_> {
    #[inline]
    fn len_of(&self, id: usize) -> f64 {
        self.lens[id]
    }
}

/// Multiplicative-weights length state: lengths + capacities + step size +
/// the incrementally maintained potential `D(l) = Σ_a len_a · cap_a`.
#[derive(Debug, Clone, Default)]
pub struct MwuLengths {
    lens: Vec<f64>,
    caps: Vec<f64>,
    /// Cached reciprocals: the update loops run one per loaded arc, and a
    /// multiply beats a divide several times over there.
    inv_caps: Vec<f64>,
    eps: f64,
    d_l: f64,
}

impl MwuLengths {
    /// Creates empty state; call [`reset`](MwuLengths::reset) before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re-)initializes for a new solve over the given capacities: every
    /// length starts at `delta / cap` with the classical
    /// `delta = (m / (1 - eps))^(-1/eps)`, and `D(l)` is summed fresh.
    /// Buffers are reused, so repeated resets stop allocating once the
    /// largest instance has been seen.
    ///
    /// # Panics
    /// Panics if `eps` is outside `(0, 0.5)` (the FPTAS step-size range).
    pub fn reset<I: IntoIterator<Item = f64>>(&mut self, eps: f64, caps: I) {
        assert!(eps > 0.0 && eps < 0.5, "epsilon must be in (0, 0.5)");
        self.eps = eps;
        self.caps.clear();
        self.caps.extend(caps);
        let m = self.caps.len();
        let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);
        self.inv_caps.clear();
        self.inv_caps.extend(self.caps.iter().map(|c| 1.0 / c));
        self.lens.clear();
        self.lens.extend(self.caps.iter().map(|c| delta / c));
        self.d_l = self
            .lens
            .iter()
            .zip(self.caps.iter())
            .map(|(l, c)| l * c)
            .sum();
    }

    /// Warm (re-)initialization: project a donor length *shape* onto this
    /// instance's arcs and rescale it to the delta-init potential scale.
    /// Returns `true` if the warm shape was accepted; on `false` the state is
    /// left at the plain cold init (the method always runs
    /// [`reset`](MwuLengths::reset) first, so rejection is never a partial
    /// state).
    ///
    /// Projection: arc `a` of this instance samples `shape[a · k / m]` where
    /// `k = shape.len()` — nearest-index resampling, exact when the arc counts
    /// match (adjacent ladder rungs differ slightly). Rescaling (see
    /// [`WarmRescale`]) maps the sampled shape down to the `delta` scale so
    /// saturation at `D(l) ≥ 1` keeps its meaning. A shape is rejected when
    /// any sampled potential `s_a · cap_a` is non-finite or non-positive, or
    /// when the rescaled initial potential `D_0` would exceed
    /// [`WARM_MAX_D0`] — a warm start may not consume the potential headroom
    /// the phases need, else a garbage shape saturates instantly with
    /// vacuous bounds.
    ///
    /// # Panics
    /// Panics if `eps` is outside `(0, 0.5)` (same contract as `reset`).
    pub fn reset_warm<I: IntoIterator<Item = f64>>(
        &mut self,
        eps: f64,
        caps: I,
        shape: &[f64],
        rescale: WarmRescale,
    ) -> bool {
        self.reset(eps, caps);
        let m = self.caps.len();
        let k = shape.len();
        if m == 0 || k == 0 {
            return false;
        }
        let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);
        // Per-arc potentials of the projected shape: pot_a = shape[a·k/m] · cap_a.
        let mut min_pot = f64::INFINITY;
        let mut sum_pot = 0.0f64;
        for a in 0..m {
            let s = shape[a * k / m];
            let pot = s * self.caps[a];
            if !pot.is_finite() || pot <= 0.0 {
                return false;
            }
            min_pot = min_pot.min(pot);
            sum_pot += pot;
        }
        let t = match rescale {
            WarmRescale::Floor => delta / min_pot,
            WarmRescale::Mean => m as f64 * delta / sum_pot,
        };
        if !t.is_finite() || t <= 0.0 {
            return false;
        }
        let d0 = t * sum_pot;
        if !d0.is_finite() || d0 >= WARM_MAX_D0 {
            return false;
        }
        for a in 0..m {
            self.lens[a] = t * shape[a * k / m];
        }
        self.d_l = self
            .lens
            .iter()
            .zip(self.caps.iter())
            .map(|(l, c)| l * c)
            .sum();
        true
    }

    /// Number of arcs/links the state covers.
    pub fn num_arcs(&self) -> usize {
        self.caps.len()
    }

    /// The dense length slice (what SSSP kernels index).
    #[inline]
    pub fn lens(&self) -> &[f64] {
        &self.lens
    }

    /// Capacity of arc/link `id`.
    #[inline]
    pub fn cap(&self, id: usize) -> f64 {
        self.caps[id]
    }

    /// The capacities slice.
    #[inline]
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// The current potential `D(l)`.
    #[inline]
    pub fn d_l(&self) -> f64 {
        self.d_l
    }

    /// Whether the classical termination `D(l) >= 1` has fired.
    #[inline]
    pub fn saturated(&self) -> bool {
        self.d_l >= 1.0
    }

    /// Freezes the current lengths into a read-only snapshot. While the
    /// snapshot (or anything derived from it) is alive, no update can run.
    #[inline]
    pub fn snapshot(&self) -> LengthSnapshot<'_> {
        LengthSnapshot::new(&self.lens)
    }

    /// The multiplicative update for routing `load` over arc `id`:
    /// `len *= 1 + eps · load / cap` in the reciprocal form
    /// (`eps · load · (1/cap)`), maintaining `D(l)` incrementally. One
    /// definition serves every Fleischer routing kernel — per-destination
    /// walk, aggregated tree, and the batched epoch merge — keeping them
    /// arithmetically identical.
    #[inline]
    pub fn apply(&mut self, id: usize, load: f64) {
        let old = self.lens[id];
        let new = old * (1.0 + self.eps * load * self.inv_caps[id]);
        self.d_l += (new - old) * self.caps[id];
        self.lens[id] = new;
    }

    /// The same update in quotient form (`eps · load / cap`): the arithmetic
    /// the path-restricted solver has always used, preserved because the
    /// committed golden artifacts pin its results bit-for-bit. Differs from
    /// [`apply`](MwuLengths::apply) by at most one rounding step per update.
    #[inline]
    pub fn apply_quotient(&mut self, id: usize, load: f64) {
        let old = self.lens[id];
        let new = old * (1.0 + self.eps * load / self.caps[id]);
        self.d_l += (new - old) * self.caps[id];
        self.lens[id] = new;
    }

    /// The dual throughput bound `D(l) / alpha` for a demand-weighted
    /// shortest-path sum `alpha` computed under these lengths (infinite when
    /// `alpha` is not positive).
    pub fn dual_bound(&self, alpha: f64) -> f64 {
        if alpha > 0.0 {
            self.d_l / alpha
        } else {
            f64::INFINITY
        }
    }
}

impl ArcLengths for MwuLengths {
    #[inline]
    fn len_of(&self, id: usize) -> f64 {
        self.lens[id]
    }
}

/// A portable warm-start artifact extracted from a completed solve: the final
/// MWU length *shape* plus the certified dual bound it reached.
///
/// The raw lengths are useless across instances — they sit at the saturation
/// scale `D(l) ≈ 1` of the *previous* solve, and adjacent ladder rungs have
/// different arc counts. What transfers is the **shape**: which arcs the MWU
/// dynamics priced up (bottlenecks) relative to the rest.
/// [`MwuLengths::reset_warm`] projects the shape onto the new arc set and
/// rescales it back down to the delta-init potential scale, so the classical
/// machinery (saturation at `D(l) ≥ 1`, the dual bound `D(l)/α`) runs
/// unchanged. Both throughput bounds the solver reports — the `μ`-rescaled
/// primal and `D(l)/α` dual — are valid for *any* positive length function by
/// LP duality, so a warm shape can never produce a wrong bound; only the
/// classical saturation-implies-`(1+ε)` argument assumes the delta init, and
/// the solver re-checks that with a measured-gap gate (see `WarmGate`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmStart {
    /// Final per-arc lengths of the donor solve (the shape to project).
    pub lens: Vec<f64>,
    /// The donor's certified dual (upper) bound, in unscaled throughput units.
    pub dual_bound: f64,
    /// The step size the donor ran with (recorded for diagnostics; the
    /// recipient rescales to its own `eps`/`delta`).
    pub epsilon: f64,
    /// The donor's total phase count. Warm chains hand near-identical
    /// problems along, so this approximates the recipient's *cold* cost and
    /// calibrates the warm admissibility budget far better than the
    /// saturation extrapolation (gap exits fire long before saturation).
    /// `0` (an artifact predating the field, or a donor that solved
    /// trivially) falls back to the phase-0 extrapolation.
    pub phases: usize,
}

impl WarmStart {
    /// Whether the artifact carries a usable shape.
    pub fn is_usable(&self) -> bool {
        !self.lens.is_empty() && self.lens.iter().all(|l| l.is_finite() && *l > 0.0)
    }
}

/// How [`MwuLengths::reset_warm`] rescales the projected shape down to the
/// delta-init potential scale. A knob for `batch_probe`; `Mean` ships.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WarmRescale {
    /// Scale so the *smallest* per-arc potential equals `delta`:
    /// `min_a len_a · cap_a = delta`, i.e. every arc starts at or above its
    /// cold init `delta / cap_a`. `D_0 ≥ m · delta` as in the cold start, and
    /// no arc begins cheaper than the classical analysis assumes — but a
    /// skewed donor (saturated arcs priced up ~25 orders of magnitude over
    /// untouched ones) blows `D_0` past [`WARM_MAX_D0`] and gets rejected.
    Floor,
    /// Scale so the total potential matches the cold init exactly:
    /// `D_0 = m · delta`. Arcs the donor priced up start *above* `delta/cap`,
    /// quiet arcs start below — a sharper shape with full saturation
    /// headroom. Individual arcs may undercut the classical per-arc floor,
    /// which is safe because the returned bounds are measured (the primal
    /// lower bound self-normalizes by actual congestion, the dual holds for
    /// any positive lengths) and the quality gate enforces accuracy parity.
    #[default]
    Mean,
}

/// An **owned, refreshable** copy of a length function: the pricing buffer of
/// the bounded-staleness async mode of the work-stealing MWU rounds.
///
/// [`LengthSnapshot`] freezes lengths *by borrowing* — sound, but the borrow
/// pins [`MwuLengths`] read-only for the snapshot's whole lifetime, which
/// forces synchronous rounds (price, drop the snapshot, update, repeat). The
/// async mode instead prices against this materialized copy, refreshed every
/// `S` rounds ([`refresh_from`](StaleLengths::refresh_from)): length updates
/// proceed every round while workers read lengths **at most `S` rounds
/// stale**. Staleness is sound for the same reason tree reuse is — lengths
/// only ever grow, and every refresh copies a pointwise-larger function, so
/// distances recorded under any pricing buffer lower-bound the true current
/// distances. The step-size bound is unaffected: commits are capped against
/// the *true* capacities in the merge, never against these lengths.
#[derive(Debug, Clone, Default)]
pub struct StaleLengths {
    lens: Vec<f64>,
}

impl StaleLengths {
    /// Creates an empty buffer; call [`refresh_from`](Self::refresh_from)
    /// before pricing against it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the current lengths into the buffer (reusing its allocation),
    /// resetting staleness to zero rounds.
    pub fn refresh_from(&mut self, lens: &[f64]) {
        self.lens.clear();
        self.lens.extend_from_slice(lens);
    }

    /// The dense buffered slice (what SSSP kernels index).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.lens
    }

    /// Freezes the buffered lengths into the snapshot type the pricing
    /// kernels take.
    #[inline]
    pub fn snapshot(&self) -> LengthSnapshot<'_> {
        LengthSnapshot::new(&self.lens)
    }
}

impl ArcLengths for StaleLengths {
    #[inline]
    fn len_of(&self, id: usize) -> f64 {
        self.lens[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_matches_classical_init() {
        let mut mwu = MwuLengths::new();
        mwu.reset(0.1, [1.0, 2.0, 4.0]);
        let delta = (3.0f64 / 0.9).powf(-10.0);
        assert_eq!(mwu.len_of(0), delta);
        assert_eq!(mwu.len_of(1), delta / 2.0);
        assert_eq!(mwu.num_arcs(), 3);
        // d_l = sum len*cap = 3 * delta exactly (each term is delta).
        assert!((mwu.d_l() - 3.0 * delta).abs() <= f64::EPSILON * 3.0 * delta);
        assert!(!mwu.saturated());
    }

    #[test]
    fn apply_forms_agree_on_unit_caps_and_track_d_l() {
        let mut a = MwuLengths::new();
        let mut b = MwuLengths::new();
        a.reset(0.2, [1.0, 1.0]);
        b.reset(0.2, [1.0, 1.0]);
        a.apply(0, 0.5);
        b.apply_quotient(0, 0.5);
        // Unit capacity: reciprocal and quotient forms are bit-identical.
        assert_eq!(a.len_of(0).to_bits(), b.len_of(0).to_bits());
        assert_eq!(a.d_l().to_bits(), b.d_l().to_bits());
        // d_l maintained incrementally equals a fresh sum.
        let direct: f64 = a.lens().iter().zip(a.caps()).map(|(l, c)| l * c).sum();
        assert!((a.d_l() - direct).abs() < 1e-15);
    }

    #[test]
    fn snapshot_and_path_cost() {
        let mut mwu = MwuLengths::new();
        mwu.reset(0.1, [1.0, 1.0, 1.0]);
        mwu.apply(1, 1.0);
        let snap = mwu.snapshot();
        let cost = snap.path_cost([0, 1]);
        assert_eq!(cost, mwu.len_of(0) + mwu.len_of(1));
        // The slice trait impl agrees.
        assert_eq!(snap.as_slice().path_cost([0, 1]), cost);
    }

    #[test]
    fn reset_reuses_buffers_across_sizes() {
        let mut mwu = MwuLengths::new();
        mwu.reset(0.1, (0..16).map(|_| 1.0));
        let big = mwu.d_l();
        mwu.reset(0.1, (0..4).map(|_| 2.0));
        assert_eq!(mwu.num_arcs(), 4);
        assert_ne!(mwu.d_l(), big);
        // Same init as a fresh state.
        let mut fresh = MwuLengths::new();
        fresh.reset(0.1, (0..4).map(|_| 2.0));
        assert_eq!(mwu.lens(), fresh.lens());
        assert_eq!(mwu.d_l().to_bits(), fresh.d_l().to_bits());
    }

    #[test]
    fn dual_bound_guards_nonpositive_alpha() {
        let mut mwu = MwuLengths::new();
        mwu.reset(0.1, [1.0]);
        assert!(mwu.dual_bound(0.0).is_infinite());
        assert!(mwu.dual_bound(2.0) > 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_epsilon_rejected() {
        MwuLengths::new().reset(0.7, [1.0]);
    }

    #[test]
    fn warm_reset_floor_preserves_cold_per_arc_floor() {
        // Donor shape: arc 1 was priced up 4x relative to arcs 0/2.
        let shape = [1.0, 4.0, 1.0];
        let mut warm = MwuLengths::new();
        let ok = warm.reset_warm(0.1, [1.0, 2.0, 4.0], &shape, WarmRescale::Floor);
        assert!(ok);
        let mut cold = MwuLengths::new();
        cold.reset(0.1, [1.0, 2.0, 4.0]);
        // Floor rescale: min per-arc potential equals delta, so every arc's
        // potential is >= its cold-init potential (which is exactly delta).
        let delta_pot = cold.len_of(0) * cold.cap(0);
        let min_pot = (0..3)
            .map(|a| warm.len_of(a) * warm.cap(a))
            .fold(f64::INFINITY, f64::min);
        assert!((min_pot - delta_pot).abs() <= 1e-18 * delta_pot.max(1.0));
        for a in 0..3 {
            assert!(warm.len_of(a) * warm.cap(a) >= delta_pot * (1.0 - 1e-12));
        }
        // The shape survives: arc 1 is 4x arc 0 in potential-per-capacity.
        assert!((warm.len_of(1) * warm.cap(1)) / (warm.len_of(0) * warm.cap(0)) > 3.9);
        assert!(!warm.saturated());
    }

    #[test]
    fn warm_reset_mean_matches_cold_total_potential() {
        let shape = [1.0, 4.0, 1.0, 2.0];
        let mut warm = MwuLengths::new();
        assert!(warm.reset_warm(0.1, [1.0, 1.0, 2.0, 2.0], &shape, WarmRescale::Mean));
        let mut cold = MwuLengths::new();
        cold.reset(0.1, [1.0, 1.0, 2.0, 2.0]);
        assert!((warm.d_l() - cold.d_l()).abs() <= 1e-12 * cold.d_l());
    }

    #[test]
    fn warm_reset_projects_across_arc_counts() {
        // Donor had 2 arcs, recipient has 4: nearest-index resampling maps
        // arcs {0,1} -> shape[0] and {2,3} -> shape[1].
        let shape = [1.0, 3.0];
        let mut warm = MwuLengths::new();
        assert!(warm.reset_warm(0.1, [1.0; 4], &shape, WarmRescale::Floor));
        assert_eq!(warm.len_of(0).to_bits(), warm.len_of(1).to_bits());
        assert_eq!(warm.len_of(2).to_bits(), warm.len_of(3).to_bits());
        assert!((warm.len_of(2) / warm.len_of(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn warm_reset_rejects_garbage_and_falls_back_cold() {
        let mut cold = MwuLengths::new();
        cold.reset(0.1, [1.0, 2.0]);
        for bad in [
            vec![],                   // empty shape
            vec![0.0, 1.0],           // non-positive entry
            vec![-1.0, 1.0],          // negative entry
            vec![f64::NAN, 1.0],      // non-finite entry
            vec![f64::INFINITY, 1.0], // non-finite entry
        ] {
            let mut warm = MwuLengths::new();
            let ok = warm.reset_warm(0.1, [1.0, 2.0], &bad, WarmRescale::Floor);
            assert!(!ok, "shape {bad:?} should be rejected");
            // Rejection leaves the plain cold init, bit for bit.
            assert_eq!(warm.lens(), cold.lens());
            assert_eq!(warm.d_l().to_bits(), cold.d_l().to_bits());
        }
    }

    #[test]
    fn warm_reset_rejects_headroom_consuming_skew() {
        // Floor rescale pins the min potential at delta; an extreme outlier
        // then pushes D_0 past WARM_MAX_D0 and must be rejected.
        let m = 4usize;
        let delta = (m as f64 / 0.9).powf(-10.0);
        let blowup = 0.5 / delta; // one arc alone would carry D_0 ≈ 0.5
        let shape = [1.0, 1.0, 1.0, blowup];
        let mut warm = MwuLengths::new();
        assert!(!warm.reset_warm(0.1, [1.0; 4], &shape, WarmRescale::Floor));
        let mut cold = MwuLengths::new();
        cold.reset(0.1, [1.0; 4]);
        assert_eq!(warm.lens(), cold.lens());
    }

    #[test]
    fn warm_start_usability() {
        assert!(!WarmStart::default().is_usable());
        let ws = WarmStart {
            lens: vec![1.0, 2.0],
            dual_bound: 1.5,
            epsilon: 0.1,
            phases: 8,
        };
        assert!(ws.is_usable());
        let bad = WarmStart {
            lens: vec![1.0, f64::NAN],
            ..ws
        };
        assert!(!bad.is_usable());
    }

    #[test]
    fn stale_lengths_lag_until_refreshed() {
        let mut mwu = MwuLengths::new();
        mwu.reset(0.1, [1.0, 1.0]);
        let mut stale = StaleLengths::new();
        stale.refresh_from(mwu.lens());
        assert_eq!(stale.as_slice(), mwu.lens());
        mwu.apply(0, 1.0);
        // The buffer holds the pre-update (pointwise smaller) function.
        assert!(stale.len_of(0) < mwu.len_of(0));
        assert_eq!(stale.len_of(1).to_bits(), mwu.len_of(1).to_bits());
        stale.refresh_from(mwu.lens());
        assert_eq!(stale.as_slice(), mwu.lens());
        // The snapshot view indexes the same buffer.
        assert_eq!(
            stale.snapshot().len_of(0).to_bits(),
            mwu.len_of(0).to_bits()
        );
    }
}
