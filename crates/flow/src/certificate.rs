//! Optimality certificates for throughput solves.
//!
//! A [`ThroughputCertificate`] is a compact, self-contained record of *why*
//! a solve's bracketing bounds are correct: the rescaled feasible flow behind
//! the lower bound (per-arc aggregate + per-commodity delivered amounts) and
//! the dual length function behind the upper bound (`upper = D(l)/alpha(l)`,
//! valid for **any** non-negative lengths by LP duality). Everything needed
//! to re-check the claim is stored in the certificate itself, so
//! [`verify_certificate`] re-derives both sides from scratch — shortest
//! paths under the stored lengths, capacity and conservation residuals of
//! the stored flow — and never trusts solver state.
//!
//! ## Canonical derivation and bit-exact re-checking
//!
//! The certificate's scalar claims (`d_l`, `lower`, `upper`) are *derived*
//! values: at emission time they are computed by the same canonical,
//! fully-sequential routines ([`derive_claims`]) the verifier runs, **from
//! the certificate's own stored vectors**, never copied out of the solver's
//! incremental state. Because both sides run identical IEEE-754 arithmetic
//! on identical inputs, the verifier compares the scalars *bit for bit*: a
//! single flipped bit in any stored value either changes a recomputed scalar
//! (vectors feed the derivation) or mismatches its re-derivation (the
//! scalars are recomputed), and the certificate is rejected.
//!
//! ## What is and is not proven
//!
//! * The **upper bound is sound**: `t* <= D(l)/alpha(l)` holds for any
//!   non-negative length function, so a verified upper bound is a true bound
//!   regardless of how the solver behaved.
//! * The **lower bound is checked as a flow summary**: capacity feasibility
//!   and per-node aggregate conservation residuals are necessary conditions,
//!   but an aggregate multicommodity flow need not decompose per commodity,
//!   so the primal check alone is not a full feasibility proof. The sound
//!   anchor is the bracket: `lower <= upper` with a verified `upper`, plus
//!   the duality-gap check `upper - lower <= eps * upper`.

use crate::instance::FlowProblem;
use std::fmt;
use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// Relative slack for the inequality checks (capacity, bracket order): the
/// emission-side rescaling `mu = min cap/f` guarantees feasibility up to one
/// rounding step, so anything past a few ulps is a real violation.
const REL_TOL: f64 = 1e-9;

/// Relative slack of the per-node conservation-residual check. The aggregate
/// flow is a sum over up to millions of path deposits; accumulated rounding
/// stays far below this, while a corrupted arc value lands far above it.
const RESIDUAL_TOL: f64 = 1e-7;

/// A compact optimality certificate for one throughput solve.
///
/// All flow quantities are in *original demand units* (the solver's internal
/// demand pre-scaling cancels out before emission). Vector layouts follow
/// the [`FlowProblem`] built from the same `(graph, tm)` pair: `flow` and
/// `lengths` are indexed by arc id, `served` is source-major in
/// [`FlowProblem::sources`] order (one entry per `(source, destination)`
/// demand).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputCertificate {
    /// Node count of the problem the certificate describes.
    pub num_nodes: usize,
    /// Arc count (directed) of the problem the certificate describes.
    pub num_arcs: usize,
    /// Per-arc aggregate flow of the rescaled feasible solution behind the
    /// lower bound (`flow[a] <= cap[a]` up to rounding).
    pub flow: Vec<f64>,
    /// Per-commodity delivered amounts of that solution, source-major.
    /// `min_j served[j] / demand[j]` is exactly the certified lower bound.
    pub served: Vec<f64>,
    /// The dual length function behind the upper bound (non-negative,
    /// finite). Any such function yields a valid bound; this one is the
    /// snapshot at which the solver's best upper bound was achieved.
    pub lengths: Vec<f64>,
    /// `D(l) = sum_a cap[a] * lengths[a]`, canonically derived.
    pub d_l: f64,
    /// The certified feasible value, canonically derived from `served`.
    pub lower: f64,
    /// The certified dual bound `D(l)/alpha(l)`, canonically derived from
    /// `lengths` (equal to `lower` when `alpha(l) = 0`, i.e. no commodity
    /// needs any capacity).
    pub upper: f64,
}

impl ThroughputCertificate {
    /// The certificate of a trivially-zero solve with no commodities (empty
    /// or fully-disconnected traffic matrix): nothing flows, nothing is
    /// claimed beyond `lower = upper = 0`.
    pub fn trivial_zero() -> Self {
        ThroughputCertificate {
            num_nodes: 0,
            num_arcs: 0,
            flow: Vec::new(),
            served: Vec::new(),
            lengths: Vec::new(),
            d_l: 0.0,
            lower: 0.0,
            upper: 0.0,
        }
    }

    /// Builds a certificate from raw evidence, deriving the scalar claims
    /// canonically (see the module docs). `flow`, `served` and `lengths`
    /// must follow `prob`'s layouts.
    pub fn build(prob: &FlowProblem, flow: Vec<f64>, served: Vec<f64>, lengths: Vec<f64>) -> Self {
        let claims = derive_claims(prob, &served, &lengths);
        ThroughputCertificate {
            num_nodes: prob.num_nodes(),
            num_arcs: prob.num_arcs(),
            flow,
            served,
            lengths,
            d_l: claims.d_l,
            lower: claims.lower,
            upper: claims.upper,
        }
    }

    /// The relative duality gap of the certified bracket (0 for exact).
    pub fn gap(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            (self.upper - self.lower) / self.upper
        }
    }
}

/// The canonically-derived scalar claims of a certificate.
pub(crate) struct DerivedClaims {
    pub d_l: f64,
    pub lower: f64,
    pub upper: f64,
}

/// Derives the scalar claims from certificate vectors, sequentially and in a
/// fixed order so emission and verification agree bit for bit:
///
/// * `d_l` — arc-order sum of `cap * length`;
/// * `lower` — minimum over commodities (source-major order) of
///   `served / demand`, zero-demand commodities skipped, `0` when nothing
///   was served or no commodity has positive demand;
/// * `upper` — `d_l / alpha` with `alpha` the demand-weighted sum of
///   single-source shortest-path distances under `lengths` (source order,
///   destination order within a source; Dijkstra is run per source by the
///   shared `tb_graph` kernel). A disconnected pair makes `alpha` infinite
///   and the bound `0`; `alpha = 0` (only self-demands, or none) makes the
///   dual bound vacuous and `upper` falls back to `lower`, mirroring the
///   solver's convention for an unbounded dual.
pub(crate) fn derive_claims(prob: &FlowProblem, served: &[f64], lengths: &[f64]) -> DerivedClaims {
    let mut d_l = 0.0f64;
    for (arc, &len) in prob.arcs().iter().zip(lengths) {
        d_l += arc.cap * len;
    }

    let mut sigma_min = f64::INFINITY;
    let mut j = 0usize;
    for s in prob.sources() {
        for &(_, demand) in &s.dests {
            if demand > 0.0 {
                let sigma = served.get(j).copied().unwrap_or(0.0) / demand;
                if sigma < sigma_min {
                    sigma_min = sigma;
                }
            }
            j += 1;
        }
    }
    let lower = if sigma_min.is_finite() {
        sigma_min
    } else {
        0.0
    };

    let mut alpha = 0.0f64;
    for s in prob.sources() {
        let (dist, _) = prob.shortest_path_tree(s.src, lengths);
        for &(dst, demand) in &s.dests {
            alpha += demand * dist[dst];
        }
    }
    let dual = d_l / alpha;
    let upper = if dual.is_finite() { dual } else { lower };
    DerivedClaims { d_l, lower, upper }
}

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// A stored dimension or vector length does not match the problem.
    DimensionMismatch(String),
    /// A stored value is non-finite or negative where it must not be.
    InvalidValue(String),
    /// The stored flow exceeds some arc capacity beyond rounding slack.
    CapacityViolated {
        /// Offending arc id.
        arc: usize,
        /// Stored aggregate flow on the arc.
        flow: f64,
        /// The arc's capacity.
        cap: f64,
    },
    /// The per-node aggregate conservation residual is too large.
    ConservationViolated {
        /// Offending node id.
        node: usize,
        /// Net outflow minus expected net supply at the node.
        residual: f64,
    },
    /// A stored scalar claim does not match its canonical re-derivation.
    ClaimMismatch {
        /// Which claim (`d_l`, `lower` or `upper`).
        claim: &'static str,
        /// The stored value.
        stored: f64,
        /// The independently re-derived value.
        derived: f64,
    },
    /// The bracket is out of order (`lower > upper` beyond rounding).
    BracketInverted {
        /// Stored lower bound.
        lower: f64,
        /// Stored upper bound.
        upper: f64,
    },
    /// The certified duality gap exceeds the acceptable `eps`.
    GapTooWide {
        /// The certificate's relative gap.
        gap: f64,
        /// The acceptable gap passed by the caller.
        eps: f64,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::DimensionMismatch(what) => {
                write!(f, "dimension mismatch: {what}")
            }
            CertificateError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            CertificateError::CapacityViolated { arc, flow, cap } => {
                write!(f, "arc {arc}: flow {flow} exceeds capacity {cap}")
            }
            CertificateError::ConservationViolated { node, residual } => {
                write!(f, "node {node}: conservation residual {residual}")
            }
            CertificateError::ClaimMismatch {
                claim,
                stored,
                derived,
            } => write!(
                f,
                "claim '{claim}' stored as {stored} but re-derives to {derived}"
            ),
            CertificateError::BracketInverted { lower, upper } => {
                write!(f, "bracket inverted: lower {lower} > upper {upper}")
            }
            CertificateError::GapTooWide { gap, eps } => {
                write!(f, "duality gap {gap} exceeds acceptable eps {eps}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Independently verifies `cert` against the instance `(graph, tm)`:
/// re-derives primal feasibility (capacity + per-node conservation
/// residuals of the stored flow) and the dual bound (shortest paths under
/// the stored lengths), compares every scalar claim bit-for-bit against its
/// canonical re-derivation, and checks the duality gap against `eps`
/// (pass `f64::INFINITY` to accept any gap — e.g. for budget-exhausted
/// solves whose bounds are valid but wide).
///
/// Nothing from the solver is trusted: the only inputs are the instance and
/// the certificate itself.
pub fn verify_certificate(
    graph: &Graph,
    tm: &TrafficMatrix,
    cert: &ThroughputCertificate,
    eps: f64,
) -> Result<(), CertificateError> {
    for (what, xs) in [
        ("flow", &cert.flow),
        ("served", &cert.served),
        ("lengths", &cert.lengths),
    ] {
        if let Some(i) = xs.iter().position(|x| !x.is_finite() || *x < 0.0) {
            return Err(CertificateError::InvalidValue(format!(
                "{what}[{i}] = {}",
                xs[i]
            )));
        }
    }
    for (what, x) in [
        ("d_l", cert.d_l),
        ("lower", cert.lower),
        ("upper", cert.upper),
    ] {
        if !x.is_finite() || x < 0.0 {
            return Err(CertificateError::InvalidValue(format!("{what} = {x}")));
        }
    }

    if tm.num_flows() == 0 {
        // A trivially-zero solve: nothing may flow and nothing may be
        // claimed.
        if !cert.served.is_empty() {
            return Err(CertificateError::DimensionMismatch(format!(
                "served has {} entries for an empty traffic matrix",
                cert.served.len()
            )));
        }
        if cert.flow.iter().any(|&x| x != 0.0) {
            return Err(CertificateError::InvalidValue(
                "nonzero flow for an empty traffic matrix".into(),
            ));
        }
        if cert.lower != 0.0 || cert.upper != 0.0 {
            return Err(CertificateError::ClaimMismatch {
                claim: "lower",
                stored: cert.lower.max(cert.upper),
                derived: 0.0,
            });
        }
        return Ok(());
    }

    let prob = FlowProblem::new(graph, tm);
    let n = prob.num_nodes();
    let m = prob.num_arcs();
    let commodities: usize = prob.sources().iter().map(|s| s.dests.len()).sum();
    if cert.num_nodes != n || cert.num_arcs != m {
        return Err(CertificateError::DimensionMismatch(format!(
            "certificate is for {}x{} (nodes x arcs), instance is {n}x{m}",
            cert.num_nodes, cert.num_arcs
        )));
    }
    if cert.flow.len() != m || cert.lengths.len() != m {
        return Err(CertificateError::DimensionMismatch(format!(
            "flow/lengths have {}/{} entries for {m} arcs",
            cert.flow.len(),
            cert.lengths.len()
        )));
    }
    if cert.served.len() != commodities {
        return Err(CertificateError::DimensionMismatch(format!(
            "served has {} entries for {commodities} commodities",
            cert.served.len()
        )));
    }

    // Primal side: capacity, then per-node aggregate conservation. The
    // expected net supply at a node is what the served amounts say leaves
    // minus what arrives; the stored flow must balance against it up to
    // accumulated rounding.
    for (a, (arc, &f)) in prob.arcs().iter().zip(&cert.flow).enumerate() {
        if f > arc.cap * (1.0 + REL_TOL) + 1e-12 {
            return Err(CertificateError::CapacityViolated {
                arc: a,
                flow: f,
                cap: arc.cap,
            });
        }
    }
    let mut net = vec![0.0f64; n];
    let mut gross = vec![0.0f64; n];
    for (arc, &f) in prob.arcs().iter().zip(&cert.flow) {
        net[arc.from] += f;
        net[arc.to] -= f;
        gross[arc.from] += f;
        gross[arc.to] += f;
    }
    let mut j = 0usize;
    for s in prob.sources() {
        for &(dst, _) in &s.dests {
            let served = cert.served[j];
            net[s.src] -= served;
            net[dst] += served;
            gross[s.src] += served;
            gross[dst] += served;
            j += 1;
        }
    }
    for (v, (&residual, &g)) in net.iter().zip(&gross).enumerate() {
        if residual.abs() > RESIDUAL_TOL * (g + 1.0) {
            return Err(CertificateError::ConservationViolated { node: v, residual });
        }
    }

    // Dual side + scalar claims: canonical re-derivation, compared bit for
    // bit (emission ran the exact same routine on the exact same inputs).
    let claims = derive_claims(&prob, &cert.served, &cert.lengths);
    for (claim, stored, derived) in [
        ("d_l", cert.d_l, claims.d_l),
        ("lower", cert.lower, claims.lower),
        ("upper", cert.upper, claims.upper),
    ] {
        if stored.to_bits() != derived.to_bits() {
            return Err(CertificateError::ClaimMismatch {
                claim,
                stored,
                derived,
            });
        }
    }

    if cert.lower > cert.upper * (1.0 + REL_TOL) + 1e-12 {
        return Err(CertificateError::BracketInverted {
            lower: cert.lower,
            upper: cert.upper,
        });
    }
    let gap = cert.gap();
    if gap > eps + REL_TOL {
        return Err(CertificateError::GapTooWide { gap, eps });
    }
    Ok(())
}

/// Snapshot capture used by the solver's phase loop: copies of the length
/// function at the best-upper evaluation and of the accumulated flow at the
/// best-lower evaluation. Copies are trajectory-neutral (no arithmetic on
/// solver state), so enabling capture cannot change any solved number.
#[derive(Debug, Default)]
pub(crate) struct CertCapture {
    /// Lengths at the evaluation that achieved the best upper bound.
    pub lens: Vec<f64>,
    /// Accumulated per-arc flow at the evaluation that achieved the best
    /// lower bound (solver-internal scaled demand space).
    pub flow: Vec<f64>,
    /// Per-source routed amounts at that same evaluation.
    pub routed: Vec<Vec<f64>>,
    /// The capacity-rescale factor `mu` of that evaluation.
    pub mu: f64,
}

impl CertCapture {
    /// Records the snapshots behind a new best bound. Must be called with
    /// the *pre-update* `best_lower`/`best_upper` so strict improvement is
    /// detectable.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        lo: f64,
        up: f64,
        mu: f64,
        best_lower: f64,
        best_upper: f64,
        lens: &[f64],
        flow_arc: &[f64],
        routed: &[Vec<f64>],
    ) {
        if up < best_upper {
            self.lens.clear();
            self.lens.extend_from_slice(lens);
        }
        if lo > best_lower || (self.flow.is_empty() && lo > 0.0) {
            self.flow.clear();
            self.flow.extend_from_slice(flow_arc);
            self.routed.clear();
            self.routed.extend(routed.iter().cloned());
            self.mu = mu;
        }
    }

    /// Assembles the final certificate: converts the snapshots to original
    /// demand units (the rescale `mu` makes the flow capacity-feasible; the
    /// demand pre-scale cancels because served amounts are absolute) and
    /// derives the canonical claims. Defaults cover solves that never
    /// captured (zero flow, unit lengths).
    pub fn into_certificate(self, prob: &FlowProblem) -> ThroughputCertificate {
        let m = prob.num_arcs();
        let commodities: usize = prob.sources().iter().map(|s| s.dests.len()).sum();
        let mu = if self.mu.is_finite() && self.mu > 0.0 {
            self.mu
        } else {
            1.0
        };
        let flow = if self.flow.is_empty() {
            vec![0.0; m]
        } else {
            self.flow.iter().map(|f| f * mu).collect()
        };
        let served = if self.routed.is_empty() {
            vec![0.0; commodities]
        } else {
            let mut out = Vec::with_capacity(commodities);
            for r in &self.routed {
                out.extend(r.iter().map(|x| x * mu));
            }
            out
        };
        let lengths = if self.lens.is_empty() {
            vec![1.0; m]
        } else {
            self.lens
        };
        ThroughputCertificate::build(prob, flow, served, lengths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_traffic::Demand;

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    fn path3() -> (Graph, TrafficMatrix) {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        (g, tm)
    }

    /// A hand-built valid certificate for the shared-bottleneck path: each
    /// demand served at 0.5, flow 0.5 on 0->1 and 1.0 on 1->2, unit lengths.
    fn hand_cert(g: &Graph, tm: &TrafficMatrix) -> ThroughputCertificate {
        let prob = FlowProblem::new(g, tm);
        let mut flow = vec![0.0; prob.num_arcs()];
        for (a, arc) in prob.arcs().iter().enumerate() {
            if arc.from == 0 && arc.to == 1 {
                flow[a] = 0.5;
            }
            if arc.from == 1 && arc.to == 2 {
                flow[a] = 1.0;
            }
        }
        let served = vec![0.5, 0.5];
        let lengths = vec![1.0; prob.num_arcs()];
        ThroughputCertificate::build(&prob, flow, served, lengths)
    }

    #[test]
    fn hand_built_certificate_verifies() {
        let (g, tm) = path3();
        let cert = hand_cert(&g, &tm);
        // D = 4 (unit caps, unit lengths, 4 arcs), alpha = 1*2 + 1*1 = 3,
        // so the unit-length dual bound is 4/3 and the bracket is [0.5, 4/3].
        assert_eq!(cert.lower, 0.5);
        assert!((cert.upper - 4.0 / 3.0).abs() < 1e-12, "{}", cert.upper);
        verify_certificate(&g, &tm, &cert, f64::INFINITY).unwrap();
        // The wide unit-length gap fails a tight eps.
        assert!(matches!(
            verify_certificate(&g, &tm, &cert, 0.01),
            Err(CertificateError::GapTooWide { .. })
        ));
    }

    #[test]
    fn tampered_scalar_is_rejected() {
        let (g, tm) = path3();
        let mut cert = hand_cert(&g, &tm);
        cert.lower = f64::from_bits(cert.lower.to_bits() ^ 1);
        assert!(matches!(
            verify_certificate(&g, &tm, &cert, f64::INFINITY),
            Err(CertificateError::ClaimMismatch { claim: "lower", .. })
        ));
    }

    #[test]
    fn tampered_length_is_rejected() {
        let (g, tm) = path3();
        let mut cert = hand_cert(&g, &tm);
        cert.lengths[0] *= 2.0;
        assert!(verify_certificate(&g, &tm, &cert, f64::INFINITY).is_err());
    }

    #[test]
    fn overfull_arc_is_rejected() {
        let (g, tm) = path3();
        let mut cert = hand_cert(&g, &tm);
        let prob = FlowProblem::new(&g, &tm);
        let a = prob
            .arcs()
            .iter()
            .position(|arc| arc.from == 1 && arc.to == 2)
            .unwrap();
        cert.flow[a] = 2.0;
        assert!(matches!(
            verify_certificate(&g, &tm, &cert, f64::INFINITY),
            Err(CertificateError::CapacityViolated { .. })
        ));
    }

    #[test]
    fn conservation_residual_is_rejected() {
        let (g, tm) = path3();
        let mut cert = hand_cert(&g, &tm);
        // Claim full service without the matching flow: node balances break.
        cert.served = vec![1.0, 1.0];
        let prob = FlowProblem::new(&g, &tm);
        let rebuilt = ThroughputCertificate::build(
            &prob,
            cert.flow.clone(),
            cert.served.clone(),
            cert.lengths.clone(),
        );
        assert!(matches!(
            verify_certificate(&g, &tm, &rebuilt, f64::INFINITY),
            Err(CertificateError::ConservationViolated { .. })
        ));
    }

    #[test]
    fn dimension_and_value_checks_fire() {
        let (g, tm) = path3();
        let mut cert = hand_cert(&g, &tm);
        cert.flow.pop();
        assert!(matches!(
            verify_certificate(&g, &tm, &cert, f64::INFINITY),
            Err(CertificateError::DimensionMismatch(_))
        ));
        let mut cert = hand_cert(&g, &tm);
        cert.lengths[1] = f64::NAN;
        assert!(matches!(
            verify_certificate(&g, &tm, &cert, f64::INFINITY),
            Err(CertificateError::InvalidValue(_))
        ));
    }

    #[test]
    fn trivial_zero_verifies_only_on_empty_tms() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let empty = TrafficMatrix::new(2, Vec::new());
        verify_certificate(&g, &empty, &ThroughputCertificate::trivial_zero(), 0.0).unwrap();
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 1.0)]);
        assert!(verify_certificate(&g, &tm, &ThroughputCertificate::trivial_zero(), 0.0).is_err());
    }

    #[test]
    fn disconnected_instance_certifies_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0)]);
        let prob = FlowProblem::new(&g, &tm);
        let m = prob.num_arcs();
        let cert = ThroughputCertificate::build(&prob, vec![0.0; m], vec![0.0; 1], vec![1.0; m]);
        // A disconnected pair makes alpha infinite, so the dual bound is an
        // exact zero — the strict concurrent-flow semantics.
        assert_eq!(cert.lower, 0.0);
        assert_eq!(cert.upper, 0.0);
        verify_certificate(&g, &tm, &cert, 0.0).unwrap();
    }
}
