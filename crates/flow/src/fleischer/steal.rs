//! The work-stealing pricing scheduler ([`PricingMode::Stealing`]).
//!
//! PR 5's fixed rounds re-price **every** active source with a fresh
//! Dijkstra against every round's snapshot. On dense near-uniform TMs a
//! shard drains in one or two rounds and that is fine; on skewed TMs the
//! self-capped stragglers re-price for many rounds (Facebook TM-F measured
//! ~2.3× serial wall-clock at one worker), and on sparse matching TMs the
//! serial path's goal-directed tree *reuse* has no batched counterpart at
//! all. This scheduler keeps the batched merge math — the same
//! [`EpochMerge`] fold, the same `θ`/`θ_k` capping, one ≤ (1+ε) update per
//! round — and changes how a round's pricing work is produced:
//!
//! * **Cached tree slots.** Each shard source owns a [`TreeSlot`] holding
//!   its SSSP tree across the shard's rounds. Trees are revalidated under
//!   the serial reuse rule (recorded distances lower-bound current ones —
//!   lengths only grow — so paths within `reuse_slack ×` the recorded
//!   distance stay approximately shortest) and rebuilt only when a
//!   destination with remaining demand drifts past the slack. Wider slacks
//!   were swept and rejected: a full-ε slack cut TM-F rebuilds ~1.4× but
//!   slowed dense-A2A convergence 12 → 40 phases.
//! * **Destination chunks on a claim queue.** A dense source whose
//!   destination count reaches twice the chunk size splits into destination
//!   chunks, each a separately claimable pricing task on a shared
//!   [`ClaimQueue`], so one oversized commodity no longer serializes a
//!   round's fan-out. Splitting is **purely a pricing-parallelism
//!   decision**: the fold stages a source's chunks and self-caps their sum
//!   (see [`merge`]), so the merged update is bit-identical whether a
//!   source split or not. (An earlier variant also split last round's
//!   `θ·θ_k < 1` stragglers and capped each chunk separately; a shared
//!   `θ < 1` marks every active slot, so one capacity-limited round split
//!   the whole shard, the weaker per-chunk caps collapsed `θ`, and the
//!   drain stalled — measured ~3× worse than the fixed rounds on TM-F.)
//!   Sparse (walk) sources stay single tasks so their inline tree repair
//!   owns the slot; unsplit dense sources resolve their own tree inside
//!   their task (the tree depends only on the round's frozen lengths, so
//!   fusing the resolve into the task is bit-identical to a separate
//!   stage). Only split sources need the up-front stage-A resolve — their
//!   chunks share the tree read-only.
//! * **Price-ahead fold.** Results post into per-task slots; after every
//!   post, whichever worker gets the fold lock advances a cursor over the
//!   ready prefix, folding loads into the [`EpochMerge`] in **task-index
//!   order**. Light tasks are merged while heavy chunks still route, and
//!   the fold order — hence every downstream float — is a pure function of
//!   the task list. Steal order may vary; commit/merge order may not:
//!   results are bit-identical at any worker count. When only one worker
//!   would run (or the round is too small to fan out), an inline path
//!   executes the tasks in the same order with direct folds — no claim
//!   queue, no result slots, no locks — and identical arithmetic.
//! * **Serial drain fast path.** A merged round over a single active
//!   source is arithmetically the serial in-place update (`U_a` is that
//!   source's self-capped load, so `θ·θ_k` reduces to the serial bottleneck
//!   rule) while still paying queue/fold/commit machinery per
//!   capacity-limited step — and the straggler tail that dominates skewed
//!   TMs is exactly this case. Lone survivors are handed to the serial
//!   kernels and drained to completion. Under
//!   [`FleischerConfig::steal_serial_tail`] (skew-gated by the
//!   auto-batching pick) the path generalizes: every round after a shard's
//!   first drains **all** survivors serially in slot order, eliminating the
//!   repeated full-shard rebuilds a shared-`θ < 1` chain forces (measured
//!   +16% total Dijkstras over serial on TM-F without it, ≤ 1.15× serial
//!   wall-clock with it).
//! * **Bounded-staleness async pricing** (opt-in,
//!   [`FleischerConfig::async_staleness`]` = Some(S)`): the pricing lengths
//!   are a materialized copy refreshed every `S` rounds per shard, so
//!   workers read lengths at most `S` rounds stale while merged updates
//!   (and `D(l)`) advance every round against the true state. Commits are
//!   still capped against true capacities; successive refreshes are
//!   pointwise monotone, so the tree-reuse rule stays sound; and the PR 5
//!   convergence guard still degenerates the solve to the serial `B = 1`
//!   trajectory on extrapolated-phase blowup. Goal-direction potentials are
//!   always refreshed **no later** than any pricing buffer, so they remain
//!   admissible for stale-length tree builds.
//!
//! Determinism inventory (everything downstream floats depend on): the task
//! list (the active set and each source's destination count vs. the chunk
//! size — never the worker count), the per-slot rebuild decisions (frozen
//! pricing lengths + slot state), the fold order (task index), the commit
//! order (task index), and the serial-tail trigger (round index + active
//! count + config). The only scheduling-dependent quantity is which worker
//! ran which task.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use super::merge::EpochMerge;
use super::route::{self, RouteCtx, RouteScratch, RouteState, SerialState};
use super::{FleischerConfig, SolveStats, PAR_MIN_BATCH_WORK};
use crate::lengths::{MwuLengths, StaleLengths};
use rayon::prelude::*;
use tb_graph::{ClaimQueue, SsspWorkspace, WorkspacePool};

#[cfg(doc)]
use super::PricingMode;

/// One shard source's cached routing tree: the SSSP state plus the two
/// reuse flags. `valid` = the tree belongs to this shard (cleared when a
/// shard forms); `exact` = the tree was built at the current pricing
/// lengths (skips staleness checks until the lengths move).
#[derive(Debug, Default)]
struct TreeSlot {
    sssp: SsspWorkspace,
    valid: bool,
    exact: bool,
}

/// One claimable pricing task: destination range `lo..hi` of shard slot
/// `slot` (source `si`). Shared dense tasks (chunks of a split source) fold
/// over the slot's tree read-only — the tree is resolved up front in stage
/// A. Unshared tasks own their slot mutably: walk tasks self-repair their
/// tree inline, unsplit dense tasks validate-or-rebuild theirs before the
/// fold (the tree depends only on the round's frozen pricing lengths, so
/// resolving it inside the task is bit-identical to a separate pass).
#[derive(Debug, Clone, Copy)]
struct Task {
    slot: usize,
    si: usize,
    lo: usize,
    hi: usize,
    dense: bool,
    shared: bool,
}

/// A priced chunk's `(arc, load)` pairs — the unit a task posts, the fold
/// consumes, and the recycle stack hands back out.
type Loads = Vec<(u32, f64)>;

/// The price-ahead fold: a cursor over the task list, advanced under one
/// lock in task-index order as results become ready. Chunk loads are staged
/// per source and self-capped when the source's last chunk folds (chunks of
/// one source are contiguous in task order), so a split source self-caps
/// exactly as an unsplit one. Holding the merge and the per-slot `θ_k`
/// record inside keeps the fold a single critical section.
struct Fold<'a> {
    cursor: usize,
    tasks: &'a [Task],
    merge: &'a mut EpochMerge,
    theta_k: &'a mut [f64],
}

/// The stealing scheduler's reusable state, owned by the solver workspace:
/// cached tree slots, the bounded-staleness length buffer, and round-local
/// scratch. Sized lazily; reused across shards and solves (shard formation
/// invalidates the slots).
#[derive(Debug, Default)]
pub(super) struct StealState {
    slots: Vec<RwLock<TreeSlot>>,
    stale: StaleLengths,
    /// Per-slot self-cap fractions of the current round (written by the fold
    /// when a slot's last chunk commits, read by the commit loop).
    theta_k: Vec<f64>,
    tasks: Vec<Task>,
    results: Vec<Mutex<Option<Loads>>>,
    /// Round-local buffers, kept across rounds so the straggler tail's many
    /// small rounds allocate nothing.
    active: Vec<usize>,
    jobs: Vec<usize>,
    /// Spent load buffers, recycled between pricing tasks (claim: pop one,
    /// price into it, post; fold: push the folded buffer back).
    recycle: Mutex<Vec<Loads>>,
}

/// Cloning yields a fresh (cold) state: cached trees and length buffers are
/// scratch, not data — the same contract as the workspace pools.
impl Clone for StealState {
    fn clone(&self) -> Self {
        StealState::default()
    }
}

/// Borrowed solver-workspace buffers for the single-active fast path's
/// serial kernels: the same buffers the phase scheduler's serial branch
/// hands to [`SerialState`]. The two branches never run concurrently, so
/// sharing them is free.
pub(super) struct SerialScratch<'a> {
    pub touched: &'a mut Vec<usize>,
    pub path: &'a mut Vec<usize>,
    pub subtree: &'a mut Vec<f64>,
    pub cur_len: &'a mut Vec<f64>,
}

/// Ignore mutex/rwlock poisoning throughout: the critical sections are
/// pushes, takes and fold steps that cannot leave the data inconsistent,
/// and the solver's panic (if any) propagates regardless.
macro_rules! unpoison {
    ($e:expr) => {
        $e.unwrap_or_else(|e| e.into_inner())
    };
}

/// Top-down current-length refresh + staleness check of a cached dense
/// tree: recompute every settled node's tree-path length under the round's
/// pricing lengths (`cur_len[v] = cur_len[parent] + lens[arc]`, parents
/// settle first) and report whether any destination with remaining demand
/// drifted past the reuse slack — exactly the serial aggregated kernel's
/// revalidation rule, run against a borrowed scratch buffer.
fn tree_is_stale(
    ctx: &RouteCtx<'_>,
    si: usize,
    lens: &[f64],
    remaining: &[f64],
    slack: f64,
    sssp: &SsspWorkspace,
    cur_len: &mut Vec<f64>,
) -> bool {
    let s = &ctx.prob.sources()[si];
    let n = ctx.prob.num_nodes();
    if cur_len.len() < n {
        cur_len.resize(n, 0.0);
    }
    for &v in sssp.settle_order() {
        let v = v as usize;
        if v == s.src {
            cur_len[v] = 0.0;
            continue;
        }
        let (p, aid) = sssp.parent_unchecked(v);
        cur_len[v] = cur_len[p] + lens[aid];
    }
    s.dests.iter().enumerate().any(|(j, &(dst, _))| {
        remaining[j] > 1e-15 && dst != s.src && cur_len[dst] > slack * sssp.dist(dst)
    })
}

/// Advances the fold cursor over the ready prefix of `results`, folding
/// each taken result into the merge in task-index order. Non-blocking: if
/// another worker holds the fold, this one goes back to routing (the final
/// blocking drain after the parallel region folds whatever is left).
fn drain_ready(
    fold: &Mutex<Fold<'_>>,
    results: &[Mutex<Option<Loads>>],
    st: &[RouteState],
    recycle: &Mutex<Vec<Loads>>,
) {
    if let Ok(mut f) = fold.try_lock() {
        while f.cursor < results.len() {
            let taken = unpoison!(results[f.cursor].lock()).take();
            match taken {
                Some(loads) => {
                    f.fold_one(&loads, st);
                    unpoison!(recycle.lock()).push(loads);
                }
                None => break,
            }
        }
    }
}

impl Fold<'_> {
    /// Folds the result of task `self.cursor`: stage the chunk's loads and,
    /// when this is the slot's last chunk, self-cap the staged source and
    /// record its `θ_k`.
    fn fold_one(&mut self, loads: &[(u32, f64)], st: &[RouteState]) {
        let t = self.cursor;
        self.merge.stage(loads);
        let slot = self.tasks[t].slot;
        if t + 1 == self.tasks.len() || self.tasks[t + 1].slot != slot {
            self.theta_k[slot] = self.merge.commit_staged(st);
        }
        self.cursor += 1;
    }
}

/// Runs one batched phase under the stealing scheduler: fixed-order shards
/// of `batch` sources, each drained by work-stealing pricing rounds (see
/// the module docs). Returns `false` when `D(l)` saturated mid-phase (the
/// caller breaks the phase loop) — the same contract as the serial kernels.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_phase(
    cfg: &FleischerConfig,
    ctx: &RouteCtx<'_>,
    potentials: &[f64],
    batch: usize,
    batch_remaining: &mut [Vec<f64>],
    routed: &mut [Vec<f64>],
    mwu: &mut MwuLengths,
    arc_state: &mut [RouteState],
    flow_arc: &mut [f64],
    epoch_merge: &mut EpochMerge,
    route_pool: &WorkspacePool<RouteScratch>,
    serial_scratch: SerialScratch<'_>,
    state: &mut StealState,
    stats: &mut SolveStats,
) -> bool {
    let prob = ctx.prob;
    let m = prob.num_arcs();
    let num_sources = prob.sources().len();
    let chunk = cfg
        .steal_chunk
        .unwrap_or_else(|| super::auto_steal_chunk(prob.num_nodes()))
        .max(1);
    // S < 2 is synchronous: a buffer refreshed every round is the live
    // lengths with extra copies.
    let staleness = cfg.async_staleness.filter(|&s| s >= 2);
    // Cached trees reuse under the serial quarter-step slack. Wider slacks
    // were swept and rejected: a full-ε slack cut Facebook TM-F's rebuilds
    // ~1.4x but slowed dense-A2A convergence 12 → 40 phases — the same
    // loose-slack trade the reverted phase-persistent tree designs hit.
    let slack = ctx.reuse_slack;
    let SerialScratch {
        touched,
        path,
        subtree,
        cur_len,
    } = serial_scratch;
    let StealState {
        slots,
        stale,
        theta_k,
        tasks,
        results,
        active,
        jobs,
        recycle,
    } = state;

    let mut start = 0usize;
    while start < num_sources {
        let end = (start + batch).min(num_sources);
        let bs = end - start;
        if slots.len() < bs {
            slots.resize_with(bs, Default::default);
        }
        if theta_k.len() < bs {
            theta_k.resize(bs, 1.0);
        }
        // Form the shard: invalidate the cached trees, reset remaining
        // demands, and commit self-demands up front (they consume no
        // capacity, so they never wait on a θ-rescaled drain step).
        for slot in &mut slots[..bs] {
            let slot = unpoison!(slot.get_mut());
            slot.valid = false;
            slot.exact = false;
        }
        for (k, si) in (start..end).enumerate() {
            let rem = &mut batch_remaining[k];
            rem.clone_from(&ctx.demands[si]);
            let s = &prob.sources()[si];
            for (j, &(dst, _)) in s.dests.iter().enumerate() {
                if dst == s.src && rem[j] > 0.0 {
                    routed[si][j] += rem[j];
                    rem[j] = 0.0;
                }
            }
        }
        let mut round = 0usize;
        loop {
            // Saturation is checked against the *true* lengths even in
            // async mode — the stale buffer only prices trees.
            if mwu.saturated() {
                return false;
            }
            active.clear();
            active.extend((0..bs).filter(|&k| batch_remaining[k].iter().any(|&r| r > 1e-15)));
            if active.is_empty() {
                break;
            }
            // Serial drain fast path: a merged round over one source IS the
            // serial in-place update (U_a is the source's own self-capped
            // load, so θ·θ_k equals the serial bottleneck rule), but paying
            // the queue/fold/commit machinery per capacity-limited step. The
            // straggler tail that dominates skewed TMs is exactly this case,
            // so hand lone survivors to the serial kernels and drain them to
            // completion — same math, serial cost, and trivially
            // deterministic (the trigger depends on the trajectory, never on
            // worker count). Under `steal_serial_tail` (skew-gated by the
            // auto-batching pick) the path generalizes: every round after
            // the shard's first drains ALL survivors serially in slot
            // order, eliminating the repeated full-shard rebuilds that a
            // shared θ < 1 chain forces (each merged round moves every
            // active source's lengths, so round r+1 re-Dijkstras the whole
            // shard to commit another small fraction — measured +16% total
            // trees over serial on Facebook TM-F). Async mode stays on the
            // batched path: its pricing must read the stale buffer, not the
            // live lengths.
            if staleness.is_none() && (active.len() == 1 || (cfg.steal_serial_tail && round > 0)) {
                for &k in active.iter() {
                    let si = start + k;
                    let dense = prob.sources()[si].dests.len() >= ctx.agg_min_dests;
                    let slot = unpoison!(slots[k].get_mut());
                    // The serial kernels expect a usable (within-slack) tree.
                    let exact = if !slot.valid
                        || (dense
                            && !slot.exact
                            && tree_is_stale(
                                ctx,
                                si,
                                mwu.lens(),
                                &batch_remaining[k],
                                slack,
                                &slot.sssp,
                                cur_len,
                            )) {
                        route::compute_tree(ctx, si, potentials, mwu.lens(), &mut slot.sssp);
                        stats.steal_trees += 1;
                        let settled = slot.sssp.settled_count();
                        stats.steal_settle_total += settled;
                        stats.steal_settle_max = stats.steal_settle_max.max(settled);
                        true
                    } else {
                        slot.exact
                    };
                    slot.valid = true;
                    slot.exact = false; // the drain moves the lengths
                    let mut sstate = SerialState {
                        mwu: &mut *mwu,
                        st: &mut arc_state[..],
                        flow_arc: &mut *flow_arc,
                        remaining: &mut batch_remaining[k],
                        touched: &mut *touched,
                        path: &mut *path,
                        subtree: &mut subtree[..],
                        cur_len: &mut cur_len[..],
                        sssp: &mut slot.sssp,
                    };
                    let ok = if dense {
                        route::route_source_tree(ctx, si, potentials, &mut sstate, &mut routed[si])
                    } else {
                        route::route_source_walk(
                            ctx,
                            si,
                            potentials,
                            &mut sstate,
                            &mut routed[si],
                            exact,
                        )
                    };
                    if !ok {
                        return false;
                    }
                }
                round += 1;
                continue;
            }
            // Pricing lengths for this round: the live lengths, or the
            // bounded-staleness buffer refreshed every S rounds. Successive
            // refreshes copy a monotonically later MWU state, so recorded
            // tree distances keep lower-bounding pricing distances.
            let lens_fresh = match staleness {
                Some(s) => {
                    let refresh = round.is_multiple_of(s);
                    if refresh {
                        stale.refresh_from(mwu.lens());
                    }
                    refresh
                }
                None => true,
            };
            let trees = AtomicUsize::new(0);
            let settle_total = AtomicUsize::new(0);
            let settle_max = AtomicUsize::new(0);
            let rem_view: &[Vec<f64>] = batch_remaining;
            let st: &[RouteState] = arc_state;
            {
                let lens: &[f64] = match staleness {
                    Some(_) => stale.as_slice(),
                    None => mwu.lens(),
                };
                // Build the round's deterministic task list: dense sources
                // with at least two chunks' worth of destinations split into
                // destination chunks; walk sources stay whole. (Splitting is
                // purely a pricing-parallelism decision — the staged fold
                // reassembles a source's chunks before self-capping, so the
                // merge math is independent of the chunking. An earlier
                // variant also split last round's `θ·θ_k < 1` stragglers and
                // capped each chunk separately; a shared `θ < 1` marks every
                // active slot, so one capacity-limited round split the whole
                // shard, the weaker per-chunk caps collapsed `θ`, and the
                // drain stalled with everyone active — measured ~3x worse
                // than the fixed rounds on Facebook TM-F.)
                //
                // Split slots also queue for the stage-A tree resolve: their
                // chunks share the tree read-only, so it must exist before
                // any of them is claimed. Unsplit slots resolve inside their
                // own task.
                tasks.clear();
                jobs.clear();
                for &k in active.iter() {
                    let si = start + k;
                    let nd = prob.sources()[si].dests.len();
                    let dense = nd >= ctx.agg_min_dests;
                    let slot = unpoison!(slots[k].get_mut());
                    if lens_fresh && round > 0 {
                        slot.exact = false;
                    }
                    if dense && nd >= 2 * chunk {
                        if !slot.valid || !slot.exact {
                            jobs.push(k);
                        }
                        let mut lo = 0;
                        while lo < nd {
                            let hi = (lo + chunk).min(nd);
                            tasks.push(Task {
                                slot: k,
                                si,
                                lo,
                                hi,
                                dense: true,
                                shared: true,
                            });
                            lo = hi;
                        }
                    } else {
                        tasks.push(Task {
                            slot: k,
                            si,
                            lo: 0,
                            hi: nd,
                            dense,
                            shared: false,
                        });
                    }
                }
                stats.steal_tasks += tasks.len();
                // Stage A: bring every split slot's shared tree up to the
                // round's pricing lengths.
                if !jobs.is_empty() {
                    let jobs_view: &[usize] = jobs;
                    let queue = ClaimQueue::new(jobs_view.len());
                    let run = |scratch: &mut RouteScratch| {
                        while let Some(i) = queue.claim() {
                            let k = jobs_view[i];
                            let si = start + k;
                            let mut slot = unpoison!(slots[k].write());
                            let slot = &mut *slot;
                            let rebuild = !slot.valid
                                || tree_is_stale(
                                    ctx,
                                    si,
                                    lens,
                                    &rem_view[k],
                                    slack,
                                    &slot.sssp,
                                    &mut scratch.subtree,
                                );
                            if rebuild {
                                route::compute_tree(ctx, si, potentials, lens, &mut slot.sssp);
                                slot.valid = true;
                                slot.exact = true;
                                let settled = slot.sssp.settled_count();
                                trees.fetch_add(1, Ordering::Relaxed);
                                settle_total.fetch_add(settled, Ordering::Relaxed);
                                settle_max.fetch_max(settled, Ordering::Relaxed);
                            }
                        }
                    };
                    if jobs_view.len() > 1
                        && jobs_view.len() * m >= PAR_MIN_BATCH_WORK
                        && rayon::current_num_threads() > 1
                    {
                        let workers = rayon::current_num_threads().min(jobs_view.len());
                        (0..workers).into_par_iter().for_each(|_| {
                            let mut scratch = route_pool.lease();
                            run(&mut scratch);
                        });
                    } else {
                        let mut scratch = route_pool.lease();
                        run(&mut scratch);
                    }
                }
                // Stage B: price and fold. The parallel path claims tasks
                // from the queue, posts results, and folds ahead in
                // task-index order; when only one worker would run (or the
                // round is too small to fan out), an inline path executes
                // the tasks in the same order with direct folds — no claim
                // queue, no result slots, no locks — producing bit-identical
                // merges by construction.
                epoch_merge.begin(m);
                let tasks_view: &[Task] = tasks;
                if tasks_view.len() * m < PAR_MIN_BATCH_WORK
                    || rayon::current_num_threads() <= 1
                    || tasks_view.len() <= 1
                {
                    let mut scratch = route_pool.lease();
                    let mut fold = Fold {
                        cursor: 0,
                        tasks: tasks_view,
                        merge: &mut *epoch_merge,
                        theta_k: &mut theta_k[..bs],
                    };
                    let mut buf = unpoison!(recycle.get_mut()).pop().unwrap_or_default();
                    for &task in tasks_view {
                        let slot = unpoison!(slots[task.slot].get_mut());
                        if task.dense {
                            if !task.shared
                                && (!slot.valid
                                    || !slot.exact
                                        && tree_is_stale(
                                            ctx,
                                            task.si,
                                            lens,
                                            &rem_view[task.slot],
                                            slack,
                                            &slot.sssp,
                                            &mut scratch.subtree,
                                        ))
                            {
                                route::compute_tree(ctx, task.si, potentials, lens, &mut slot.sssp);
                                slot.valid = true;
                                slot.exact = true;
                                let settled = slot.sssp.settled_count();
                                trees.fetch_add(1, Ordering::Relaxed);
                                settle_total.fetch_add(settled, Ordering::Relaxed);
                                settle_max.fetch_max(settled, Ordering::Relaxed);
                            }
                            route::price_chunk_snapshot(
                                ctx,
                                task.si,
                                task.lo,
                                task.hi,
                                &rem_view[task.slot],
                                &slot.sssp,
                                &mut scratch.subtree,
                                &mut buf,
                            );
                        } else {
                            if !slot.valid {
                                route::compute_tree(ctx, task.si, potentials, lens, &mut slot.sssp);
                                slot.valid = true;
                                slot.exact = true;
                                let settled = slot.sssp.settled_count();
                                trees.fetch_add(1, Ordering::Relaxed);
                                settle_total.fetch_add(settled, Ordering::Relaxed);
                                settle_max.fetch_max(settled, Ordering::Relaxed);
                            }
                            let (built, settled) = route::price_walk_cached(
                                ctx,
                                task.si,
                                potentials,
                                lens,
                                &rem_view[task.slot],
                                slack,
                                &mut slot.sssp,
                                &mut slot.exact,
                                &mut scratch.arc_load,
                                &mut buf,
                            );
                            if built > 0 {
                                trees.fetch_add(built, Ordering::Relaxed);
                                settle_total.fetch_add(settled, Ordering::Relaxed);
                                settle_max.fetch_max(settled / built, Ordering::Relaxed);
                            }
                        }
                        fold.fold_one(&buf, st);
                    }
                    unpoison!(recycle.get_mut()).push(buf);
                } else {
                    results.clear();
                    results.resize_with(tasks_view.len(), || Mutex::new(None));
                    let results_view: &[Mutex<Option<Loads>>] = results;
                    let recycle_view: &Mutex<Vec<Loads>> = recycle;
                    let fold = Mutex::new(Fold {
                        cursor: 0,
                        tasks: tasks_view,
                        merge: &mut *epoch_merge,
                        theta_k: &mut theta_k[..bs],
                    });
                    let queue = ClaimQueue::new(tasks_view.len());
                    let run = |scratch: &mut RouteScratch| {
                        while let Some(t) = queue.claim() {
                            let task = tasks_view[t];
                            let mut buf = unpoison!(recycle_view.lock()).pop().unwrap_or_default();
                            if task.dense && task.shared {
                                let slot = unpoison!(slots[task.slot].read());
                                route::price_chunk_snapshot(
                                    ctx,
                                    task.si,
                                    task.lo,
                                    task.hi,
                                    &rem_view[task.slot],
                                    &slot.sssp,
                                    &mut scratch.subtree,
                                    &mut buf,
                                );
                            } else if task.dense {
                                let mut slot = unpoison!(slots[task.slot].write());
                                let slot = &mut *slot;
                                if !slot.valid
                                    || !slot.exact
                                        && tree_is_stale(
                                            ctx,
                                            task.si,
                                            lens,
                                            &rem_view[task.slot],
                                            slack,
                                            &slot.sssp,
                                            &mut scratch.subtree,
                                        )
                                {
                                    route::compute_tree(
                                        ctx,
                                        task.si,
                                        potentials,
                                        lens,
                                        &mut slot.sssp,
                                    );
                                    slot.valid = true;
                                    slot.exact = true;
                                    let settled = slot.sssp.settled_count();
                                    trees.fetch_add(1, Ordering::Relaxed);
                                    settle_total.fetch_add(settled, Ordering::Relaxed);
                                    settle_max.fetch_max(settled, Ordering::Relaxed);
                                }
                                route::price_chunk_snapshot(
                                    ctx,
                                    task.si,
                                    task.lo,
                                    task.hi,
                                    &rem_view[task.slot],
                                    &slot.sssp,
                                    &mut scratch.subtree,
                                    &mut buf,
                                );
                            } else {
                                let mut slot = unpoison!(slots[task.slot].write());
                                let slot = &mut *slot;
                                if !slot.valid {
                                    route::compute_tree(
                                        ctx,
                                        task.si,
                                        potentials,
                                        lens,
                                        &mut slot.sssp,
                                    );
                                    slot.valid = true;
                                    slot.exact = true;
                                    let settled = slot.sssp.settled_count();
                                    trees.fetch_add(1, Ordering::Relaxed);
                                    settle_total.fetch_add(settled, Ordering::Relaxed);
                                    settle_max.fetch_max(settled, Ordering::Relaxed);
                                }
                                let (built, settled) = route::price_walk_cached(
                                    ctx,
                                    task.si,
                                    potentials,
                                    lens,
                                    &rem_view[task.slot],
                                    slack,
                                    &mut slot.sssp,
                                    &mut slot.exact,
                                    &mut scratch.arc_load,
                                    &mut buf,
                                );
                                if built > 0 {
                                    trees.fetch_add(built, Ordering::Relaxed);
                                    settle_total.fetch_add(settled, Ordering::Relaxed);
                                    settle_max.fetch_max(settled / built, Ordering::Relaxed);
                                }
                            }
                            *unpoison!(results_view[t].lock()) = Some(buf);
                            drain_ready(&fold, results_view, st, recycle_view);
                        }
                    };
                    let workers = rayon::current_num_threads().min(tasks_view.len());
                    (0..workers).into_par_iter().for_each(|_| {
                        let mut scratch = route_pool.lease();
                        run(&mut scratch);
                    });
                    // Final blocking drain: every result is posted once the
                    // region ends; fold whatever the price-ahead passes
                    // missed.
                    let mut f = unpoison!(fold.lock());
                    while f.cursor < results_view.len() {
                        let loads = unpoison!(results_view[f.cursor].lock())
                            .take()
                            .expect("every claimed task posts its result");
                        f.fold_one(&loads, st);
                        unpoison!(recycle_view.lock()).push(loads);
                    }
                }
            }
            // One batched ≤ (1+ε) update for the round, then commit each
            // source's uniform θ·θ_k fraction in task order (every chunk of
            // a source shares its θ_k). What remains re-prices next round.
            let theta = epoch_merge.theta(st);
            epoch_merge.apply(theta, mwu, flow_arc);
            stats.epochs += 1;
            for task in tasks.iter() {
                let f = theta * theta_k[task.slot];
                if f <= 0.0 {
                    continue;
                }
                let rem = &mut batch_remaining[task.slot];
                let routed_si = &mut routed[task.si];
                for j in task.lo..task.hi {
                    if rem[j] > 1e-15 {
                        let commit = f * rem[j];
                        routed_si[j] += commit;
                        rem[j] -= commit;
                    }
                }
            }
            stats.steal_trees += trees.into_inner();
            stats.steal_settle_total += settle_total.into_inner();
            stats.steal_settle_max = stats.steal_settle_max.max(settle_max.into_inner());
            round += 1;
        }
        start = end;
    }
    true
}
