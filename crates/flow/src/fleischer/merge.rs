//! Deterministic load reduction and the batched length update.
//!
//! The batch-parallel epochs produce one `(arc id, load)` list per source,
//! each computed read-only against the epoch's frozen snapshot. This module
//! folds those lists into one dense per-arc aggregate **in batch-index
//! order** — f64 addition is not associative, so fixing the fold order is
//! what makes the epoch (and every downstream number) bit-identical for any
//! worker count — rescales the aggregate by the binding `cap/load` ratio,
//! and applies **one** multiplicative length update per touched arc.
//!
//! ## The batched-ε step-size argument
//!
//! Serially, routing the same loads would apply one update per source per
//! arc: factors `∏_k (1 + eps·u_k/cap)`. The batched round applies the
//! single factor `1 + eps·θU/cap` with `U_a = Σ_k θ_k·u_{k,a}` (each source
//! self-capped by `θ_k = min(1, min_a cap_a/u_{k,a})`) and the shared
//! `θ = min(1, min_a cap_a/U_a)` — i.e. the update is taken with the
//! **rescaled step** `eps' = eps·θU/cap ≤ eps`, so no update event ever
//! exceeds the classical `1 + eps` growth bound and the Fleischer
//! length-growth analysis applies verbatim. (The single factor also
//! lower-bounds the serial product for the same committed flow, so the dual
//! potential `D(l)` grows no faster per unit of flow than serially — in
//! practice measurably slower, which is why batched runs close the bound gap
//! in *fewer* phases than serial on dense TMs.) Each source commits the
//! uniform `θ·θ_k` fraction of its remaining demand; what is left re-prices
//! against a fresh snapshot next round, after the binding arc grew by its
//! full `1 + eps` factor — the same progress argument as the serial
//! capacity-limited tree iterations. Two alternatives were tried and
//! measured worse: an in-order greedy allocation (sources admitted against
//! what earlier sources left) restores the serial trajectory's unevenness —
//! serial-like phase counts *and* straggler tails of tiny rounds — and
//! draining a round's remainder on its own trees without re-pricing
//! reproduces the reverted phase-blocked design's trajectory concentration
//! (hypercube-64 A2A: 12 → 380 phases).
//!
//! ## Staged chunks: splitting without changing the step
//!
//! The work-stealing scheduler prices a heavy source as several destination
//! *chunks*, and chunks of one source share the path arcs near it — so
//! capping each chunk separately against full capacities would admit their
//! **sum** past an arc's capacity, weakening every self-cap and collapsing
//! the shared `θ` (measured as a straggler-split cascade ~3× worse than the
//! fixed rounds on Facebook TM-F). Instead the fold *stages* chunk loads
//! into a pending per-source accumulator ([`EpochMerge::stage`]) and
//! self-caps the **staged sum** when the source's last chunk arrives
//! ([`EpochMerge::commit_staged`]) — chunks of one source are contiguous in
//! task order, so "last chunk" is a local test. A split source therefore
//! produces exactly the `θ_k·u_{k,a}` contribution an unsplit one would:
//! splitting is a pure pricing-parallelism decision with no effect on the
//! merge math, and the step-size argument above applies unchanged.

use super::route::RouteState;
use crate::lengths::MwuLengths;

/// The multiplicative-weights update for routing `u` units over arc `aid`:
/// accumulate the flow and grow the arc's length through
/// [`MwuLengths::apply`] (which maintains `D(l)` incrementally). One
/// definition serves every routing kernel — the per-destination walk, the
/// aggregated tree, and the batched epoch apply — keeping them
/// arithmetically identical.
#[inline]
pub(super) fn apply_update(mwu: &mut MwuLengths, flow_arc: &mut [f64], aid: usize, u: f64) {
    flow_arc[aid] += u;
    mwu.apply(aid, u);
}

/// The epoch accumulator: dense per-arc loads plus the touched-arc list (in
/// first-touch order). Lives in the solver workspace so epochs allocate
/// nothing once sized; the invariant between epochs is "`load` is all zeros,
/// `touched` is empty" (restored by [`EpochMerge::apply`]).
#[derive(Debug, Clone, Default)]
pub(super) struct EpochMerge {
    load: Vec<f64>,
    touched: Vec<u32>,
    /// Pending loads of the source currently being staged chunk by chunk
    /// (work-stealing scheduler); same dense + first-touch representation.
    staged: Vec<f64>,
    staged_touched: Vec<u32>,
}

impl EpochMerge {
    /// Prepares for an epoch over `m` arcs (grows the dense buffers; existing
    /// entries are already zero by the inter-epoch invariant).
    pub fn begin(&mut self, m: usize) {
        debug_assert!(self.touched.is_empty());
        debug_assert!(self.staged_touched.is_empty());
        if self.load.len() < m {
            self.load.resize(m, 0.0);
        }
        if self.staged.len() < m {
            self.staged.resize(m, 0.0);
        }
        debug_assert!(self.load.iter().all(|&l| l == 0.0));
    }

    /// Stages one destination-chunk's load list into the pending per-source
    /// accumulator, *without* capping. The work-stealing scheduler prices a
    /// split source as several chunk tasks; chunks of one source share path
    /// arcs near it, so the self-cap must see their **sum** — capping each
    /// chunk separately would let the combined load blow past `cap_a`, be
    /// rescued only by the shared `θ`, and collapse the whole round's commit
    /// fraction (measured on Facebook TM-F: the per-chunk variant kept
    /// nearly the entire shard active every round). Chunks of one source are
    /// contiguous in task order, so the in-order fold stages them and calls
    /// [`EpochMerge::commit_staged`] on the last one.
    pub fn stage(&mut self, loads: &[(u32, f64)]) {
        for &(aid, u) in loads {
            let a = aid as usize;
            if self.staged[a] == 0.0 {
                self.staged_touched.push(aid);
            }
            self.staged[a] += u;
        }
    }

    /// Self-caps the staged source — all its chunks combined — against the
    /// raw capacities, folds the capped fraction into the epoch aggregate,
    /// clears the staging area, and returns `θ_k`. For a source staged as a
    /// single chunk this is bit-identical to [`EpochMerge::accumulate_capped`]
    /// (one entry per arc, same fold order), so splitting is purely a
    /// pricing-parallelism decision with no effect on the merge math.
    pub fn commit_staged(&mut self, st: &[RouteState]) -> f64 {
        let mut theta_k = 1.0f64;
        for &aid in &self.staged_touched {
            let a = aid as usize;
            let u = self.staged[a];
            let cap = st[a].cap;
            if u > cap {
                theta_k = theta_k.min(cap / u);
            }
        }
        for &aid in &self.staged_touched {
            let a = aid as usize;
            if self.load[a] == 0.0 {
                self.touched.push(aid);
            }
            self.load[a] += theta_k * self.staged[a];
            self.staged[a] = 0.0;
        }
        self.staged_touched.clear();
        theta_k
    }

    /// Self-caps one source's load list against the raw capacities and folds
    /// the capped fraction into the aggregate, returning the source's
    /// self-cap fraction `θ_k = min(1, min_a cap_a/u_{k,a})` — exactly the
    /// serial kernels' per-iteration `min(remaining, bottleneck)` rule,
    /// applied uniformly to the source's whole demand vector. Self-capping
    /// is **order-independent** (each source is capped against capacities,
    /// not against what others consumed — fairness an in-order greedy
    /// allocation lacks, which measurably restored the serial trajectory's
    /// phase counts when tried), and it is what keeps skewed TMs cheap: one
    /// oversized source caps *itself* instead of dragging the whole shard's
    /// commit fraction down and forcing every source to re-price.
    ///
    /// Callers invoke this in **batch-index order**; within a list, entries
    /// are processed in list order — together that makes the fold order (and
    /// the resulting floats) independent of worker scheduling.
    pub fn accumulate_capped(&mut self, loads: &[(u32, f64)], st: &[RouteState]) -> f64 {
        let mut theta_k = 1.0f64;
        for &(aid, u) in loads {
            let cap = st[aid as usize].cap;
            if u > cap {
                theta_k = theta_k.min(cap / u);
            }
        }
        for &(aid, u) in loads {
            let a = aid as usize;
            if self.load[a] == 0.0 {
                self.touched.push(aid);
            }
            self.load[a] += theta_k * u;
        }
        theta_k
    }

    /// The round's shared commit fraction `θ = min(1, min_a cap_a/U_a)` over
    /// the capped aggregate: the largest uniform fraction of every source's
    /// (self-capped) contribution that fits all capacities at once. `min` is
    /// order-insensitive, but the scan runs in touched order anyway.
    pub fn theta(&self, st: &[RouteState]) -> f64 {
        let mut ratio = f64::INFINITY;
        for &aid in &self.touched {
            let a = aid as usize;
            let load = self.load[a];
            let cap = st[a].cap;
            if load > cap {
                ratio = ratio.min(cap / load);
            }
        }
        ratio.min(1.0)
    }

    /// Applies the batched update — each touched arc gets its θ-rescaled
    /// aggregate in a single multiplicative step (≤ `1 + eps` by the
    /// step-size argument above) — and restores the inter-round invariant.
    /// Arcs update in first-touch order, which is deterministic because
    /// accumulation is.
    pub fn apply(&mut self, theta: f64, mwu: &mut MwuLengths, flow_arc: &mut [f64]) {
        for &aid in &self.touched {
            let a = aid as usize;
            let u = theta * self.load[a];
            apply_update(mwu, flow_arc, a, u);
            self.load[a] = 0.0;
        }
        self.touched.clear();
    }

    /// Clears accumulated-but-unapplied state (a solve interrupted by `D(l)`
    /// saturation between pricing and apply), restoring the invariant for
    /// the next solve.
    pub fn reset(&mut self) {
        for &aid in &self.touched {
            self.load[aid as usize] = 0.0;
        }
        self.touched.clear();
        for &aid in &self.staged_touched {
            self.staged[aid as usize] = 0.0;
        }
        self.staged_touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lengths::ArcLengths;

    fn st(caps: &[f64]) -> Vec<RouteState> {
        caps.iter()
            .map(|&cap| RouteState {
                avail: cap,
                used: 0.0,
                cap,
            })
            .collect()
    }

    #[test]
    fn accumulation_is_order_of_lists_not_workers() {
        // Folding the same per-source lists in the same (batch) order gives
        // the same touched order, self-caps and floats, no matter how the
        // lists were produced.
        let mut a = EpochMerge::default();
        a.begin(4);
        let state = st(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.accumulate_capped(&[(2, 0.1), (0, 0.2)], &state), 1.0);
        assert_eq!(a.accumulate_capped(&[(0, 0.3), (3, 0.4)], &state), 1.0);
        assert_eq!(a.touched, vec![2, 0, 3]);
        assert_eq!(a.theta(&state), 1.0);
    }

    #[test]
    fn oversized_source_self_caps_without_dragging_others() {
        let caps = [1.0, 2.0];
        let state = st(&caps);
        let mut m = EpochMerge::default();
        m.begin(2);
        // Source 0 wants 4x arc 0's capacity: self-capped to theta_0 = 0.25.
        assert_eq!(m.accumulate_capped(&[(0, 4.0), (1, 1.0)], &state), 0.25);
        // Source 1 fits on its own and is not punished for source 0.
        assert_eq!(m.accumulate_capped(&[(1, 0.5)], &state), 1.0);
        // Aggregate on arc 0 is exactly cap => shared theta stays 1.
        let theta = m.theta(&state);
        assert_eq!(theta, 1.0);
        let mut mwu = MwuLengths::new();
        mwu.reset(0.1, caps);
        let mut flow = vec![0.0; 2];
        let before = mwu.len_of(0);
        m.apply(theta, &mut mwu, &mut flow);
        // The self-capped source saturated arc 0 => the full 1+eps factor.
        assert!((mwu.len_of(0) / before - 1.1).abs() < 1e-12);
        assert_eq!(flow[0], 1.0);
        assert_eq!(flow[1], 0.75); // 0.25·1.0 from source 0 + 0.5 from source 1
                                   // Invariant restored: a second round starts clean.
        m.begin(2);
        assert_eq!(m.theta(&state), 1.0);
    }

    #[test]
    fn staged_chunks_self_cap_as_one_source() {
        let caps = [1.0, 2.0];
        let state = st(&caps);
        // One source split into two chunks overlapping on arc 0, combined
        // load 4x its capacity: the staged commit must cap at 0.25 — per-chunk
        // capping would have let 2x capacity through to the aggregate.
        let mut m = EpochMerge::default();
        m.begin(2);
        m.stage(&[(0, 2.0), (1, 0.5)]);
        m.stage(&[(0, 2.0)]);
        assert_eq!(m.commit_staged(&state), 0.25);
        assert_eq!(m.theta(&state), 1.0);
        // A single-chunk source goes through stage+commit bit-identically to
        // accumulate_capped.
        let mut a = EpochMerge::default();
        a.begin(2);
        let tk_a = a.accumulate_capped(&[(0, 4.0), (1, 1.0)], &state);
        let mut b = EpochMerge::default();
        b.begin(2);
        b.stage(&[(0, 4.0), (1, 1.0)]);
        let tk_b = b.commit_staged(&state);
        assert_eq!(tk_a, tk_b);
        assert_eq!(a.theta(&state), b.theta(&state));
        assert_eq!(a.touched, b.touched);
    }

    #[test]
    fn shared_theta_binds_on_overlapping_sources_and_reset_clears() {
        let state = st(&[1.0]);
        let mut m = EpochMerge::default();
        m.begin(1);
        // Two sources, each fitting alone, overlapping on arc 0: the shared
        // theta rescales the round to capacity.
        assert_eq!(m.accumulate_capped(&[(0, 0.8)], &state), 1.0);
        assert_eq!(m.accumulate_capped(&[(0, 0.8)], &state), 1.0);
        assert_eq!(m.theta(&state), 0.625); // 1.0 / 1.6
                                            // An interrupted round (accumulated, never applied) resets clean.
        m.reset();
        m.begin(1);
        assert_eq!(m.theta(&state), 1.0);
    }
}
