//! The phase scheduler: owns the multiplicative-weights loop.
//!
//! A *phase* routes every source's full (pre-scaled) demand once. The
//! scheduler runs phases until the classical termination `D(l) >= 1`, the
//! bound gap closes, or the phase cap is hit, interleaving the goal-direction
//! potential refreshes and the periodic bound evaluations.
//!
//! With batching off (the default), every phase is a **serial phase**: the
//! classical Fleischer trajectory, source by source, lengths updated in
//! place — bit-identical to the pre-split solver. With
//! [`FleischerConfig::batch_size`]` = B >= 2`, phases after the first are
//! **batched**: sources are partitioned into fixed-order shards of `B`, each
//! shard routes in epochs against a frozen [`LengthSnapshot`] (in parallel
//! across workers), and each epoch ends with one deterministic merged length
//! update (see [`super::merge`] for the step-size argument).
//!
//! Phase 0 always runs serially and doubles as the **convergence-guard
//! yardstick**: `ln D(l)` grows roughly linearly per phase in this scheme, so
//! the scheduler extrapolates the serial phase count from phase 0's progress
//! and, if a batched run exceeds `guard_factor ×` that estimate without
//! converging, permanently degenerates to the serial trajectory — the
//! safeguard the two reverted stale-length designs lacked (recorded in
//! ROADMAP.md; both slowed convergence with nothing to catch it).

use super::route::{self, RouteCtx, RouteState, SerialState};
use super::{
    steal, BatchGate, FleischerConfig, PricingMode, SolveStats, SolverWorkspace, WarmGate,
    PAR_MIN_BATCH_WORK, PAR_MIN_SWEEP_WORK,
};
use crate::certificate::{CertCapture, ThroughputCertificate};
use crate::instance::FlowProblem;
use crate::lengths::{MwuLengths, WarmStart};
use crate::ThroughputBounds;
use rayon::prelude::*;
use tb_graph::{Graph, SsspPool, SsspWorkspace};

/// Runs the full solve: setup, the phase loop, and the closing bound
/// evaluation. See the module docs of [`super`] for the algorithm.
///
/// Re-pricing after **every** merged update is load-bearing for MWU
/// convergence (measured on the dense microbench shapes): allowing even one
/// extra theta-limited commit on a round's own trees inflates hypercube-64
/// A2A from 12 to 40 phases, and draining a round to completion reproduces
/// the reverted phase-blocked design's blowup (12 → 380 phases). The
/// scheduler therefore prices → merges → applies exactly once per round.
///
/// `warm` seeds the MWU lengths from a previous solve's [`WarmStart`] (see
/// [`WarmGate`] for the admission/reset rules); with `warm: None` every code
/// path below is arithmetically identical to the pre-warm scheduler, so the
/// cold trajectory — and with it every golden artifact — is untouched. The
/// warm machinery is an **attempt loop**: a warm trajectory that falls
/// behind the cold phase extrapolation, or saturates with a bound gap wider
/// than the classical guarantee, discards its attempt entirely (bounds,
/// flow, certificate capture) and re-runs as a clean cold solve.
/// `want_warm` additionally extracts a fresh artifact from the final length
/// state (read-only — it never alters the trajectory).
pub(super) fn solve_problem(
    cfg: &FleischerConfig,
    graph: &Graph,
    prob: &FlowProblem,
    ws: &mut SolverWorkspace,
    want_cert: bool,
    warm: Option<&WarmStart>,
    want_warm: bool,
) -> (
    ThroughputBounds,
    SolveStats,
    Option<ThroughputCertificate>,
    Option<WarmStart>,
) {
    let n = prob.num_nodes();
    let m = prob.num_arcs();
    let eps = cfg.epsilon;
    assert!(eps > 0.0 && eps < 0.5, "epsilon must be in (0, 0.5)");
    let trivial_stats = SolveStats {
        converged: true,
        ..SolveStats::default()
    };
    // Trivial exits certify their zero with empty evidence at the
    // instance's real dimensions: zero flow, zero served amounts, unit
    // lengths (under which a disconnected pair drives the dual bound to an
    // exact zero).
    let trivial_cert = |prob: &FlowProblem| {
        want_cert.then(|| {
            let commodities = prob.sources().iter().map(|s| s.dests.len()).sum();
            ThroughputCertificate::build(
                prob,
                vec![0.0; prob.num_arcs()],
                vec![0.0; commodities],
                vec![1.0; prob.num_arcs()],
            )
        })
    };
    // Trivial exits emit an empty (never-engaged) warm artifact: the next
    // solve in a chain then starts cold rather than inheriting a stale shape.
    let trivial_warm = || want_warm.then(WarmStart::default);
    if m == 0 {
        return (
            ThroughputBounds::exact(0.0),
            trivial_stats,
            trivial_cert(prob),
            trivial_warm(),
        );
    }
    // Set TB_SOLVER_TRACE=1 to print per-solve convergence counters when
    // tuning the kernel. The global counters are process-cumulative, so
    // snapshot them here and print deltas: the trace line then pairs
    // tree/potential counts with the per-solve `phases=`/`d_l=` values.
    let trace = std::env::var_os("TB_SOLVER_TRACE").is_some();
    let trace_start = if trace {
        (
            route::TREE_COUNT.load(std::sync::atomic::Ordering::Relaxed),
            route::POT_COUNT.load(std::sync::atomic::Ordering::Relaxed),
        )
    } else {
        (0, 0)
    };

    // Pre-scale demands so the scaled optimum is near 1; this keeps the
    // phase count predictable regardless of the raw demand magnitudes.
    // The estimate doubles as the reachability check (0 iff some demand
    // pair is disconnected, which forces throughput 0) — one BFS sweep
    // instead of the former two.
    let est = prob.volumetric_estimate(graph);
    if est <= 0.0 {
        return (
            ThroughputBounds::exact(0.0),
            trivial_stats,
            trivial_cert(prob),
            trivial_warm(),
        );
    }
    let scale = est.max(1e-12);
    let demands: Vec<Vec<f64>> = prob
        .sources()
        .iter()
        .map(|s| s.dests.iter().map(|&(_, d)| d * scale).collect())
        .collect();
    // Destination node list per source, for early-exit SSSP.
    let targets: Vec<Vec<usize>> = prob
        .sources()
        .iter()
        .map(|s| s.dests.iter().map(|&(dst, _)| dst).collect())
        .collect();
    // Goal-direction bookkeeping: sources with exactly one destination
    // get an A* potential row (see module docs).
    let single_dest: Vec<Option<usize>> = prob
        .sources()
        .iter()
        .map(|s| {
            if s.dests.len() == 1 {
                Some(s.dests[0].0)
            } else {
                None
            }
        })
        .collect();
    let pot_rows: Vec<usize> = {
        let mut next = 0usize;
        single_dest
            .iter()
            .map(|d| {
                if d.is_some() {
                    next += 1;
                    next - 1
                } else {
                    usize::MAX
                }
            })
            .collect()
    };
    let num_single = single_dest.iter().filter(|d| d.is_some()).count();

    let SolverWorkspace {
        sssp,
        remaining,
        mwu,
        arc_state,
        touched,
        path,
        potentials,
        rev_lens,
        subtree,
        cur_len,
        merge: epoch_merge,
        sweep_pool,
        route_pool,
        steal: steal_state,
    } = ws;
    // Sources at or above the aggregation threshold route all their
    // remaining demands in one bottom-up pass over the tree's settle
    // order instead of one parent walk per destination (see module docs).
    let agg_min_dests = cfg
        .aggregate_min_dests
        .unwrap_or(super::DEFAULT_AGGREGATE_MIN_DESTS)
        .max(1);
    let any_dense = prob
        .sources()
        .iter()
        .any(|s| s.dests.len() >= agg_min_dests);

    // Reuse a tree across a source's capacity-limited iterations while
    // the walked path is within this factor of the tree's recorded
    // distance; a quarter step keeps routed paths well inside the slack
    // the analysis absorbs.
    let reuse_slack = 1.0 + 0.25 * eps;
    // A zero `check_interval` would otherwise silently disable every
    // mid-run bound evaluation (and with it early termination).
    let check_interval = cfg.check_interval.max(1);
    let pot_refresh = check_interval;
    // Goal direction is kept on for the whole solve whenever any source
    // qualifies: switching kernels mid-solve was tried and reverted — it
    // changes tie-breaking, and with it the routing trajectory, enough to
    // slow convergence on some topologies.
    let goal_enabled = num_single > 0;

    let num_sources = prob.sources().len();
    let ctx = RouteCtx {
        prob,
        demands: &demands,
        targets: &targets,
        single_dest: &single_dest,
        pot_rows: &pot_rows,
        num_single,
        goal_enabled,
        agg_min_dests,
        reuse_slack,
    };

    // Batch-parallel configuration: `None`/`Some(1)` is the serial
    // trajectory; `B >= 2` shards phases after the serial yardstick phase 0.
    let batch = cfg.batch_size.unwrap_or(1).max(1);
    let batching = batch >= 2 && num_sources >= 2;
    let mut stats = SolveStats {
        batch_size: if batching { batch } else { 1 },
        // An explicit batch size that never went through the auto-pick
        // still reports a meaningful gate.
        gate: if cfg.batch_gate == BatchGate::Unset && batching {
            BatchGate::Explicit
        } else {
            cfg.batch_gate
        },
        ..Default::default()
    };
    let mut batch_remaining: Vec<Vec<f64>> = if batching {
        vec![Vec::new(); batch.min(num_sources)]
    } else {
        Vec::new()
    };

    // The optional wall-clock budget; checked on the bound-evaluation
    // cadence so the deterministic trajectory is untouched when unset.
    // Spans all warm attempts: a restarted solve does not get a fresh budget.
    let solve_start = cfg.time_budget_ms.map(|_| std::time::Instant::now());

    // The warm quality gate: a surviving warm trajectory must *measure* its
    // way under the configured target gap — the same bar the cold gap-exit
    // uses. A cold saturation is additionally allowed the classical `(1+ε)`
    // slack because the delta-init argument earns it; a warm saturation has
    // no such argument, so anything wider than the target is discarded and
    // the solve restarts cold. This is what keeps every warm exit inside the
    // cold path's `assert_quality_within_target` contract. Cold solves never
    // consult this gate.
    let warm_quality_gap = cfg.target_gap;
    let mut warm_active = warm.is_some();
    let mut total_phases = 0usize;

    // The attempt loop: one iteration per trajectory attempt. A cold solve
    // (warm: None) runs exactly one attempt — none of the warm branches
    // below fire, so its arithmetic is untouched. A warm solve may restart
    // once: warm attempt, then (if a gate fires) a clean cold attempt whose
    // bounds/flow/certificate do not inherit anything from the discarded one.
    let (best_lower, best_upper, capture) = 'attempt: loop {
        let mut flow_arc = vec![0.0f64; m];
        let mut routed: Vec<Vec<f64>> = demands.iter().map(|d| vec![0.0; d.len()]).collect();

        let mut best_lower = 0.0f64;
        let mut best_upper = f64::INFINITY;
        // Certificate capture: pure snapshots of the state behind each best
        // bound, never arithmetic on solver state — the trajectory is
        // identical with capture on or off.
        let mut capture = want_cert.then(CertCapture::default);

        // Lengths: the warm projection when one is admitted, the classical
        // delta init otherwise (`reset_warm` falls back to the cold init on
        // rejection, so a rejected shape leaves no trace in the state).
        let attempt_warm = if warm_active
            && warm.is_some_and(|w| {
                w.is_usable() && mwu.reset_warm(eps, prob.arc_caps(), &w.lens, cfg.warm_rescale)
            }) {
            stats.warm_gate = if warm.map_or(0, |w| w.lens.len()) == m {
                WarmGate::Engaged
            } else {
                WarmGate::EngagedProjected
            };
            true
        } else {
            mwu.reset(eps, prob.arc_caps());
            if warm_active {
                // A rejected shape runs this attempt cold from phase 0; no
                // gate below can fire on a cold attempt, so this is final.
                stats.warm_gate = WarmGate::RejectedShape;
            }
            false
        };
        arc_state.clear();
        arc_state.extend(prob.arcs().iter().map(|a| RouteState {
            avail: a.cap,
            used: 0.0,
            cap: a.cap,
        }));
        touched.clear();
        if num_single > 0 {
            potentials.clear();
            potentials.resize(num_single * n, f64::INFINITY);
        }
        if any_dense {
            subtree.clear();
            subtree.resize(n, 0.0);
            cur_len.clear();
            cur_len.resize(n, 0.0);
        }

        let mut batch_active = batching;
        let mut guard_limit = usize::MAX;
        let mut warm_guard_limit = usize::MAX;
        let mut phase = 0usize;
        let mut state_evaluated = false;
        'phases: while phase < cfg.max_phases && !mwu.saturated() {
            if goal_enabled && phase.is_multiple_of(pot_refresh) {
                route::refresh_potentials(&ctx, mwu.lens(), rev_lens, potentials, sssp, sweep_pool);
            }
            // Phase 0 is always serial: it is both the exact classical
            // trajectory and the convergence guard's yardstick.
            if !batch_active || phase == 0 {
                let d_before = mwu.d_l();
                for si in 0..num_sources {
                    if mwu.saturated() {
                        break 'phases;
                    }
                    remaining.clear();
                    remaining.extend_from_slice(&demands[si]);
                    // Compute this source's tree at the current lengths, goal-
                    // directed when it has a single destination.
                    route::compute_tree(&ctx, si, potentials, mwu.lens(), sssp);
                    let dense = prob.sources()[si].dests.len() >= agg_min_dests;
                    let mut state = SerialState {
                        mwu: &mut *mwu,
                        st: &mut arc_state[..],
                        flow_arc: &mut flow_arc,
                        remaining: &mut *remaining,
                        touched: &mut *touched,
                        path: &mut *path,
                        subtree: &mut subtree[..],
                        cur_len: &mut cur_len[..],
                        sssp: &mut *sssp,
                    };
                    let ok = if dense {
                        route::route_source_tree(&ctx, si, potentials, &mut state, &mut routed[si])
                    } else {
                        route::route_source_walk(
                            &ctx,
                            si,
                            potentials,
                            &mut state,
                            &mut routed[si],
                            true,
                        )
                    };
                    if !ok {
                        break 'phases;
                    }
                }
                if (batching || attempt_warm) && phase == 0 {
                    stats.serial_estimate = estimate_serial_phases(d_before, mwu.d_l());
                    if batching {
                        guard_limit = ((cfg.guard_factor * stats.serial_estimate as f64).ceil()
                            as usize)
                            .max(1);
                        stats.guard_limit = guard_limit;
                    }
                    if attempt_warm {
                        // The warm admissibility budget: how many phases the warm
                        // trajectory may spend before it must have converged.
                        // Prefer the donor's measured phase count as the yardstick
                        // — chains hand near-identical problems along, so it
                        // approximates this instance's *cold* cost, which the
                        // saturation extrapolation wildly overestimates (gap exits
                        // fire long before `D(l) ≥ 1`). A floor of two
                        // bound-evaluation windows keeps a trivially-cheap donor
                        // from starving a recipient that needs a few real phases;
                        // `phases == 0` falls back to the extrapolation.
                        let yardstick = match warm.map_or(0, |w| w.phases) {
                            0 => stats.serial_estimate,
                            d => d.max(2 * check_interval),
                        };
                        warm_guard_limit = ((cfg.warm_guard_factor.unwrap_or(cfg.guard_factor)
                            * yardstick as f64)
                            .ceil() as usize)
                            .max(1);
                    }
                }
            } else if cfg.pricing == PricingMode::Stealing {
                // Batched phase, work-stealing scheduler: cached per-source
                // trees, destination chunks on a claim queue, price-ahead fold
                // (see `steal` module docs). Same shard order and merge math as
                // the fixed rounds below; different pricing-work production.
                if !steal::run_phase(
                    cfg,
                    &ctx,
                    potentials,
                    batch,
                    &mut batch_remaining,
                    &mut routed,
                    mwu,
                    &mut arc_state[..],
                    &mut flow_arc,
                    epoch_merge,
                    route_pool,
                    steal::SerialScratch {
                        touched: &mut *touched,
                        path: &mut *path,
                        subtree: &mut *subtree,
                        cur_len: &mut *cur_len,
                    },
                    steal_state,
                    &mut stats,
                ) {
                    break 'phases;
                }
            } else {
                // Batched phase: fixed-order shards of `batch` sources. A shard
                // routes in *pricing rounds*: every source with remaining demand
                // prices its tree read-only against a frozen snapshot (the
                // parallel fan-out), the per-source loads are self-capped and
                // merged in batch-index order, and one batched ≤(1+eps) update
                // commits the round (see `merge` for the step-size argument and
                // the measured-worse alternatives).
                let mut start = 0usize;
                while start < num_sources {
                    let end = (start + batch).min(num_sources);
                    let bs = end - start;
                    // Form the shard: reset its remaining demands and commit
                    // self-demands up front (they consume no capacity, so they
                    // never wait on a theta-rescaled drain step).
                    for (k, si) in (start..end).enumerate() {
                        let rem = &mut batch_remaining[k];
                        rem.clone_from(&demands[si]);
                        let s = &prob.sources()[si];
                        for (j, &(dst, _)) in s.dests.iter().enumerate() {
                            if dst == s.src && rem[j] > 0.0 {
                                routed[si][j] += rem[j];
                                rem[j] = 0.0;
                            }
                        }
                    }
                    loop {
                        if mwu.saturated() {
                            break 'phases;
                        }
                        let active: Vec<usize> = (0..bs)
                            .filter(|&k| batch_remaining[k].iter().any(|&r| r > 1e-15))
                            .collect();
                        if active.is_empty() {
                            break;
                        }
                        // Price the shard read-only against one frozen snapshot,
                        // leasing per-worker scratch from the pool. Parallel or
                        // not, per-source loads are pure functions of (snapshot,
                        // source) and the merge below folds them in batch-index
                        // order, so the round is bit-identical for any worker
                        // count.
                        let loads: Vec<Vec<(u32, f64)>> = {
                            let snap = mwu.snapshot();
                            let jobs: Vec<(usize, &[f64])> = active
                                .iter()
                                .map(|&k| (start + k, batch_remaining[k].as_slice()))
                                .collect();
                            if jobs.len() > 1
                                && jobs.len() * m >= PAR_MIN_BATCH_WORK
                                && rayon::current_num_threads() > 1
                            {
                                jobs.into_par_iter()
                                    .map_init(
                                        || route_pool.lease(),
                                        |sc, (si, rem)| {
                                            route::route_source_snapshot(
                                                &ctx, si, potentials, snap, rem, sc,
                                            )
                                        },
                                    )
                                    .collect()
                            } else {
                                let mut sc = route_pool.lease();
                                jobs.into_iter()
                                    .map(|(si, rem)| {
                                        route::route_source_snapshot(
                                            &ctx, si, potentials, snap, rem, &mut sc,
                                        )
                                    })
                                    .collect()
                            }
                        };
                        // Deterministic merge (each source self-capped against
                        // raw capacities, exactly the serial per-iteration
                        // bottleneck rule) + one batched ≤(1+eps) update.
                        epoch_merge.begin(m);
                        let self_caps: Vec<f64> = loads
                            .iter()
                            .map(|source_loads| {
                                epoch_merge.accumulate_capped(source_loads, arc_state)
                            })
                            .collect();
                        let theta = epoch_merge.theta(arc_state);
                        epoch_merge.apply(theta, mwu, &mut flow_arc);
                        stats.epochs += 1;
                        // Commit each source's theta·theta_k fraction; what
                        // remains re-prices against a fresh snapshot next round.
                        for (&k, &theta_k) in active.iter().zip(&self_caps) {
                            let f = theta * theta_k;
                            if f <= 0.0 {
                                continue;
                            }
                            let si = start + k;
                            for (j, r) in batch_remaining[k].iter_mut().enumerate() {
                                if *r > 1e-15 {
                                    let commit = f * *r;
                                    routed[si][j] += commit;
                                    *r -= commit;
                                }
                            }
                        }
                    }
                    start = end;
                }
            }
            phase += 1;
            // Convergence guard: past the phase budget, fall back to the exact
            // serial trajectory for the remainder of the solve.
            if batch_active && phase >= guard_limit {
                batch_active = false;
                stats.guard_triggered = true;
            }
            // In a batched solve the serial phase-0 yardstick doubles as a
            // convergence probe: evaluate once right after it, so instances the
            // single serial sweep already solves to the target gap (integral
            // optima hit exactly, e.g. unit-capacity matchings on the hypercube
            // — measured gap 0.0 after one phase vs >= 0.16 on every shape that
            // benefits from batching) terminate before any batched epoch runs.
            // The phase-count guard cannot catch these: its estimate
            // extrapolates the classical `D(l) >= 1` termination and is blind
            // to gap-based early exits (measured 45x wall-clock on the
            // hypercube longest-matching without this check).
            if phase.is_multiple_of(check_interval) || (batching && phase == 1) {
                let (lo, up, mu) = evaluate_bounds(
                    &ctx, potentials, &routed, &flow_arc, mwu, arc_state, sssp, sweep_pool,
                );
                if let Some(cap) = capture.as_mut() {
                    cap.observe(
                        lo,
                        up,
                        mu,
                        best_lower,
                        best_upper,
                        mwu.lens(),
                        &flow_arc,
                        &routed,
                    );
                }
                best_lower = best_lower.max(lo);
                best_upper = best_upper.min(up);
                if best_upper.is_finite()
                    && (best_upper - best_lower) / best_upper <= cfg.target_gap
                {
                    // No routing has happened since this evaluation, so the
                    // closing sweep below would recompute the same bounds;
                    // skip it.
                    state_evaluated = true;
                    break 'phases;
                }
                if let (Some(budget_ms), Some(start)) = (cfg.time_budget_ms, solve_start) {
                    if start.elapsed().as_millis() >= u128::from(budget_ms) {
                        state_evaluated = true;
                        break 'phases;
                    }
                }
            }
            // Warm admissibility gate (the lagging reset): past the warm phase
            // budget without converging, the warm trajectory has fallen behind
            // the cold extrapolation — discard this attempt and restart cold.
            if attempt_warm && phase >= warm_guard_limit && !mwu.saturated() {
                stats.warm_gate = WarmGate::ResetLagging;
                stats.warm_phases_discarded += phase;
                total_phases += phase;
                warm_active = false;
                epoch_merge.reset();
                continue 'attempt;
            }
        }
        stats.phases = total_phases + phase;
        // A solve that saturated mid-drain leaves partially-drained loads in the
        // merge accumulator; clear them so the workspace's next solve starts on
        // the documented invariant.
        epoch_merge.reset();

        if trace {
            eprintln!(
            "TB_SOLVER_TRACE phases={phase} trees={} pot_refreshes={} d_l={:.4} batch={} epochs={} guard_limit={} guard_triggered={} warm_gate={:?}",
            route::TREE_COUNT
                .load(std::sync::atomic::Ordering::Relaxed)
                .wrapping_sub(trace_start.0),
            route::POT_COUNT
                .load(std::sync::atomic::Ordering::Relaxed)
                .wrapping_sub(trace_start.1),
            mwu.d_l(),
            stats.batch_size,
            stats.epochs,
            stats.guard_limit,
            stats.guard_triggered,
            stats.warm_gate,
        );
        }

        // Final bound evaluation (unless the state was already evaluated by
        // the gap check that ended the run).
        if !state_evaluated {
            let (lo, up, mu) = evaluate_bounds(
                &ctx, potentials, &routed, &flow_arc, mwu, arc_state, sssp, sweep_pool,
            );
            if let Some(cap) = capture.as_mut() {
                cap.observe(
                    lo,
                    up,
                    mu,
                    best_lower,
                    best_upper,
                    mwu.lens(),
                    &flow_arc,
                    &routed,
                );
            }
            best_lower = best_lower.max(lo);
            best_upper = best_upper.min(up);
        }
        if !best_upper.is_finite() {
            best_upper = best_lower;
        }
        // Warm quality gate: a cold saturation carries the classical `(1+ε)`
        // guarantee by the delta-init argument; a warm trajectory does not, so
        // any warm exit that did not *measure* its way under the practical bar
        // (saturation with a wide gap, or a budget exit a cold run might have
        // closed) discards the attempt and restarts cold. The bounds themselves
        // are valid for any positive lengths by LP duality — the gate protects
        // accuracy parity with cold, not soundness.
        if attempt_warm {
            let gap = if best_upper > 0.0 {
                (best_upper - best_lower) / best_upper
            } else {
                0.0
            };
            if gap > warm_quality_gap {
                stats.warm_gate = WarmGate::ResetQuality;
                stats.warm_phases_discarded += phase;
                total_phases += phase;
                warm_active = false;
                continue 'attempt;
            }
        }
        break 'attempt (best_lower, best_upper, capture);
    };

    // Converged = the accuracy contract held when the loop ended: either the
    // classical FPTAS termination (`D(l) >= 1`, the (1±ε) guarantee) or the
    // target bound gap. A solve that merely ran out of its phase or time
    // budget reports `converged: false`, which the outcome layer maps to
    // `SolveStatus::BudgetExhausted`.
    stats.converged = mwu.saturated()
        || best_upper <= 0.0
        || (best_upper - best_lower) / best_upper <= cfg.target_gap;
    // Extract the warm artifact for the next solve in a chain: the final
    // length shape plus the dual bound in unscaled units. Read-only — the
    // trajectory is identical with extraction on or off.
    let warm_out = want_warm.then(|| WarmStart {
        lens: mwu.lens().to_vec(),
        dual_bound: best_upper * scale,
        epsilon: eps,
        phases: stats.phases,
    });
    // Undo the demand pre-scaling: bounds computed for demands d*scale are
    // 1/scale times the bounds for d. The certificate needs no scale field:
    // its flow and served amounts are absolute, so the canonical claims come
    // out in original demand units directly.
    let cert = capture.map(|cap| cap.into_certificate(prob));
    (
        ThroughputBounds {
            lower: best_lower * scale,
            upper: best_upper * scale,
        },
        stats,
        cert,
        warm_out,
    )
}

/// Extrapolates the serial phase count from one serial phase's `D(l)`
/// progress: `ln D(l)` grows roughly linearly per phase (each phase routes
/// the full demand once, multiplying lengths by ~`(1+eps)^loads`), so the
/// phases left to the classical `D(l) >= 1` termination are
/// `-ln d_after / (ln d_after - ln d_before)`. The estimate is a guard
/// yardstick, not a bound: gap-based early termination usually fires first,
/// making the estimate conservative (an upper-ish estimate of serial work),
/// which only loosens the guard.
fn estimate_serial_phases(d_before: f64, d_after: f64) -> usize {
    if !(d_after.is_finite() && d_before > 0.0 && d_after > d_before) {
        return 1;
    }
    if d_after >= 1.0 {
        return 1;
    }
    let per_phase = d_after.ln() - d_before.ln();
    if per_phase <= 0.0 {
        return 1;
    }
    1 + ((-d_after.ln()) / per_phase).ceil() as usize
}

/// Evaluates the practical feasible lower bound and the dual upper bound
/// for the current state, returning `(lower, upper, mu)` where `mu` is the
/// capacity-rescale factor behind the lower bound (the certificate capture
/// stores it alongside the flow snapshot). Bounds are in the *scaled*
/// demand space.
///
/// The dual bound needs one shortest-path computation per source under the
/// current lengths (goal-directed where a potential row exists); the sweep is
/// read-only over the lengths, so for larger instances it fans out across
/// threads (each worker leasing its own SSSP workspace from `pool`), with a
/// fixed summation order keeping the result independent of thread count.
#[allow(clippy::too_many_arguments)]
fn evaluate_bounds(
    ctx: &RouteCtx<'_>,
    potentials: &[f64],
    routed: &[Vec<f64>],
    flow_arc: &[f64],
    mwu: &MwuLengths,
    st: &[RouteState],
    sssp: &mut SsspWorkspace,
    pool: &SsspPool,
) -> (f64, f64, f64) {
    // Feasible lower bound: scale the accumulated flow down so that no arc
    // exceeds its capacity, then the worst-served commodity determines the
    // concurrent throughput.
    let mut mu = f64::INFINITY;
    for (f, a) in flow_arc.iter().zip(st) {
        if *f > 1e-15 {
            mu = mu.min(a.cap / f);
        }
    }
    let lower = if mu.is_finite() {
        let mut worst = f64::INFINITY;
        for (r, d) in routed.iter().zip(ctx.demands) {
            for (rj, dj) in r.iter().zip(d) {
                worst = worst.min(rj / dj);
            }
        }
        if worst.is_finite() {
            worst * mu
        } else {
            0.0
        }
    } else {
        0.0
    };

    // Dual upper bound: D(l) / alpha(l) with alpha(l) the demand-weighted
    // shortest-path distances under the current lengths.
    let alpha_of = |sw: &mut SsspWorkspace, si: usize| -> f64 {
        let s = &ctx.prob.sources()[si];
        route::compute_tree(ctx, si, potentials, mwu.lens(), sw);
        s.dests
            .iter()
            .enumerate()
            .map(|(j, &(dst, _))| ctx.demands[si][j] * sw.dist(dst))
            .sum()
    };
    let num_sources = ctx.prob.sources().len();
    let alpha: f64 = if num_sources * ctx.prob.num_arcs() >= PAR_MIN_SWEEP_WORK
        && rayon::current_num_threads() > 1
    {
        // Materialize per-source alphas, then sum sequentially in source
        // order: the thread-count bit-identity contract must not lean on
        // any rayon implementation's `sum()` reduction order (the vendored
        // stand-in happens to be ordered; real rayon's split tree is not).
        let per_source: Vec<f64> = (0..num_sources)
            .into_par_iter()
            .map_init(|| pool.lease(), |sw, si| alpha_of(sw, si))
            .collect();
        per_source.iter().sum()
    } else {
        (0..num_sources).map(|si| alpha_of(sssp, si)).sum()
    };
    (lower, mwu.dual_bound(alpha), mu)
}
