//! Fleischer / Garg–Könemann multiplicative-weights FPTAS for maximum
//! concurrent flow, with a practical twist: alongside the classical
//! guarantee, the solver maintains
//!
//! * a **feasible lower bound** obtained by rescaling the accumulated primal
//!   flow to respect capacities exactly, and
//! * a **dual upper bound** `D(l)/alpha(l)` evaluated on the current length
//!   function (valid for any positive lengths by LP duality),
//!
//! and stops as soon as the two are within `target_gap` of each other (or the
//! classical termination `D(l) >= 1` fires). On the instances the paper
//! evaluates the bounds typically close to within a few percent long before
//! the worst-case phase count is reached.
//!
//! ## Pipeline layout
//!
//! The solver is organized as a **shard → route → merge pipeline** across
//! three submodules:
//!
//! * [`phase`] — the phase scheduler: owns the multiplicative-weights length
//!   state ([`crate::MwuLengths`]), partitions each phase's sources into
//!   fixed-order batches, freezes a [`crate::LengthSnapshot`] per routing
//!   epoch, runs the bound-evaluation cadence and the convergence guard;
//! * [`route`] — the per-source routing kernels (goal-directed single
//!   destination, per-destination walk, aggregated bottom-up tree), each
//!   available in the classical serial in-place form and in a **read-only
//!   snapshot form** that prices trees against a frozen epoch snapshot and
//!   returns the arc loads it would place;
//! * [`merge`] — deterministic load reduction: per-worker load lists are
//!   folded in batch-index order into one dense per-arc aggregate, rescaled
//!   by the binding `cap/load` ratio, and applied as **one batched length
//!   update per epoch**.
//!
//! ## Hot-path machinery
//!
//! The inner loop is a shortest-path computation per source per iteration, so
//! the solver is built around the shared `tb_graph` SSSP kernel:
//!
//! * arcs live in a CSR view ([`FlowProblem::csr`]); no nested adjacency
//!   vectors are chased,
//! * all per-iteration state (Dijkstra arrays and heap, remaining demand,
//!   availability bookkeeping, the recorded routing path) lives in a
//!   [`SolverWorkspace`] that is allocated once and reset in O(1) via
//!   generation counters; parallel regions lease per-worker scratch from the
//!   workspace's [`tb_graph::WorkspacePool`]s instead of allocating,
//! * every SSSP call passes the source's destination set, so Dijkstra stops
//!   as soon as the last relevant node is settled,
//! * a tree is **reused** across a source's capacity-limited iterations while
//!   the walked path stays within a small factor of the tree's recorded
//!   distance (sound because arc lengths only ever grow, so the recorded
//!   distance lower-bounds the current one — the classical Fleischer
//!   argument),
//! * the dual bound's per-source SSSP sweep is read-only over the length
//!   function and fans out with rayon once the instance is large enough to
//!   amortize the pool.
//!
//! ## Goal-directed routing for sparse TMs
//!
//! Monotone lengths yield one more structural win: shortest-path distances
//! *to* a node, computed under any earlier (pointwise smaller) length
//! function, form a **consistent A\* potential** for the current lengths.
//! For every source with a single destination — the shape of matching-style
//! near-worst-case TMs, where each switch talks to one peer — the solver
//! caches reverse distances to that destination (refreshed on a fixed phase
//! cadence, in parallel for large instances) and runs the goal-directed
//! kernel [`tb_graph::sssp_csr_goal`] instead of a full Dijkstra. Distances
//! and routed paths remain *exact*; once the length function differentiates,
//! the search expands little beyond the shortest path itself, instead of
//! settling the whole graph per iteration.
//!
//! ## Aggregated tree routing for dense TMs
//!
//! At the opposite end of the TM spectrum (all-to-all and friends, where one
//! source talks to most of the graph), walking every destination's path
//! individually costs O(sum of path lengths) per tree iteration and re-touches
//! the arcs near the source once per destination. Sources whose destination
//! count reaches [`FleischerConfig::aggregate_min_dests`] instead route *all*
//! remaining demands in one bottom-up pass: the SSSP workspace exposes its
//! settle order ([`tb_graph::SsspWorkspace::settle_order`]), a reverse walk
//! over that order folds per-node subtree demand into the parent, and each
//! tree arc is loaded exactly once with its aggregate. If some arc's
//! aggregate load exceeds its capacity, the whole batch is scaled by the
//! binding `cap/load` ratio and the tree iteration repeats, so the
//! per-iteration length-update factor stays within `1 + eps` exactly as in
//! the per-destination walk. Sparse TMs keep the per-destination walk, where
//! goal direction wins; `tb_core`'s evaluation plumbing auto-picks the
//! threshold from the graph size via
//! [`FleischerConfig::with_auto_aggregation`].
//!
//! ## Batch-parallel phases (opt-in via [`FleischerConfig::batch_size`])
//!
//! With a batch size `B >= 2`, each phase's sources are partitioned into
//! **fixed-order batches of `B`**. A batch routes in *epochs*: the scheduler
//! freezes the current lengths into a snapshot, every source in the batch
//! prices its tree and deposits its remaining demands **read-only** against
//! that snapshot (in parallel across rayon workers, each leasing its own
//! SSSP scratch), and the resulting per-source load lists are merged in
//! batch-index order — so the merged aggregate, and with it every downstream
//! number, is **bit-identical for any worker count**.
//!
//! The merged update preserves the `(1 + eps)` length-growth invariant by
//! **rescaling the step**: if the batch's aggregate load `U_a` exceeds some
//! arc's capacity, the whole epoch commits only the binding fraction
//! `theta = min_a cap_a / U_a`, and the single batched update multiplies each
//! touched arc by `1 + eps · theta·U_a / cap_a <= 1 + eps` — i.e. the epoch
//! is equivalent to a serial pass taken with the rescaled step size
//! `eps' = eps · theta·U_a/cap_a <= eps`, so the classical analysis applies
//! unchanged. Un-committed demand stays in the batch and re-prices against a
//! *fresh* snapshot next epoch (the binding arc just grew by the full
//! `1 + eps` factor, so trees shift away from it — the same progress argument
//! as the serial capacity-limited iterations).
//!
//! This is deliberately different from the two reverted stale-length designs
//! (PR 1 phase-blocked routing, PR 2 cross-phase tree snapshots): staleness
//! here is confined to **within one epoch of one phase** — lengths advance
//! between batches and between epochs — and a **convergence guard** watches
//! the phase count. Phase 0 always runs serially and doubles as the
//! yardstick: the scheduler extrapolates the serial phase count from its
//! `ln D(l)` progress, and if the batched run exceeds
//! [`FleischerConfig::guard_factor`] times that estimate without converging,
//! it degenerates to `B = 1` (the exact serial trajectory) for the remainder
//! — the safeguard the reverted designs lacked.

mod merge;
mod phase;
mod route;
mod steal;

use crate::instance::FlowProblem;
use crate::lengths::{MwuLengths, WarmRescale, WarmStart};
use crate::ThroughputBounds;
use route::RouteScratch;
use tb_graph::{Graph, SsspPool, SsspWorkspace, WorkspacePool};
use tb_traffic::TrafficMatrix;

/// Tuning knobs for the FPTAS.
#[derive(Debug, Clone, Copy)]
pub struct FleischerConfig {
    /// Multiplicative-weights step size (the classical epsilon). Smaller is
    /// more accurate but runs more phases.
    pub epsilon: f64,
    /// Stop once `(upper - lower) / upper <= target_gap`.
    pub target_gap: f64,
    /// Hard cap on the number of phases (safety valve).
    pub max_phases: usize,
    /// How many phases to run between bound evaluations (also the refresh
    /// cadence of the goal-direction potentials).
    pub check_interval: usize,
    /// Route a source's demands with the aggregated bottom-up tree kernel
    /// (one pass over the settle order per tree iteration instead of one
    /// parent walk per destination) once its destination count reaches this.
    /// `None` means "unset": the solver falls back to
    /// [`DEFAULT_AGGREGATE_MIN_DESTS`], and
    /// [`FleischerConfig::with_auto_aggregation`] may fill in a
    /// graph-size-aware value. `Some(usize::MAX)` disables aggregation, and
    /// any explicit `Some` survives the auto-pick.
    pub aggregate_min_dests: Option<usize>,
    /// Batch size `B` for batch-parallel phases (see the module docs):
    /// sources are routed in fixed-order batches of `B` against per-epoch
    /// length snapshots, with one merged length update per epoch. `None` or
    /// `Some(1)` keeps the classical serial trajectory (the default —
    /// results are bit-identical to pre-batching solvers);
    /// [`FleischerConfig::with_auto_batching`] fills in a graph-size-aware
    /// value when the caller asked for solver-level parallelism. Any
    /// explicit `Some` survives the auto-pick.
    pub batch_size: Option<usize>,
    /// Which batched pricing-round scheduler runs when
    /// [`batch_size`](FleischerConfig::batch_size) engages:
    /// [`PricingMode::Stealing`] (the default — cached per-source trees +
    /// work-stealing destination chunks) or [`PricingMode::Rounds`] (PR 5's
    /// fixed re-pricing rounds, kept as the measured baseline). Ignored for
    /// serial solves.
    pub pricing: PricingMode,
    /// Destination-chunk size of the stealing scheduler: heavy sources are
    /// split into chunks of this many destinations, each a separately
    /// claimable (and separately self-capped) pricing task. `None` picks
    /// [`auto_steal_chunk`] from the graph size. The chunking is a pure
    /// function of the instance and trajectory — never of the worker count —
    /// so results stay bit-identical at any pool width.
    pub steal_chunk: Option<usize>,
    /// Bounded-staleness async pricing (stealing mode only, opt-in):
    /// `Some(S >= 2)` prices rounds against a materialized length buffer
    /// refreshed every `S` rounds instead of a fresh per-round snapshot, so
    /// workers read lengths **at most `S` rounds stale** while updates
    /// proceed every round. Commits are still capped against true
    /// capacities, and the PR 5 convergence guard still watches the phase
    /// count — on extrapolated-phase blowup the solve degenerates to the
    /// synchronous serial (`B = 1`) trajectory exactly as in sync mode.
    /// `None`, `Some(0)` and `Some(1)` are synchronous.
    pub async_staleness: Option<usize>,
    /// Skewed-shard drain policy of the stealing scheduler: after the first
    /// merged pricing round of a shard, drain every still-active source
    /// serially in slot order (the generalized straggler fast path) instead
    /// of running further merged rounds. On skew-dominated TMs the merged
    /// rounds after the first mostly rebuild all active trees to commit a
    /// small shared-θ fraction (measured +16% Dijkstras over serial on
    /// Facebook TM-F); the serial tail drains each survivor to completion
    /// with the serial kernels' tree reuse instead. Dense near-uniform TMs
    /// should leave this off — their multi-round merged drains are where
    /// batched parallelism wins. [`FleischerConfig::with_auto_batching`]
    /// turns it on when the demand distribution is skewed. Trigger and
    /// drain order depend only on the trajectory, never the worker count,
    /// so results stay bit-identical at any pool width.
    pub steal_serial_tail: bool,
    /// The auto-batching gate decision recorded by
    /// [`FleischerConfig::with_auto_batching`] and copied into
    /// [`SolveStats::gate`], so a gated serial fallback is distinguishable
    /// from a user-requested serial run. Callers never need to set this.
    pub batch_gate: BatchGate,
    /// Convergence guard for batched runs: once the phase count exceeds
    /// `guard_factor ×` the serial phase estimate (extrapolated from the
    /// always-serial phase 0) without converging, the solve degenerates to
    /// `B = 1` for the remainder. Ignored when batching is off.
    pub guard_factor: f64,
    /// How a warm start's projected length shape is rescaled down to the
    /// delta-init potential scale (see [`WarmRescale`]). Only read when a
    /// [`WarmStart`] is passed to
    /// [`FleischerSolver::solve_warm_with_stats`]; the `batch_probe` sweep
    /// measures both rules, the default ([`WarmRescale::Mean`]) ships.
    pub warm_rescale: WarmRescale,
    /// Admissibility slack of the warm-start convergence guard: a warm solve
    /// may spend up to `warm_guard_factor ×` the phase-0 serial extrapolation
    /// before it resets to the cold trajectory (the same yardstick mechanism
    /// as [`guard_factor`](FleischerConfig::guard_factor), tracked
    /// separately so `batch_probe` can sweep the slack without touching the
    /// batching guard). `None` reuses `guard_factor`.
    pub warm_guard_factor: Option<f64>,
    /// Optional wall-clock budget in milliseconds, checked on the bound
    /// evaluation cadence. A solve that exhausts it stops and reports
    /// [`SolveStatus::BudgetExhausted`](crate::SolveStatus) with the best
    /// bracketed bounds so far instead of looping on a pathological
    /// instance. `None` (the default) keeps solves fully deterministic —
    /// [`FleischerConfig::max_phases`] is the deterministic phase budget.
    pub time_budget_ms: Option<u64>,
}

/// The aggregation threshold used when [`FleischerConfig::aggregate_min_dests`]
/// is unset: aggregation starts to pay once a source's destination count is a
/// sizable fraction of the graph (the tree then covers most settled nodes, so
/// per-destination walks re-touch the same arcs many times over).
pub const DEFAULT_AGGREGATE_MIN_DESTS: usize = 32;

/// The default convergence-guard factor for batched runs: a batched solve may
/// spend up to twice the extrapolated serial phase count before it falls back
/// to the serial trajectory.
pub const DEFAULT_GUARD_FACTOR: f64 = 2.0;

/// The demand-concentration limit of
/// [`FleischerConfig::with_auto_batching`]: auto-batching engages while the
/// single largest demand carries at most this **fraction of the TM's total
/// volume**. PR 5's fixed rounds re-priced a skewed shard's stragglers with
/// a full Dijkstra per round, so the gate was mean-relative and tight
/// (`max ≤ 8× mean`) and the Facebook frontend TM (max/mean ~64, spanning ~3
/// decades) fell back to serial; the stealing scheduler drains stragglers on
/// cached trees, so the gate now only screens out genuinely pathological
/// delta-function TMs where one commodity *is* most of the instance. (A
/// mean-relative limit cannot express that: `max/mean` is bounded by the
/// flow count, so any wide limit goes vacuous on large TMs. Share-of-total
/// separates cleanly — the Facebook max carries ~1.6% of total volume, a
/// delta function ~100%.)
pub const BATCH_SKEW_LIMIT: f64 = 0.5;

/// Skew-tuning threshold of [`FleischerConfig::with_auto_batching`]: once
/// the heaviest demand exceeds this factor times the mean demand, the pick
/// switches to the skewed-TM tuning (quarter batch +
/// [`FleischerConfig::steal_serial_tail`]). Facebook-style gravity TMs sit
/// far above this (TM-F on 64 switches measures max/mean ≈ 64); synthetic
/// uniform TMs (all-to-all, permutation matchings) sit at exactly 1.
pub const SKEW_TAIL_FACTOR: f64 = 8.0;

/// The minimum flow count for [`FleischerConfig::with_auto_batching`]: below
/// this the shard fan-out cannot amortize even one claim-queue round and the
/// serial path is always at least as fast.
pub const MIN_BATCH_FLOWS: usize = 4;

/// Which batched pricing-round scheduler [`FleischerConfig::batch_size`]
/// engages. Both are deterministic (bit-identical at any worker count) and
/// both sit behind the same convergence guard; they differ in how a round
/// prices its shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PricingMode {
    /// Work-stealing rounds (the default): each shard source's routing tree
    /// is **cached across the shard's pricing rounds** and revalidated under
    /// the serial reuse rule, heavy sources are split into destination
    /// chunks claimed from a shared queue, and chunk loads are folded in
    /// (source, chunk)-index order the moment they are ready (the
    /// price-ahead queue). See [`steal`] for the scheduler and [`merge`] for
    /// the per-chunk step-size argument.
    #[default]
    Stealing,
    /// PR 5's fixed-order rounds: every active source re-prices a fresh tree
    /// against every round's snapshot. Kept as the measured baseline (the
    /// `fptas_batch_*` bench entries) — it is what the stealing mode's
    /// ~1.3–30× skewed/sparse overhead was measured against.
    Rounds,
}

/// The decision [`FleischerConfig::with_auto_batching`] took, recorded in the
/// config and copied into [`SolveStats::gate`]. Before this existed, a gated
/// TM silently fell back to the serial trajectory, indistinguishable from a
/// user-requested serial run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BatchGate {
    /// No auto-pick ran (the solver saw neither `with_auto_batching` nor an
    /// explicit batch size).
    #[default]
    Unset,
    /// An explicit [`FleischerConfig::batch_size`] was already set; the
    /// auto-pick left it untouched (explicit always wins).
    Explicit,
    /// The caller asked for `solver_jobs <= 1`: serial by request.
    SerialJobs,
    /// Fewer than [`MIN_BATCH_FLOWS`] flows: too small to shard.
    FewFlows,
    /// One demand carries more than [`BATCH_SKEW_LIMIT`] of the TM's total
    /// volume: a delta-function TM where one commodity is the instance.
    ExtremeSkew,
    /// Auto-batching engaged with the stealing scheduler.
    Engaged,
    /// Auto-batching engaged with the stealing scheduler's skew tuning: the
    /// heaviest demand exceeds [`SKEW_TAIL_FACTOR`] x the mean, so the pick
    /// shrinks the batch (smaller shared-θ pile-ups) and turns on
    /// [`FleischerConfig::steal_serial_tail`] (survivors drain serially
    /// after a shard's first merged round).
    EngagedSkew,
}

/// What happened to the [`WarmStart`] a solve was handed, recorded in
/// [`SolveStats::warm_gate`] — the cross-instance sibling of [`BatchGate`].
/// Every warm decision is observable: a rejected or reset warm start is
/// distinguishable from a cold run, and the sweep layer's auto-pick reads
/// these to keep losing families cold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WarmGate {
    /// No warm start was supplied (the ordinary cold solve).
    #[default]
    Unset,
    /// The warm shape was accepted with matching arc counts (no projection
    /// resampling needed).
    Engaged,
    /// The warm shape was accepted after nearest-index projection onto a
    /// different arc count (adjacent ladder rungs).
    EngagedProjected,
    /// The artifact was unusable (empty/non-finite shape, or a skew that
    /// would consume the saturation headroom — see
    /// [`crate::lengths::WARM_MAX_D0`]); the solve ran cold from phase 0.
    RejectedShape,
    /// The warm trajectory fell behind the cold extrapolation — the phase
    /// count exceeded the warm guard budget without converging — and the
    /// solve restarted cold ([`SolveStats::warm_phases_discarded`] counts the
    /// abandoned phases).
    ResetLagging,
    /// The warm trajectory saturated (`D(l) ≥ 1`) but the measured bound gap
    /// exceeded the classical `(1+ε)` guarantee it was supposed to inherit;
    /// the solve restarted cold. This is the gate that makes warm bounds
    /// trustworthy: the classical saturation argument assumes the delta
    /// init, so a warm solve must *measure* the gap it claims.
    ResetQuality,
}

impl Default for FleischerConfig {
    fn default() -> Self {
        FleischerConfig {
            epsilon: 0.07,
            target_gap: 0.03,
            max_phases: 20_000,
            check_interval: 8,
            aggregate_min_dests: None,
            batch_size: None,
            pricing: PricingMode::Stealing,
            steal_chunk: None,
            async_staleness: None,
            steal_serial_tail: false,
            batch_gate: BatchGate::Unset,
            guard_factor: DEFAULT_GUARD_FACTOR,
            warm_rescale: WarmRescale::Mean,
            warm_guard_factor: None,
            time_budget_ms: None,
        }
    }
}

impl FleischerConfig {
    /// A faster, slightly looser configuration for large experiment sweeps.
    pub fn fast() -> Self {
        FleischerConfig {
            epsilon: 0.12,
            target_gap: 0.05,
            check_interval: 4,
            ..Default::default()
        }
    }

    /// A tighter configuration for validation against the exact LP.
    pub fn precise() -> Self {
        FleischerConfig {
            epsilon: 0.03,
            target_gap: 0.01,
            check_interval: 16,
            ..Default::default()
        }
    }

    /// Returns this configuration with an unset aggregation threshold picked
    /// for a graph of `num_switches` switches ([`auto_aggregate_min_dests`]).
    /// Once a source talks to that fraction of the graph, its shortest-path
    /// tree spans most settled nodes and the bottom-up kernel is strictly
    /// less work than per-destination walks. An explicit `Some` threshold
    /// (tests forcing one kernel, callers that tuned their own) is left
    /// untouched.
    pub fn with_auto_aggregation(self, num_switches: usize) -> Self {
        if self.aggregate_min_dests.is_some() {
            return self;
        }
        FleischerConfig {
            aggregate_min_dests: Some(auto_aggregate_min_dests(num_switches)),
            ..self
        }
    }

    /// Returns this configuration with an unset batch size picked for `tm`
    /// when the caller asked for `solver_jobs > 1` solver-level parallelism:
    /// [`auto_batch_size`] of the switch count, with the stealing scheduler
    /// ([`PricingMode::Stealing`]). With cached-tree stealing rounds,
    /// batching is the **default solve path** for parallel callers — the PR 5
    /// density gate (sparse matching TMs measured ~30× slower under fixed
    /// re-pricing rounds) and the tight `8×` skew gate (Facebook frontend
    /// measured ~2.3× slower) are gone; only two cheap screens remain:
    ///
    /// * *size*: at least [`MIN_BATCH_FLOWS`] flows — below that there is
    ///   nothing to shard;
    /// * *sanity*: no single demand carries more than [`BATCH_SKEW_LIMIT`]
    ///   of the TM's total volume, screening out delta-function TMs where
    ///   one commodity **is** the instance and a shard buys nothing
    ///   (NaN-safe: an incomparable pair keeps the serial path).
    ///
    /// Every call records its decision in
    /// [`batch_gate`](FleischerConfig::batch_gate) (surfaced as
    /// [`SolveStats::gate`]), so a gated fallback is observable instead of
    /// silently identical to a user-requested serial run. With
    /// `solver_jobs <= 1` only the gate record changes, and an explicit
    /// `Some` batch size always survives the auto-pick — mirroring
    /// [`FleischerConfig::with_auto_aggregation`].
    pub fn with_auto_batching(self, tm: &TrafficMatrix, solver_jobs: usize) -> Self {
        if self.batch_size.is_some() {
            return FleischerConfig {
                batch_gate: BatchGate::Explicit,
                ..self
            };
        }
        if solver_jobs <= 1 {
            return FleischerConfig {
                batch_gate: BatchGate::SerialJobs,
                ..self
            };
        }
        if tm.num_flows() < MIN_BATCH_FLOWS {
            return FleischerConfig {
                batch_gate: BatchGate::FewFlows,
                ..self
            };
        }
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for d in tm.demands() {
            max = max.max(d.amount);
            sum += d.amount;
        }
        let spread = matches!(
            max.partial_cmp(&(BATCH_SKEW_LIMIT * sum)),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !spread {
            return FleischerConfig {
                batch_gate: BatchGate::ExtremeSkew,
                ..self
            };
        }
        // Skewed but not degenerate: engage stealing with the skew tuning —
        // a quarter-size batch (a dominant commodity inside a big shard
        // keeps the whole shard's merged rounds capacity-limited, and the
        // Facebook TM-F sweep measured batch 8 ~1.8x faster than 32 at one
        // worker) and the serial shard tail (see
        // [`FleischerConfig::steal_serial_tail`]).
        let mean = sum / tm.num_flows() as f64;
        if max > SKEW_TAIL_FACTOR * mean {
            return FleischerConfig {
                batch_size: Some((auto_batch_size(tm.num_switches()) / 4).max(2)),
                pricing: PricingMode::Stealing,
                steal_serial_tail: true,
                batch_gate: BatchGate::EngagedSkew,
                ..self
            };
        }
        FleischerConfig {
            batch_size: Some(auto_batch_size(tm.num_switches())),
            pricing: PricingMode::Stealing,
            batch_gate: BatchGate::Engaged,
            ..self
        }
    }
}

/// The auto-picked aggregation threshold for a graph of `num_switches`
/// switches: a quarter of the switch count, clamped to
/// `[8, DEFAULT_AGGREGATE_MIN_DESTS]`. One definition serves both
/// [`FleischerConfig::with_auto_aggregation`] and the batching density gate
/// in [`FleischerConfig::with_auto_batching`], so the two cannot drift.
pub fn auto_aggregate_min_dests(num_switches: usize) -> usize {
    (num_switches / 4).clamp(8, DEFAULT_AGGREGATE_MIN_DESTS)
}

/// The auto-picked batch size for a graph of `num_switches` switches: half
/// the switch count, clamped to `[4, 64]`. Half a phase's sources per batch
/// keeps within-epoch staleness well below the whole-phase staleness that
/// sank the reverted phase-blocked design, while leaving batches wide enough
/// to amortize the worker-pool fan-out.
pub fn auto_batch_size(num_switches: usize) -> usize {
    (num_switches / 2).clamp(4, 64)
}

/// The auto-picked steal-chunk size for a graph of `num_switches` switches:
/// half the switch count, clamped to `[8, 64]`. Splitting is a pure
/// pricing-parallelism decision (the staged fold reassembles a source's
/// chunks before self-capping), so the chunk trades fan-out granularity
/// against per-chunk claim/fold bookkeeping: half the graph splits an
/// all-to-all source into two claimable tasks, and the `batch_probe` sweep
/// measured quarter-graph chunks ~25-30% slower at one worker on the
/// 64-switch all-to-all shapes with no trajectory difference — the finer
/// tasks were all bookkeeping.
pub fn auto_steal_chunk(num_switches: usize) -> usize {
    (num_switches / 2).clamp(8, 64)
}

/// Convergence counters of one solve, reported by
/// [`FleischerSolver::solve_with_stats`]. The determinism and
/// convergence-guard tests read these; the bench harness prints them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Phases executed (each phase routes every source's full demand once).
    pub phases: usize,
    /// Batched routing epochs executed (0 for serial solves): one frozen
    /// snapshot + one merged length update each.
    pub epochs: usize,
    /// The effective batch size the solve started with (1 = serial).
    pub batch_size: usize,
    /// The serial phase count extrapolated from the always-serial phase 0
    /// (0 when batching was off).
    pub serial_estimate: usize,
    /// The guard's phase budget, `ceil(guard_factor × serial_estimate)`
    /// (0 when batching was off).
    pub guard_limit: usize,
    /// Whether the convergence guard fired and the solve degenerated to the
    /// serial trajectory.
    pub guard_triggered: bool,
    /// Whether the solve met its accuracy contract (classical FPTAS
    /// termination or the target bound gap) before any budget ran out.
    pub converged: bool,
    /// The [`FleischerConfig::with_auto_batching`] gate decision this solve
    /// ran under ([`BatchGate::Unset`] when no auto-pick was involved).
    pub gate: BatchGate,
    /// Stealing-mode pricing tasks executed (destination chunks + walk
    /// sources) across all rounds. 0 for serial and fixed-rounds solves.
    pub steal_tasks: usize,
    /// Shortest-path trees built by the stealing scheduler (cache misses:
    /// first builds plus staleness rebuilds). The cached-tree win over
    /// fixed rounds is visible as `steal_trees ≪ steal_tasks`.
    pub steal_trees: usize,
    /// Largest per-task Dijkstra settle count seen in any stealing round —
    /// the straggler proxy the `batch_probe` example prints.
    pub steal_settle_max: usize,
    /// Total Dijkstra settle count across all stealing-round tree builds
    /// (with [`steal_trees`](SolveStats::steal_trees) this yields the mean).
    pub steal_settle_total: usize,
    /// What happened to the warm start this solve was handed
    /// ([`WarmGate::Unset`] for ordinary cold solves).
    pub warm_gate: WarmGate,
    /// Phases spent on a warm trajectory that was later abandoned by the
    /// lagging or quality gate (0 unless a reset fired). Counted separately
    /// so [`phases`](SolveStats::phases) stays the honest total across
    /// attempts while the wasted share remains visible.
    pub warm_phases_discarded: usize,
}

/// Reusable scratch state for [`FleischerSolver`]: the SSSP workspace, the
/// multiplicative-weights length state, the per-iteration buffers, and the
/// per-worker scratch pools for parallel regions. Sized lazily and reusable
/// across `solve` calls: once the largest instance has been seen, the buffers
/// held here stop allocating (per-solve setup such as the `FlowProblem` arc
/// view and demand tables still allocates), and results are identical to
/// fresh-workspace runs (see the determinism tests).
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Dijkstra state shared by routing iterations and sequential bound
    /// sweeps.
    sssp: SsspWorkspace,
    /// Remaining un-routed demand of the current source's destinations.
    remaining: Vec<f64>,
    /// Multiplicative-weights lengths + capacities + incremental `D(l)`.
    mwu: MwuLengths,
    /// Interleaved per-arc routing state (availability, use, capacity).
    arc_state: Vec<route::RouteState>,
    /// Arcs touched in the current tree iteration (sparse undo list).
    touched: Vec<usize>,
    /// Arc ids of the path being routed (recorded once, applied linearly).
    path: Vec<usize>,
    /// Goal-direction potentials, one row of `num_nodes` per single-dest
    /// source (reverse distances to its destination).
    potentials: Vec<f64>,
    /// Reversed per-arc lengths (partner-arc view) for potential refreshes.
    rev_lens: Vec<f64>,
    /// Per-node remaining subtree demand, folded bottom-up over the settle
    /// order by the aggregated routing kernel.
    subtree: Vec<f64>,
    /// Per-node current tree-path length, re-derived top-down over the settle
    /// order when the aggregated kernel revalidates a reused tree.
    cur_len: Vec<f64>,
    /// The epoch merge accumulator (dense per-arc loads + touched list).
    merge: merge::EpochMerge,
    /// Per-worker SSSP workspaces leased by the parallel bound sweeps and
    /// potential refreshes.
    sweep_pool: SsspPool,
    /// Per-worker routing scratch (SSSP + subtree fold buffer) leased by the
    /// batch-parallel epochs.
    route_pool: WorkspacePool<RouteScratch>,
    /// The stealing scheduler's per-shard state: cached tree slots, the
    /// bounded-staleness length buffer, and round-local scratch.
    steal: steal::StealState,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// solve.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fan SSSP sweeps out to the thread pool only when `sweeps * num_arcs`
/// clears this much work — below it, pool handoff costs more than it saves.
pub(crate) const PAR_MIN_SWEEP_WORK: usize = 1 << 17;

/// Fan a batched routing epoch out to the thread pool only when
/// `active sources * num_arcs` clears this much work. Routing a source is a
/// full (or goal-directed) Dijkstra, much heavier per arc than the bound
/// sweep's relax loop, so the threshold sits lower than
/// [`PAR_MIN_SWEEP_WORK`]; either path produces bit-identical results (the
/// merge runs in batch-index order regardless), so the gate is purely a
/// performance trade.
pub(crate) const PAR_MIN_BATCH_WORK: usize = 1 << 13;

/// A throughput solve's full result: the bracketing bounds, the convergence
/// counters, the structured degradation status, and the optimality
/// certificate backing the bounds. Returned by
/// [`FleischerSolver::solve_outcome_with`], the degradation-aware entry
/// point used by the failure sweeps.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The bracketing interval (always finite, `0 <= lower <= upper`).
    pub bounds: ThroughputBounds,
    /// Convergence counters of the underlying solve (all zero when the
    /// instance was trivial and no phase loop ran).
    pub stats: SolveStats,
    /// Structured status: converged, budget-exhausted, or
    /// disconnected-demands-dropped.
    pub status: crate::SolveStatus,
    /// The optimality certificate for the solved instance. When demands
    /// were dropped ([`SolveStatus::DisconnectedDemandsDropped`]
    /// (crate::SolveStatus::DisconnectedDemandsDropped)), it describes the
    /// surviving sub-TM — verify it against
    /// [`crate::drop_disconnected_demands`]' output.
    pub certificate: crate::ThroughputCertificate,
}

/// Maximum-concurrent-flow solver (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FleischerSolver {
    config: FleischerConfig,
}

impl FleischerSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: FleischerConfig) -> Self {
        FleischerSolver { config }
    }

    /// Computes throughput bounds for `tm` on `graph`.
    ///
    /// Returns `ThroughputBounds { lower: 0.0, upper: 0.0 }` if some demand
    /// pair is disconnected (the concurrent flow is then zero).
    pub fn solve(&self, graph: &Graph, tm: &TrafficMatrix) -> ThroughputBounds {
        let mut ws = SolverWorkspace::new();
        self.solve_with(graph, tm, &mut ws)
    }

    /// Like [`solve`](Self::solve), but drives a caller-provided workspace so
    /// buffers amortize across many solves (sweeps, relative-throughput
    /// sampling). Results are identical to [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        ws: &mut SolverWorkspace,
    ) -> ThroughputBounds {
        self.solve_with_stats(graph, tm, ws).0
    }

    /// Like [`solve_with`](Self::solve_with), additionally reporting the
    /// solve's convergence counters (phases, epochs, guard state).
    pub fn solve_with_stats(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        ws: &mut SolverWorkspace,
    ) -> (ThroughputBounds, SolveStats) {
        let (bounds, stats, _) = self.solve_with_certificate(graph, tm, ws, false);
        (bounds, stats)
    }

    /// The full-evidence solve: like [`solve_with_stats`]
    /// (Self::solve_with_stats) but optionally capturing the optimality
    /// certificate. Capture is trajectory-neutral — bounds and stats are
    /// bit-identical either way; it costs two `O(num_arcs)` snapshots per
    /// bound improvement plus one canonical shortest-path sweep at the end.
    pub fn solve_with_certificate(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        ws: &mut SolverWorkspace,
        want_cert: bool,
    ) -> (
        ThroughputBounds,
        SolveStats,
        Option<crate::ThroughputCertificate>,
    ) {
        crate::record_solver_invocation();
        let prob = FlowProblem::new(graph, tm);
        let (bounds, stats, cert, _) =
            phase::solve_problem(&self.config, graph, &prob, ws, want_cert, None, false);
        (bounds, stats, cert)
    }

    /// The cross-instance warm-start entry point: seeds the MWU lengths from
    /// `warm` (when provided and admissible — see [`WarmGate`]) and extracts
    /// a fresh [`WarmStart`] from the finished solve for the next instance in
    /// a chain. With `warm: None` the trajectory, bounds and stats are
    /// **bit-identical** to [`solve_with_stats`](Self::solve_with_stats)
    /// (apart from the extraction, which is read-only); the returned artifact
    /// carries the final length shape and the certified dual bound.
    ///
    /// Warm solves keep both accuracy contracts: the reported bounds are
    /// valid for any positive lengths by LP duality, and the `(1+ε)`
    /// saturation guarantee is re-checked by measurement — a warm trajectory
    /// that saturates with a wide gap, or that falls behind the cold phase
    /// extrapolation, is abandoned and the solve restarts cold
    /// ([`SolveStats::warm_gate`] records the decision).
    pub fn solve_warm_with_stats(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        ws: &mut SolverWorkspace,
        warm: Option<&WarmStart>,
    ) -> (ThroughputBounds, SolveStats, WarmStart) {
        crate::record_solver_invocation();
        let prob = FlowProblem::new(graph, tm);
        let (bounds, stats, _, warm_out) =
            phase::solve_problem(&self.config, graph, &prob, ws, false, warm, true);
        (bounds, stats, warm_out.unwrap_or_default())
    }

    /// Degradation-aware solve: drops demands whose endpoints are
    /// disconnected in `graph`, solves the surviving sub-TM, and reports a
    /// structured [`SolveStatus`](crate::SolveStatus) instead of collapsing
    /// the whole result to zero (the concurrent-flow definition forces
    /// `t = 0` whenever *any* pair is unreachable, which is useless for
    /// comparing degraded networks). An empty or fully-disconnected TM
    /// yields an exact zero result rather than a panic. Bounds are always
    /// finite and non-negative.
    pub fn solve_outcome_with(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        ws: &mut SolverWorkspace,
    ) -> SolveOutcome {
        let total = tm.num_flows();
        if total == 0 {
            return SolveOutcome {
                bounds: ThroughputBounds::exact(0.0),
                stats: SolveStats {
                    converged: true,
                    ..SolveStats::default()
                },
                status: crate::SolveStatus::Converged,
                certificate: crate::ThroughputCertificate::trivial_zero(),
            };
        }
        let (kept_tm, dropped) = crate::drop_disconnected_demands(graph, tm);
        if kept_tm.num_flows() == 0 {
            return SolveOutcome {
                bounds: ThroughputBounds::exact(0.0),
                stats: SolveStats {
                    converged: true,
                    ..SolveStats::default()
                },
                status: crate::SolveStatus::DisconnectedDemandsDropped { dropped, kept: 0 },
                certificate: crate::ThroughputCertificate::trivial_zero(),
            };
        }
        let (bounds, stats, cert) = if dropped == 0 {
            self.solve_with_certificate(graph, tm, ws, true)
        } else {
            self.solve_with_certificate(graph, &kept_tm, ws, true)
        };
        let status = if dropped > 0 {
            crate::SolveStatus::DisconnectedDemandsDropped {
                dropped,
                kept: total - dropped,
            }
        } else if stats.converged {
            crate::SolveStatus::Converged
        } else {
            crate::SolveStatus::BudgetExhausted
        };
        SolveOutcome {
            bounds,
            stats,
            status,
            certificate: cert.expect("certificate requested"),
        }
    }

    /// Like [`solve_outcome_with`](Self::solve_outcome_with) with a fresh
    /// workspace.
    pub fn solve_outcome(&self, graph: &Graph, tm: &TrafficMatrix) -> SolveOutcome {
        let mut ws = SolverWorkspace::new();
        self.solve_outcome_with(graph, tm, &mut ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;
    use tb_traffic::{Demand, TrafficMatrix};

    fn solver() -> FleischerSolver {
        FleischerSolver::new(FleischerConfig::precise())
    }

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn single_link_single_flow() {
        // One unit-capacity link, demand 1: throughput exactly 1.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!(b.lower <= b.upper + 1e-9);
        assert!((b.lower - 1.0).abs() < 0.03, "lower {}", b.lower);
        assert!((b.upper - 1.0).abs() < 0.03, "upper {}", b.upper);
    }

    #[test]
    fn path_graph_shared_bottleneck() {
        // Path 0-1-2, demands 0->2 and 1->2 of 1 each share link (1,2):
        // throughput 0.5.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 0.5).abs() < 0.02, "lower {}", b.lower);
        assert!(b.upper >= 0.5 - 1e-9);
        assert!(b.gap() < 0.05);
    }

    #[test]
    fn two_disjoint_paths_double_capacity() {
        // A 4-cycle gives two disjoint 2-hop paths between opposite corners:
        // demand 0->2 of 1 achieves throughput 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 2.0).abs() < 0.08, "lower {}", b.lower);
    }

    #[test]
    fn disconnected_demand_gives_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
    }

    #[test]
    fn outcome_drops_disconnected_demands() {
        // Two components: 0-1 and 2-3. One demand inside a component, one
        // across. The strict concurrent-flow answer is zero; the
        // degradation-aware path drops the unreachable pair and solves the
        // survivor.
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 1, 1.0), demand(0, 3, 1.0)]);
        let strict = solver().solve(&g, &tm);
        assert_eq!(strict.lower, 0.0);
        let out = solver().solve_outcome(&g, &tm);
        assert_eq!(
            out.status,
            crate::SolveStatus::DisconnectedDemandsDropped {
                dropped: 1,
                kept: 1
            }
        );
        assert!(out.status.is_degraded());
        assert!(out.bounds.lower > 0.5, "{:?}", out.bounds);
        assert!(out.bounds.lower <= out.bounds.upper + 1e-9);
    }

    #[test]
    fn outcome_with_all_demands_disconnected_is_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0), demand(1, 3, 1.0)]);
        let out = solver().solve_outcome(&g, &tm);
        assert_eq!(out.bounds, ThroughputBounds::exact(0.0));
        assert_eq!(
            out.status,
            crate::SolveStatus::DisconnectedDemandsDropped {
                dropped: 2,
                kept: 0
            }
        );
        assert_eq!(out.status.label(), "dropped-2-kept-0");
    }

    #[test]
    fn outcome_on_empty_tm_is_zero_not_panic() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, Vec::new());
        let out = solver().solve_outcome(&g, &tm);
        assert_eq!(out.bounds, ThroughputBounds::exact(0.0));
        assert_eq!(out.status, crate::SolveStatus::Converged);
        assert!(out.stats.converged);
    }

    #[test]
    fn outcome_converges_on_clean_instance() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let out = solver().solve_outcome(&g, &tm);
        assert_eq!(out.status, crate::SolveStatus::Converged);
        assert!(out.stats.converged);
        // Bit-identical to the plain entry point: the drop pass is a no-op
        // on connected instances.
        let plain = solver().solve(&g, &tm);
        assert_eq!(out.bounds.lower.to_bits(), plain.lower.to_bits());
        assert_eq!(out.bounds.upper.to_bits(), plain.upper.to_bits());
    }

    #[test]
    fn exhausted_phase_budget_reports_degraded_status() {
        // A zero phase budget leaves the bound gap wide open; the result
        // still carries valid best-so-far bounds (lower 0, the initial dual
        // certificate as upper).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 4]);
        let cfg = FleischerConfig {
            max_phases: 0,
            ..FleischerConfig::default()
        };
        let out = FleischerSolver::new(cfg).solve_outcome(&g, &tm);
        assert_eq!(out.status, crate::SolveStatus::BudgetExhausted);
        assert!(!out.stats.converged);
        assert_eq!(out.stats.phases, 0);
        assert!(out.bounds.lower >= 0.0 && out.bounds.upper.is_finite());
        assert!(out.bounds.lower <= out.bounds.upper + 1e-9);
    }

    #[test]
    fn zero_time_budget_stops_early_with_valid_bounds() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let cfg = FleischerConfig {
            time_budget_ms: Some(0),
            check_interval: 1,
            target_gap: 1e-12,
            ..FleischerConfig::default()
        };
        let out = FleischerSolver::new(cfg).solve_outcome(&g, &tm);
        assert_eq!(out.status, crate::SolveStatus::BudgetExhausted);
        assert_eq!(
            out.stats.phases, 1,
            "a zero budget stops at the first check"
        );
        assert!(out.bounds.upper.is_finite());
        assert!(out.bounds.lower <= out.bounds.upper + 1e-9);
    }

    #[test]
    fn outcome_certificate_verifies_independently() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let out = solver().solve_outcome(&g, &tm);
        assert_eq!(out.status, crate::SolveStatus::Converged);
        crate::verify_certificate(&g, &tm, &out.certificate, 0.01 + 1e-9)
            .expect("converged certificate must verify at the target gap");
        // The certificate's canonical bounds agree with the solver's claimed
        // bounds (different rounding paths, same mathematics).
        let b = out.bounds;
        assert!((out.certificate.lower - b.lower).abs() <= 1e-7 * b.lower.max(1.0));
        assert!((out.certificate.upper - b.upper).abs() <= 1e-7 * b.upper.max(1.0));
        // Certificate capture is trajectory-neutral: the certified outcome's
        // bounds are bit-identical to the plain solve.
        let plain = solver().solve(&g, &tm);
        assert_eq!(b.lower.to_bits(), plain.lower.to_bits());
        assert_eq!(b.upper.to_bits(), plain.upper.to_bits());
    }

    #[test]
    fn dropped_demand_certificate_covers_the_kept_sub_tm() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 1, 1.0), demand(0, 3, 1.0)]);
        let out = solver().solve_outcome(&g, &tm);
        assert!(out.status.is_degraded());
        let (kept_tm, dropped) = crate::drop_disconnected_demands(&g, &tm);
        assert_eq!(dropped, 1);
        crate::verify_certificate(&g, &kept_tm, &out.certificate, 0.01 + 1e-9)
            .expect("certificate must verify against the surviving sub-TM");
        // Against the full TM the dimensions no longer line up.
        assert!(crate::verify_certificate(&g, &tm, &out.certificate, f64::INFINITY).is_err());
    }

    #[test]
    fn budget_exhausted_certificate_still_verifies_with_open_gap() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 4]);
        let cfg = FleischerConfig {
            max_phases: 0,
            ..FleischerConfig::default()
        };
        let out = FleischerSolver::new(cfg).solve_outcome(&g, &tm);
        assert_eq!(out.status, crate::SolveStatus::BudgetExhausted);
        // The bounds are valid even though the budget ran out, so the
        // certificate verifies once the gap check is waived…
        crate::verify_certificate(&g, &tm, &out.certificate, f64::INFINITY).unwrap();
        // …but not at the target gap the solve failed to reach.
        assert!(matches!(
            crate::verify_certificate(&g, &tm, &out.certificate, 0.03),
            Err(crate::CertificateError::GapTooWide { .. })
        ));
    }

    #[test]
    fn empty_and_disconnected_outcomes_carry_trivial_certificates() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let empty = TrafficMatrix::new(2, Vec::new());
        let out = solver().solve_outcome(&g, &empty);
        crate::verify_certificate(&g, &empty, &out.certificate, 0.0).unwrap();
        let mut g2 = Graph::new(4);
        g2.add_unit_edge(0, 1);
        g2.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0), demand(1, 3, 1.0)]);
        let out = solver().solve_outcome(&g2, &tm);
        let (kept_tm, _) = crate::drop_disconnected_demands(&g2, &tm);
        assert_eq!(kept_tm.num_flows(), 0);
        crate::verify_certificate(&g2, &kept_tm, &out.certificate, 0.0).unwrap();
    }

    #[test]
    fn ring_all_to_all_symmetry() {
        // On a C4 with one server per switch, A2A throughput is the same from
        // every node; just check bounds are consistent and positive.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let servers = vec![1usize; 4];
        let tm = tb_traffic::synthetic::all_to_all(&servers);
        let b = solver().solve(&g, &tm);
        assert!(b.lower > 0.0);
        assert!(b.lower <= b.upper + 1e-9);
        assert!(b.gap() < 0.05, "gap {}", b.gap());
    }

    #[test]
    fn capacity_scaling_scales_throughput() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let b1 = solver().solve(&g, &tm);
        let g2 = g.scaled_capacities(3.0);
        let b3 = solver().solve(&g2, &tm);
        assert!(
            (b3.lower / b1.lower - 3.0).abs() < 0.1,
            "{} vs {}",
            b3.lower,
            b1.lower
        );
    }

    #[test]
    fn demand_scaling_inversely_scales_throughput() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let tm_half = tm.scaled(0.5);
        let b1 = solver().solve(&g, &tm);
        let b2 = solver().solve(&g, &tm_half);
        assert!((b2.lower / b1.lower - 2.0).abs() < 0.1);
    }

    #[test]
    fn star_graph_hose_limit() {
        // Star with 4 leaves, each leaf sends 1 unit to the next leaf
        // (a ring of demands): every leaf link carries 1 in and 1 out,
        // so throughput is 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let tm = TrafficMatrix::new(
            5,
            vec![
                demand(1, 2, 1.0),
                demand(2, 3, 1.0),
                demand(3, 4, 1.0),
                demand(4, 1, 1.0),
            ],
        );
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 1.0).abs() < 0.03, "lower {}", b.lower);
    }

    #[test]
    fn fast_config_still_brackets() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = FleischerSolver::new(FleischerConfig::fast()).solve(&g, &tm);
        assert!(b.lower <= 0.5 + 1e-9);
        assert!(b.upper >= 0.5 - 1e-9);
    }

    #[test]
    fn auto_aggregation_threshold_scales_with_graph_size() {
        // A quarter of the switch count, clamped to [8, default].
        let base = FleischerConfig::default();
        assert_eq!(base.with_auto_aggregation(16).aggregate_min_dests, Some(8));
        assert_eq!(base.with_auto_aggregation(64).aggregate_min_dests, Some(16));
        assert_eq!(
            base.with_auto_aggregation(4096).aggregate_min_dests,
            Some(DEFAULT_AGGREGATE_MIN_DESTS)
        );
        // Explicit settings — disabled, forced, or exactly the default value —
        // survive the auto-pick.
        for explicit in [usize::MAX, 2, DEFAULT_AGGREGATE_MIN_DESTS] {
            let cfg = FleischerConfig {
                aggregate_min_dests: Some(explicit),
                ..base
            };
            assert_eq!(
                cfg.with_auto_aggregation(64).aggregate_min_dests,
                Some(explicit)
            );
        }
    }

    #[test]
    fn auto_batching_engages_broadly_and_records_its_gate() {
        let base = FleischerConfig::default();
        let servers64 = vec![1usize; 64];
        let dense = tb_traffic::synthetic::all_to_all(&servers64);
        let sparse = tb_traffic::synthetic::random_permutation(&servers64, 1);
        // solver_jobs <= 1 keeps the serial trajectory, and says why.
        for jobs in [0, 1] {
            let cfg = base.with_auto_batching(&dense, jobs);
            assert_eq!(cfg.batch_size, None);
            assert_eq!(cfg.batch_gate, BatchGate::SerialJobs);
        }
        // jobs > 1 on a dense TM fills in the graph-size pick: n/2 in [4,64].
        let picked = base.with_auto_batching(&dense, 4);
        assert_eq!(picked.batch_size, Some(32));
        assert_eq!(picked.batch_gate, BatchGate::Engaged);
        assert_eq!(picked.pricing, PricingMode::Stealing);
        let dense16 = tb_traffic::synthetic::all_to_all(&[1usize; 16]);
        assert_eq!(base.with_auto_batching(&dense16, 4).batch_size, Some(8));
        // Sparse matching-style TMs now engage too — the stealing scheduler's
        // cached trees removed the ~30× fixed-rounds penalty that used to
        // gate them off.
        let sparse_cfg = base.with_auto_batching(&sparse, 8);
        assert_eq!(sparse_cfg.batch_size, Some(32));
        assert_eq!(sparse_cfg.batch_gate, BatchGate::Engaged);
        // Skewed-but-real TMs engage with the skew tuning: a 1000× outlier
        // on a 4032-flow A2A base carries ~20% of total volume — an order of
        // magnitude past the Facebook frontend max's ~1.6% share, still
        // inside the delta-function limit, but far past SKEW_TAIL_FACTOR ×
        // the mean. The pick shrinks the batch to a quarter (n/8 here) and
        // turns on the serial shard tail.
        let mut skewed_demands = dense.demands().to_vec();
        skewed_demands[0].amount *= 1000.0;
        let skewed = TrafficMatrix::new(64, skewed_demands);
        let skew_cfg = base.with_auto_batching(&skewed, 8);
        assert_eq!(skew_cfg.batch_gate, BatchGate::EngagedSkew);
        assert_eq!(skew_cfg.batch_size, Some(8));
        assert!(skew_cfg.steal_serial_tail);
        // The real Facebook TM-F shape (max/mean ≈ 64) takes the same path;
        // the uniform shapes above stay on the plain Engaged pick with
        // serial tails off (their multi-round merged drains are the win).
        let tmf = tb_traffic::facebook::tm_f(64, 7);
        assert_eq!(
            base.with_auto_batching(&tmf, 8).batch_gate,
            BatchGate::EngagedSkew
        );
        assert!(!picked.steal_serial_tail);
        assert!(!sparse_cfg.steal_serial_tail);
        // A delta-function TM (one demand carrying ~100% of total volume) is
        // still screened out: one commodity is the whole instance.
        let mut delta_demands = dense.demands().to_vec();
        delta_demands[0].amount *= 1e9;
        let delta = TrafficMatrix::new(64, delta_demands);
        let delta_cfg = base.with_auto_batching(&delta, 8);
        assert_eq!(delta_cfg.batch_size, None);
        assert_eq!(delta_cfg.batch_gate, BatchGate::ExtremeSkew);
        // Tiny TMs have nothing to shard.
        let tiny = TrafficMatrix::new(4, vec![demand(0, 1, 1.0), demand(2, 3, 1.0)]);
        let tiny_cfg = base.with_auto_batching(&tiny, 8);
        assert_eq!(tiny_cfg.batch_size, None);
        assert_eq!(tiny_cfg.batch_gate, BatchGate::FewFlows);
        // Explicit sizes survive, including Some(1) = forced serial.
        for explicit in [1usize, 2, 16] {
            let cfg = FleischerConfig {
                batch_size: Some(explicit),
                ..base
            };
            let out = cfg.with_auto_batching(&sparse, 8);
            assert_eq!(out.batch_size, Some(explicit));
            assert_eq!(out.batch_gate, BatchGate::Explicit);
        }
    }

    #[test]
    fn auto_steal_chunk_scales_with_graph_size() {
        assert_eq!(auto_steal_chunk(16), 8);
        assert_eq!(auto_steal_chunk(64), 32);
        assert_eq!(auto_steal_chunk(128), 64);
        assert_eq!(auto_steal_chunk(4096), 64);
    }

    #[test]
    fn aggregated_ring_a2a_matches_per_destination_walk() {
        // Small dense instance driven through both routing kernels: when no
        // capacity binds within a tree iteration the two are arithmetically
        // identical, so the bounds must agree to the last bit here.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let servers = vec![1usize; 6];
        let tm = tb_traffic::synthetic::all_to_all(&servers);
        let agg = FleischerSolver::new(FleischerConfig {
            aggregate_min_dests: Some(2),
            ..FleischerConfig::precise()
        })
        .solve(&g, &tm);
        let walk = FleischerSolver::new(FleischerConfig {
            aggregate_min_dests: Some(usize::MAX),
            ..FleischerConfig::precise()
        })
        .solve(&g, &tm);
        assert!(agg.lower > 0.0);
        assert!(
            (agg.lower - walk.lower).abs() <= 1e-12 * walk.lower
                && (agg.upper - walk.upper).abs() <= 1e-12 * walk.upper,
            "aggregated {agg:?} vs per-destination {walk:?}"
        );
    }

    #[test]
    fn explicit_serial_batch_matches_default_bit_for_bit() {
        // `batch_size: Some(1)` must take exactly the default (unset) code
        // path — the serial trajectory is one implementation, not two.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let base = FleischerConfig::precise();
        let a = FleischerSolver::new(base).solve(&g, &tm);
        let b = FleischerSolver::new(FleischerConfig {
            batch_size: Some(1),
            ..base
        })
        .solve(&g, &tm);
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }

    #[test]
    fn batched_solve_brackets_and_reports_stats() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let cfg = FleischerConfig {
            batch_size: Some(3),
            aggregate_min_dests: Some(2),
            ..FleischerConfig::precise()
        };
        let mut ws = SolverWorkspace::new();
        let (b, stats) = FleischerSolver::new(cfg).solve_with_stats(&g, &tm, &mut ws);
        // The batched trajectory must still bracket the exact optimum.
        let exact = crate::ExactLpSolver::new().solve(&g, &tm).unwrap().lower;
        assert!(
            b.lower <= exact * (1.0 + 1e-9) && exact <= b.upper * (1.0 + 1e-9),
            "batched {b:?} does not bracket exact {exact}"
        );
        assert!(b.gap() < 0.05, "gap {}", b.gap());
        assert_eq!(stats.batch_size, 3);
        assert!(stats.phases >= 1);
        assert!(stats.epochs >= 1, "batched solve must run epochs");
        assert!(stats.serial_estimate >= 1);
        assert!(stats.guard_limit >= 1);
    }

    #[test]
    fn convergence_guard_degenerates_to_serial() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        // A sub-1 guard factor caps the batched phase budget at
        // ceil(guard_factor × estimate) — with 1e-9 that is one phase, so the
        // guard must fire right after the serial yardstick phase and the
        // remainder runs serially (epochs stay at 0).
        let cfg = FleischerConfig {
            batch_size: Some(3),
            guard_factor: 1e-9,
            ..FleischerConfig::precise()
        };
        let mut ws = SolverWorkspace::new();
        let (b, stats) = FleischerSolver::new(cfg).solve_with_stats(&g, &tm, &mut ws);
        assert!(stats.guard_triggered, "{stats:?}");
        assert_eq!(stats.epochs, 0, "no batched epoch may run: {stats:?}");
        assert!(b.lower > 0.0 && b.gap() < 0.05, "{b:?}");
    }

    #[test]
    fn warm_entry_point_cold_start_is_bit_identical() {
        // With no warm start supplied, solve_warm_with_stats must reproduce
        // the plain solve bit for bit (the extraction is read-only).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let s = solver();
        let mut ws = SolverWorkspace::new();
        let (plain, plain_stats) = s.solve_with_stats(&g, &tm, &mut ws);
        let mut ws2 = SolverWorkspace::new();
        let (cold, cold_stats, warm_out) = s.solve_warm_with_stats(&g, &tm, &mut ws2, None);
        assert_eq!(plain.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(plain.upper.to_bits(), cold.upper.to_bits());
        assert_eq!(plain_stats, cold_stats);
        assert_eq!(cold_stats.warm_gate, WarmGate::Unset);
        assert_eq!(cold_stats.warm_phases_discarded, 0);
        // The extracted artifact is usable and carries the dual bound.
        assert!(warm_out.is_usable());
        assert_eq!(warm_out.lens.len(), 2 * g.num_edges());
        assert!((warm_out.dual_bound - cold.upper).abs() <= 1e-12 * cold.upper);
    }

    #[test]
    fn warm_chain_keeps_quality_and_engages() {
        // Solve, re-solve the same instance warm-seeded: the warm solve must
        // engage without projection and keep the bounds inside the target
        // gap around the cold answer.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let s = solver();
        let mut ws = SolverWorkspace::new();
        let (cold, _, seed) = s.solve_warm_with_stats(&g, &tm, &mut ws, None);
        let (warm, warm_stats, next) = s.solve_warm_with_stats(&g, &tm, &mut ws, Some(&seed));
        assert!(matches!(
            warm_stats.warm_gate,
            WarmGate::Engaged | WarmGate::ResetLagging | WarmGate::ResetQuality
        ));
        assert!(warm_stats.converged);
        // Same instance, same accuracy contract: the intervals overlap and
        // both meet the configured gap.
        assert!(warm.lower <= cold.upper * (1.0 + 1e-9));
        assert!(cold.lower <= warm.upper * (1.0 + 1e-9));
        assert!(warm.gap() <= FleischerConfig::precise().target_gap + 1e-12);
        assert!(next.is_usable());
    }

    #[test]
    fn warm_chain_projects_across_instance_sizes() {
        // Chain a 6-ring solve into an 8-ring solve: different arc counts,
        // so engagement must go through the projection path (or reset cold) —
        // and the bounds must stay correct either way.
        let g6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm6 = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let g8 = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let tm8 = tb_traffic::synthetic::all_to_all(&[1usize; 8]);
        let s = solver();
        let mut ws = SolverWorkspace::new();
        let (_, _, seed) = s.solve_warm_with_stats(&g6, &tm6, &mut ws, None);
        let (warm, warm_stats, _) = s.solve_warm_with_stats(&g8, &tm8, &mut ws, Some(&seed));
        assert!(matches!(
            warm_stats.warm_gate,
            WarmGate::EngagedProjected | WarmGate::ResetLagging | WarmGate::ResetQuality
        ));
        let (cold, _) = s.solve_with_stats(&g8, &tm8, &mut SolverWorkspace::new());
        assert!(warm_stats.converged);
        assert!(warm.lower <= cold.upper * (1.0 + 1e-9));
        assert!(cold.lower <= warm.upper * (1.0 + 1e-9));
    }

    #[test]
    fn poisoned_warm_start_resets_to_cold_and_reports_it() {
        // The gate-degrade drill: a warm guard factor of ~0 makes the warm
        // budget one phase, so any engaged warm trajectory that needs more
        // than one phase must reset to cold — and the final bounds must be
        // bit-identical to a never-warmed solve (the restart is a clean cold
        // attempt, not a salvage).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tm = tb_traffic::synthetic::all_to_all(&[1usize; 6]);
        let cfg = FleischerConfig {
            warm_guard_factor: Some(1e-9),
            ..FleischerConfig::precise()
        };
        let s = FleischerSolver::new(cfg);
        let mut ws = SolverWorkspace::new();
        let (cold, cold_stats, seed) = s.solve_warm_with_stats(&g, &tm, &mut ws, None);
        assert!(cold_stats.phases > 1, "need a multi-phase instance");
        let (warm, warm_stats, _) = s.solve_warm_with_stats(&g, &tm, &mut ws, Some(&seed));
        assert_eq!(
            warm_stats.warm_gate,
            WarmGate::ResetLagging,
            "{warm_stats:?}"
        );
        assert!(warm_stats.warm_phases_discarded >= 1);
        assert_eq!(warm.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(warm.upper.to_bits(), cold.upper.to_bits());
        // The honest phase total includes the discarded warm phases.
        assert_eq!(
            warm_stats.phases,
            cold_stats.phases + warm_stats.warm_phases_discarded
        );
    }

    #[test]
    fn unusable_warm_shape_is_rejected_not_crashed() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let s = solver();
        let mut ws = SolverWorkspace::new();
        let (cold, _) = s.solve_with_stats(&g, &tm, &mut SolverWorkspace::new());
        for bad in [
            WarmStart::default(),
            WarmStart {
                lens: vec![f64::NAN; 4],
                dual_bound: 1.0,
                epsilon: 0.03,
                phases: 8,
            },
            WarmStart {
                lens: vec![0.0; 4],
                dual_bound: 1.0,
                epsilon: 0.03,
                phases: 8,
            },
        ] {
            let (b, stats, _) = s.solve_warm_with_stats(&g, &tm, &mut ws, Some(&bad));
            assert_eq!(stats.warm_gate, WarmGate::RejectedShape, "{bad:?}");
            assert_eq!(b.lower.to_bits(), cold.lower.to_bits());
            assert_eq!(b.upper.to_bits(), cold.upper.to_bits());
        }
    }

    #[test]
    fn warm_solve_on_trivial_instances_returns_empty_artifact() {
        let s = solver();
        let mut ws = SolverWorkspace::new();
        // Disconnected demand: trivial zero, empty warm artifact.
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0)]);
        let seed = WarmStart {
            lens: vec![1.0; 4],
            dual_bound: 1.0,
            epsilon: 0.03,
            phases: 8,
        };
        let (b, stats, warm_out) = s.solve_warm_with_stats(&g, &tm, &mut ws, Some(&seed));
        assert_eq!(b, ThroughputBounds::exact(0.0));
        assert!(stats.converged);
        assert!(!warm_out.is_usable());
    }

    #[test]
    fn reused_workspace_matches_fresh_solves() {
        // A single workspace driven across different graphs and TMs (of
        // different sizes, in both directions) must reproduce fresh-workspace
        // results bit-for-bit — including with batching on.
        let g1 = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm1 = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let g2 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let servers = vec![1usize; 4];
        let tm2 = tb_traffic::synthetic::all_to_all(&servers);
        for batch in [None, Some(2)] {
            let s = FleischerSolver::new(FleischerConfig {
                batch_size: batch,
                ..FleischerConfig::precise()
            });
            let fresh1 = s.solve(&g1, &tm1);
            let fresh2 = s.solve(&g2, &tm2);
            let mut ws = SolverWorkspace::new();
            for _ in 0..3 {
                let b1 = s.solve_with(&g1, &tm1, &mut ws);
                assert_eq!(b1.lower, fresh1.lower);
                assert_eq!(b1.upper, fresh1.upper);
                let b2 = s.solve_with(&g2, &tm2, &mut ws);
                assert_eq!(b2.lower, fresh2.lower);
                assert_eq!(b2.upper, fresh2.upper);
            }
        }
    }
}
