//! The per-source routing kernels.
//!
//! Three kernels serve the three TM shapes (see the module docs on
//! [`super`]): the goal-directed single-destination search, the
//! per-destination parent walk, and the aggregated bottom-up tree fold for
//! dense destination sets. Each exists in two forms:
//!
//! * the **serial in-place** form ([`route_source_walk`],
//!   [`route_source_tree`]) — routes a source's full demand, updating lengths
//!   through [`merge::apply_update`] between capacity-limited tree
//!   iterations. This is the classical Fleischer trajectory; the default
//!   (`batch_size` unset) solve runs exclusively through it, bit-identical to
//!   the pre-split solver.
//! * the **snapshot** form ([`route_source_snapshot`]) — prices one tree
//!   against a frozen [`LengthSnapshot`] and returns the arc loads the
//!   source's remaining demands would place, touching no shared state. The
//!   batch-parallel epochs fan these out across workers; capacity handling
//!   moves to the deterministic merge ([`merge::EpochMerge`]).
//!
//! Tree computation ([`compute_tree`]) and the goal-direction potential
//! refresh ([`refresh_potentials`]) are shared by both forms and by the dual
//! bound evaluation in [`super::phase`].

use super::merge;
use super::PAR_MIN_SWEEP_WORK;
use crate::instance::FlowProblem;
use crate::lengths::{ArcLengths, LengthSnapshot, MwuLengths};
use rayon::prelude::*;
use tb_graph::{sssp_csr, sssp_csr_goal, SsspPool, SsspWorkspace};

/// Per-arc routing state, interleaved so the walk/update loops touch one
/// cache line per arc instead of separate parallel arrays. Lengths
/// deliberately stay in the dense `MwuLengths` vector: the SSSP relax loop
/// reads *every* arc's length and wants 8 of them per cache line, while only
/// routed-path arcs touch this struct.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct RouteState {
    /// Capacity still available within the current tree iteration.
    pub avail: f64,
    /// Flow placed within the current tree iteration.
    pub used: f64,
    /// Arc capacity.
    pub cap: f64,
}

/// The read-only per-solve context shared by every routing kernel: the
/// instance, the demand tables, and the goal-direction bookkeeping. One
/// instance is built per solve and borrowed everywhere, keeping kernel
/// signatures at "context + what this call mutates".
pub(super) struct RouteCtx<'a> {
    pub prob: &'a FlowProblem,
    /// Pre-scaled demands per source (mirrors `prob.sources()` order).
    pub demands: &'a [Vec<f64>],
    /// Destination node list per source, for early-exit SSSP.
    pub targets: &'a [Vec<usize>],
    /// The destination of each single-destination source.
    pub single_dest: &'a [Option<usize>],
    /// Potential row index per source (`usize::MAX` for multi-dest sources).
    pub pot_rows: &'a [usize],
    /// Number of single-destination sources (= potential rows).
    pub num_single: usize,
    /// Whether goal-directed routing is active for this solve.
    pub goal_enabled: bool,
    /// Destination-count threshold for the aggregated tree kernel.
    pub agg_min_dests: usize,
    /// Tree-reuse slack of the serial kernels (`1 + eps/4`).
    pub reuse_slack: f64,
}

/// The mutable solver state threaded through the serial kernels: lengths,
/// per-arc routing state, accumulated flow, and the scratch buffers. All
/// fields borrow distinct pieces of the [`super::SolverWorkspace`] (or
/// per-solve locals), so the kernels can hold several at once.
pub(super) struct SerialState<'a> {
    pub mwu: &'a mut MwuLengths,
    pub st: &'a mut [RouteState],
    pub flow_arc: &'a mut [f64],
    pub remaining: &'a mut Vec<f64>,
    pub touched: &'a mut Vec<usize>,
    pub path: &'a mut Vec<usize>,
    pub subtree: &'a mut [f64],
    pub cur_len: &'a mut [f64],
    pub sssp: &'a mut SsspWorkspace,
}

/// Process-cumulative counters behind `TB_SOLVER_TRACE` (diagnostics only;
/// relaxed increments cost nothing measurable on the hot path). Each solve
/// snapshots them on entry and prints the per-solve delta; concurrent solves
/// in one process can still bleed counts into each other's deltas, which the
/// single-threaded tuning workflow the trace exists for never does.
pub(super) static TREE_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
pub(super) static POT_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Computes the routing tree for source `si` at the lengths `len`: the
/// goal-directed kernel when the source has one destination and a finite
/// potential row, the early-exit Dijkstra otherwise. Read-only over `len`,
/// so both the serial kernels (current lengths) and the snapshot kernels
/// (epoch snapshot) drive it.
pub(super) fn compute_tree(
    ctx: &RouteCtx<'_>,
    si: usize,
    potentials: &[f64],
    len: &[f64],
    sssp: &mut SsspWorkspace,
) {
    let n = ctx.prob.num_nodes();
    let s = &ctx.prob.sources()[si];
    TREE_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if let (true, Some(dst)) = (ctx.goal_enabled, ctx.single_dest[si]) {
        let row = &potentials[ctx.pot_rows[si] * n..(ctx.pot_rows[si] + 1) * n];
        sssp_csr_goal(ctx.prob.csr(), s.src, len, dst, row, sssp);
    } else {
        // Target bookkeeping only pays when the destination set is a small
        // fraction of the graph; dense sets (all-to-all) settle everything
        // anyway.
        let ts = &ctx.targets[si];
        let early = if ts.len() * 2 < n {
            Some(ts.as_slice())
        } else {
            None
        };
        sssp_csr(ctx.prob.csr(), s.src, len, early, sssp);
    }
}

/// Refreshes the goal-direction potential rows: one full reverse SSSP per
/// single-destination source's target, against the partner-arc length view.
/// Row values are exact reverse distances at refresh time and remain
/// consistent (admissible) as lengths grow. Fans out to the pool for large
/// instances, each worker leasing an SSSP workspace from `pool`; row contents
/// do not depend on the thread count.
pub(super) fn refresh_potentials(
    ctx: &RouteCtx<'_>,
    len: &[f64],
    rev_lens: &mut Vec<f64>,
    potentials: &mut [f64],
    sssp: &mut SsspWorkspace,
    pool: &SsspPool,
) {
    let n = ctx.prob.num_nodes();
    let m = ctx.prob.num_arcs();
    POT_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    // Reverse view: arcs are created in (forward, backward) pairs, so the
    // partner of arc `aid` is `aid ^ 1` and reverse-graph distances are plain
    // distances under the partner's length.
    rev_lens.clear();
    debug_assert!(
        (0..m).step_by(2).all(|aid| {
            let (f, b) = (ctx.prob.arcs()[aid], ctx.prob.arcs()[aid ^ 1]);
            f.from == b.to && f.to == b.from
        }),
        "FlowProblem arcs must come in (forward, backward) pairs for the partner view"
    );
    rev_lens.extend((0..m).map(|aid| len[aid ^ 1]));
    let rev: &[f64] = rev_lens;
    // Rows are handed out in source order; a source's row index from
    // `pot_rows` matches its position in this filtered sequence.
    let jobs: Vec<(&mut [f64], usize)> = potentials
        .chunks_mut(n)
        .zip(ctx.single_dest.iter().filter(|d| d.is_some()))
        .map(|(row, d)| (row, d.expect("filtered to Some")))
        .collect();
    debug_assert_eq!(jobs.len(), ctx.num_single);
    debug_assert!(ctx.pot_rows.iter().filter(|&&r| r != usize::MAX).count() == ctx.num_single);
    if ctx.num_single * m >= PAR_MIN_SWEEP_WORK && rayon::current_num_threads() > 1 {
        let _: Vec<()> = jobs
            .into_par_iter()
            .map_init(
                || pool.lease(),
                |sw, (row, dst)| {
                    sssp_csr(ctx.prob.csr(), dst, rev, None, sw);
                    for (v, slot) in row.iter_mut().enumerate() {
                        *slot = sw.dist(v);
                    }
                },
            )
            .collect();
    } else {
        for (row, dst) in jobs {
            sssp_csr(ctx.prob.csr(), dst, rev, None, sssp);
            for (v, slot) in row.iter_mut().enumerate() {
                *slot = sssp.dist(v);
            }
        }
    }
}

/// Serial in-place routing of one sparse source (per-destination parent walk
/// with optimistic single-pass application and tree reuse under the staleness
/// slack — the classical trajectory). The tree for the source must already be
/// in `state.sssp`; `state.remaining` must hold the source's remaining
/// demands. `exact_entry` says whether that tree was computed at the current
/// lengths (the phase scheduler always passes `true`; the work-stealing
/// scheduler's single-active fast path hands over a cached tree and passes
/// its slot's exactness, so the first pass re-checks the slack). Returns
/// `false` when `D(l)` saturated mid-source (the caller breaks the phase
/// loop).
pub(super) fn route_source_walk(
    ctx: &RouteCtx<'_>,
    si: usize,
    potentials: &[f64],
    state: &mut SerialState<'_>,
    routed_si: &mut [f64],
    exact_entry: bool,
) -> bool {
    let s = &ctx.prob.sources()[si];
    let mut tree_exact = exact_entry;
    loop {
        if state.mwu.saturated() {
            return false;
        }
        // Route every destination with remaining demand along the tree, never
        // exceeding any arc's full capacity within this single tree iteration
        // (so each length update factor stays <= 1 + eps).
        let mut progressed = false;
        let mut need_fresh = false;
        {
            let len = state.mwu.lens();
            for (j, &(dst, _)) in s.dests.iter().enumerate() {
                if state.remaining[j] <= 1e-15 {
                    continue;
                }
                if dst == s.src {
                    // A self-demand consumes no capacity.
                    routed_si[j] += state.remaining[j];
                    state.remaining[j] = 0.0;
                    progressed = true;
                    continue;
                }
                let tree_dist = state.sssp.dist(dst);
                debug_assert!(tree_dist.is_finite());
                // Optimistic single-pass walk: apply the full remaining
                // demand while chasing parents (recording the arc ids),
                // tracking the bottleneck as it was *before* this
                // application. If the bottleneck turns out to bind — rare,
                // demands are small against capacities — a linear corrective
                // pass over the recorded arcs removes the excess, so the
                // committed amounts equal the classic
                // `min(remaining, bottleneck)` exactly.
                state.path.clear();
                let f0 = state.remaining[j];
                let mut path_len = 0.0;
                let mut bottleneck = f64::INFINITY;
                let mut cur = dst;
                while cur != s.src {
                    let (p, aid) = state.sssp.parent_unchecked(cur);
                    state.path.push(aid);
                    if !tree_exact {
                        path_len += len[aid];
                    }
                    let a = &mut state.st[aid];
                    if a.used == 0.0 {
                        state.touched.push(aid);
                    }
                    bottleneck = bottleneck.min(a.avail);
                    a.avail -= f0;
                    a.used += f0;
                    cur = p;
                }
                // Reuse rule: `tree_dist` lower-bounds the current shortest
                // distance (lengths are monotone), so within the slack this
                // path is approximately shortest. Past it, undo this
                // application and recompute. Exact (just-computed) trees skip
                // the check — float noise must not re-trigger it.
                if !tree_exact && path_len > ctx.reuse_slack * tree_dist {
                    for &aid in state.path.iter() {
                        let a = &mut state.st[aid];
                        a.avail += f0;
                        a.used -= f0;
                    }
                    need_fresh = true;
                    break;
                }
                let f = f0.min(bottleneck);
                // Commit `min(remaining, bottleneck)` exactly as the classic
                // two-pass scheme would; negligible amounts are rolled back
                // entirely. Stray `touched` entries left with zero `used` are
                // benign in the update loop below.
                let commit = if f > 1e-15 { f } else { 0.0 };
                if commit < f0 {
                    let excess = f0 - commit;
                    for &aid in state.path.iter() {
                        let a = &mut state.st[aid];
                        a.avail += excess;
                        a.used -= excess;
                    }
                }
                if commit == 0.0 {
                    continue;
                }
                state.remaining[j] -= commit;
                routed_si[j] += commit;
                progressed = true;
            }
        }
        // Apply multiplicative length updates for the arcs used in this tree
        // iteration and restore the scratch buffers.
        for &aid in state.touched.iter() {
            merge::apply_update(state.mwu, state.flow_arc, aid, state.st[aid].used);
            let a = &mut state.st[aid];
            a.used = 0.0;
            a.avail = a.cap;
        }
        state.touched.clear();
        if need_fresh {
            compute_tree(ctx, si, potentials, state.mwu.lens(), state.sssp);
            tree_exact = true;
            continue;
        }
        if !progressed || state.remaining.iter().all(|&r| r <= 1e-15) {
            return true;
        }
        // Routing moved the lengths; the tree must pass the staleness check
        // before further reuse.
        tree_exact = false;
    }
}

/// Serial in-place routing of one dense source (aggregated bottom-up tree):
/// instead of chasing parents once per destination (O(sum of path lengths)
/// per tree iteration), fold each node's remaining subtree demand over the
/// settle order in reverse and load every tree arc exactly once. When some
/// arc's aggregate load exceeds its capacity, the whole batch is scaled by
/// the binding `cap/load` ratio and the loop repeats, so no arc exceeds its
/// capacity within one tree iteration and every length-update factor stays
/// <= 1 + eps — the same invariant the per-destination walk maintains.
/// (Persisting these trees across phases behind cheap revalidation was tried
/// and reverted: a phase's average arc utilization is ~1, so lengths drift
/// enough per phase that any slack loose enough to admit reuse measurably
/// slowed the multiplicative-weights convergence — the same trade the
/// phase-blocked stale-tree experiment hit. The batch-parallel epochs stay
/// inside a phase for exactly that reason; see the module docs.)
/// Returns `false` when `D(l)` saturated mid-source.
pub(super) fn route_source_tree(
    ctx: &RouteCtx<'_>,
    si: usize,
    potentials: &[f64],
    state: &mut SerialState<'_>,
    routed_si: &mut [f64],
) -> bool {
    let s = &ctx.prob.sources()[si];
    // The caller guarantees the tree in `state.sssp` is within the reuse
    // slack at the current lengths (freshly computed, or a cached tree that
    // passed the staleness check); the first batch may route on a
    // within-slack tree exactly as any revalidated iteration would, and the
    // apply pass rebuilds `cur_len` top-down before the next check needs it.
    let mut revalidate = false;
    loop {
        if state.mwu.saturated() {
            return false;
        }
        if revalidate {
            // Reuse rule, tree-wide: the previous batch's apply pass left
            // every settled node's *current* tree-path length in `cur_len`
            // (maintained top-down for free while loading arcs); recompute
            // the tree once any destination with remaining demand drifts
            // past the slack. Recorded distances lower-bound current ones
            // (lengths are monotone), so within the slack the tree paths
            // remain approximately shortest — exactly the per-destination
            // reuse argument.
            let stale = s.dests.iter().enumerate().any(|(j, &(dst, _))| {
                state.remaining[j] > 1e-15
                    && state.cur_len[dst] > ctx.reuse_slack * state.sssp.dist(dst)
            });
            if stale {
                compute_tree(ctx, si, potentials, state.mwu.lens(), state.sssp);
            }
        }
        // Deposit remaining demands at their destinations.
        for &v in state.sssp.settle_order() {
            state.subtree[v as usize] = 0.0;
        }
        let mut pending = false;
        for (j, &(dst, _)) in s.dests.iter().enumerate() {
            if state.remaining[j] <= 1e-15 {
                continue;
            }
            if dst == s.src {
                // A self-demand consumes no capacity.
                routed_si[j] += state.remaining[j];
                state.remaining[j] = 0.0;
            } else {
                // Every destination is a target of the tree computation, so
                // it is always settled (early exit stops only after the last
                // target).
                debug_assert!(state.sssp.dist(dst).is_finite());
                state.subtree[dst] += state.remaining[j];
                pending = true;
            }
        }
        if !pending {
            return true;
        }
        // Bottom-up fold: children settle after their parent, so the reverse
        // settle order visits them first and `subtree[v]` is complete — the
        // total remaining demand crossing v's parent arc — when v is visited.
        // Only arcs whose load exceeds capacity can bind, so the `cap/load`
        // divide is confined to them.
        let mut ratio = f64::INFINITY;
        for &v in state.sssp.settle_order().iter().rev() {
            let v = v as usize;
            if v == s.src {
                continue;
            }
            let load = state.subtree[v];
            if load <= 0.0 {
                continue;
            }
            let (p, aid) = state.sssp.parent_unchecked(v);
            state.subtree[p] += load;
            let cap = state.st[aid].cap;
            if load > cap {
                ratio = ratio.min(cap / load);
            }
        }
        let theta = ratio.min(1.0);
        // Apply the (scaled) batch — each tree arc is loaded exactly once,
        // with at most its full capacity — and refresh `cur_len` (the current
        // tree-path lengths) in the same top-down pass, so the next
        // iteration's staleness check needs no extra walk.
        for &v in state.sssp.settle_order() {
            let v = v as usize;
            if v == s.src {
                state.cur_len[v] = 0.0;
                continue;
            }
            let (p, aid) = state.sssp.parent_unchecked(v);
            let load = state.subtree[v];
            if load > 0.0 {
                merge::apply_update(state.mwu, state.flow_arc, aid, theta * load);
            }
            state.cur_len[v] = state.cur_len[p] + state.mwu.len_of(aid);
        }
        for (j, r) in state.remaining.iter_mut().enumerate() {
            if *r > 1e-15 {
                let commit = theta * *r;
                routed_si[j] += commit;
                *r -= commit;
            }
        }
        if theta == 1.0 {
            return true; // every remaining demand fully routed
        }
        // A capacity-limited batch saturated the binding arc (its length grew
        // by the full 1 + eps factor); revalidate the tree before further
        // reuse.
        revalidate = true;
    }
}

/// Per-worker scratch for the snapshot routing kernel: an SSSP workspace,
/// the subtree fold buffer, and the dense per-arc accumulator of the walk
/// form. The batch-parallel pricing fan-out leases one per worker from the
/// solver workspace's pool, so repeated shards allocate nothing.
#[derive(Debug, Default)]
pub(super) struct RouteScratch {
    pub(super) sssp: SsspWorkspace,
    pub(super) subtree: Vec<f64>,
    pub(super) arc_load: Vec<f64>,
}

/// Snapshot routing of one source: prices the source's tree against the
/// frozen shard snapshot and returns the `(arc id, load)` list its remaining
/// demands would place — **read-only** over all shared state, so any number
/// of sources can run concurrently against the same snapshot. Capacity
/// handling (the `theta` rescale) happens in the deterministic merge.
///
/// Every arc appears **at most once** in the returned list, carrying the
/// source's full aggregate load on it — the contract
/// [`merge::EpochMerge::accumulate_capped`]'s per-source self-cap
/// `θ_k = min(1, min_a cap_a/u_{k,a})` depends on (the aggregated fold
/// yields it naturally; the walk form folds destinations sharing path arcs
/// through a dense accumulator first).
///
/// Self-demands (`dst == src`) are the caller's job (the scheduler commits
/// them when the shard is formed — they consume no capacity), and entries are
/// appended in a canonical order (reverse settle order for the aggregated
/// fold, first-touch order over the fixed destination-then-path walk
/// otherwise), so the merge's accumulation order — and with it every
/// downstream float — is a pure function of the shard, not of worker
/// scheduling.
pub(super) fn route_source_snapshot(
    ctx: &RouteCtx<'_>,
    si: usize,
    potentials: &[f64],
    snap: LengthSnapshot<'_>,
    remaining: &[f64],
    scratch: &mut RouteScratch,
) -> Vec<(u32, f64)> {
    let s = &ctx.prob.sources()[si];
    let n = ctx.prob.num_nodes();
    compute_tree(ctx, si, potentials, snap.as_slice(), &mut scratch.sssp);
    let mut loads: Vec<(u32, f64)> = Vec::new();
    if s.dests.len() >= ctx.agg_min_dests {
        // Aggregated bottom-up fold over the settle order, as in the serial
        // tree kernel, but recording loads instead of applying them. Each
        // tree arc is visited exactly once, with its full subtree aggregate.
        if scratch.subtree.len() < n {
            scratch.subtree.resize(n, 0.0);
        }
        for &v in scratch.sssp.settle_order() {
            scratch.subtree[v as usize] = 0.0;
        }
        let mut pending = false;
        for (j, &(dst, _)) in s.dests.iter().enumerate() {
            if remaining[j] <= 1e-15 || dst == s.src {
                continue;
            }
            debug_assert!(scratch.sssp.dist(dst).is_finite());
            scratch.subtree[dst] += remaining[j];
            pending = true;
        }
        if pending {
            for &v in scratch.sssp.settle_order().iter().rev() {
                let v = v as usize;
                if v == s.src {
                    continue;
                }
                let load = scratch.subtree[v];
                if load <= 0.0 {
                    continue;
                }
                let (p, aid) = scratch.sssp.parent_unchecked(v);
                scratch.subtree[p] += load;
                loads.push((aid as u32, load));
            }
        }
    } else {
        // Per-destination parent walk, load-recording form. Destinations of
        // one source share path arcs near it, so the walk folds into a dense
        // per-arc accumulator first — emitting one entry per arc keeps the
        // self-cap honest (per-entry loads would under-read the aggregate).
        let m = ctx.prob.num_arcs();
        if scratch.arc_load.len() < m {
            scratch.arc_load.resize(m, 0.0);
        }
        for (j, &(dst, _)) in s.dests.iter().enumerate() {
            let r = remaining[j];
            if r <= 1e-15 || dst == s.src {
                continue;
            }
            debug_assert!(scratch.sssp.dist(dst).is_finite());
            let mut cur = dst;
            while cur != s.src {
                let (p, aid) = scratch.sssp.parent_unchecked(cur);
                if scratch.arc_load[aid] == 0.0 {
                    loads.push((aid as u32, 0.0));
                }
                scratch.arc_load[aid] += r;
                cur = p;
            }
        }
        for (aid, load) in loads.iter_mut() {
            *load = scratch.arc_load[*aid as usize];
            scratch.arc_load[*aid as usize] = 0.0;
        }
    }
    loads
}

/// Chunk pricing over a **cached** tree: the aggregated bottom-up fold of
/// [`route_source_snapshot`], restricted to the destination range `lo..hi`
/// of source `si` and driven by a shared (read-only) tree slot instead of a
/// freshly computed one — the work-stealing scheduler's dense-source task.
/// Several chunks of one source price concurrently against the same tree;
/// each returns its own one-entry-per-arc load list, so the merge self-caps
/// each chunk exactly as it self-caps a whole source (the per-chunk
/// step-size argument in [`merge`]). Entries appear in reverse settle order,
/// a pure function of (tree, chunk) — never of worker scheduling.
#[allow(clippy::too_many_arguments)]
pub(super) fn price_chunk_snapshot(
    ctx: &RouteCtx<'_>,
    si: usize,
    lo: usize,
    hi: usize,
    remaining: &[f64],
    sssp: &SsspWorkspace,
    subtree: &mut Vec<f64>,
    loads: &mut Vec<(u32, f64)>,
) {
    let s = &ctx.prob.sources()[si];
    let n = ctx.prob.num_nodes();
    if subtree.len() < n {
        subtree.resize(n, 0.0);
    }
    for &v in sssp.settle_order() {
        subtree[v as usize] = 0.0;
    }
    let mut pending = false;
    for (&(dst, _), &rem) in s.dests[lo..hi].iter().zip(&remaining[lo..hi]) {
        if rem <= 1e-15 || dst == s.src {
            continue;
        }
        debug_assert!(sssp.dist(dst).is_finite());
        subtree[dst] += rem;
        pending = true;
    }
    loads.clear();
    if pending {
        for &v in sssp.settle_order().iter().rev() {
            let v = v as usize;
            if v == s.src {
                continue;
            }
            let load = subtree[v];
            if load <= 0.0 {
                continue;
            }
            let (p, aid) = sssp.parent_unchecked(v);
            subtree[p] += load;
            loads.push((aid as u32, load));
        }
    }
}

/// Walk pricing over a **cached** tree with inline staleness repair: the
/// per-destination load-recording walk of [`route_source_snapshot`], but
/// reusing the tree in `sssp` across the shard's pricing rounds under the
/// serial reuse rule — recorded distances lower-bound current ones (lengths
/// are monotone), so a path whose current length stays within `slack ×` the
/// recorded distance is still approximately shortest (the stealing
/// scheduler passes a full-ε slack; see its module docs).
/// When a destination drifts past the slack, the accumulated loads are
/// rolled back, the tree is rebuilt at the round's pricing lengths `lens`
/// (setting `exact`, which skips further checks this round), and the source
/// restarts from scratch. This is what eliminates the fixed-rounds
/// scheduler's per-round Dijkstra on sparse TMs (the measured ~30× loss).
/// Fills `loads` (cleared first); returns `(trees built, settle count of
/// those builds)`.
#[allow(clippy::too_many_arguments)]
pub(super) fn price_walk_cached(
    ctx: &RouteCtx<'_>,
    si: usize,
    potentials: &[f64],
    lens: &[f64],
    remaining: &[f64],
    slack: f64,
    sssp: &mut SsspWorkspace,
    exact: &mut bool,
    arc_load: &mut Vec<f64>,
    loads: &mut Vec<(u32, f64)>,
) -> (usize, usize) {
    let s = &ctx.prob.sources()[si];
    let m = ctx.prob.num_arcs();
    if arc_load.len() < m {
        arc_load.resize(m, 0.0);
    }
    let mut built = 0usize;
    let mut settled = 0usize;
    loads.clear();
    'retry: loop {
        for (j, &(dst, _)) in s.dests.iter().enumerate() {
            let r = remaining[j];
            if r <= 1e-15 || dst == s.src {
                continue;
            }
            debug_assert!(sssp.dist(dst).is_finite());
            let mut path_len = 0.0;
            let mut cur = dst;
            while cur != s.src {
                let (p, aid) = sssp.parent_unchecked(cur);
                if !*exact {
                    path_len += lens[aid];
                }
                if arc_load[aid] == 0.0 {
                    loads.push((aid as u32, 0.0));
                }
                arc_load[aid] += r;
                cur = p;
            }
            if !*exact && path_len > slack * sssp.dist(dst) {
                // Stale: roll the accumulator back (every touched arc has a
                // first-touch entry in `loads`), rebuild, restart the source.
                for &(aid, _) in loads.iter() {
                    arc_load[aid as usize] = 0.0;
                }
                loads.clear();
                compute_tree(ctx, si, potentials, lens, sssp);
                *exact = true;
                built += 1;
                settled += sssp.settled_count();
                continue 'retry;
            }
        }
        break;
    }
    for (aid, load) in loads.iter_mut() {
        *load = arc_load[*aid as usize];
        arc_load[*aid as usize] = 0.0;
    }
    (built, settled)
}
