//! Fleischer / Garg–Könemann multiplicative-weights FPTAS for maximum
//! concurrent flow, with a practical twist: alongside the classical
//! guarantee, the solver maintains
//!
//! * a **feasible lower bound** obtained by rescaling the accumulated primal
//!   flow to respect capacities exactly, and
//! * a **dual upper bound** `D(l)/alpha(l)` evaluated on the current length
//!   function (valid for any positive lengths by LP duality),
//!
//! and stops as soon as the two are within `target_gap` of each other (or the
//! classical termination `D(l) >= 1` fires). On the instances the paper
//! evaluates the bounds typically close to within a few percent long before
//! the worst-case phase count is reached.

use crate::instance::FlowProblem;
use crate::ThroughputBounds;
use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// Tuning knobs for the FPTAS.
#[derive(Debug, Clone, Copy)]
pub struct FleischerConfig {
    /// Multiplicative-weights step size (the classical epsilon). Smaller is
    /// more accurate but runs more phases.
    pub epsilon: f64,
    /// Stop once `(upper - lower) / upper <= target_gap`.
    pub target_gap: f64,
    /// Hard cap on the number of phases (safety valve).
    pub max_phases: usize,
    /// How many phases to run between bound evaluations.
    pub check_interval: usize,
}

impl Default for FleischerConfig {
    fn default() -> Self {
        FleischerConfig {
            epsilon: 0.07,
            target_gap: 0.03,
            max_phases: 20_000,
            check_interval: 8,
        }
    }
}

impl FleischerConfig {
    /// A faster, slightly looser configuration for large experiment sweeps.
    pub fn fast() -> Self {
        FleischerConfig {
            epsilon: 0.12,
            target_gap: 0.05,
            check_interval: 4,
            ..Default::default()
        }
    }

    /// A tighter configuration for validation against the exact LP.
    pub fn precise() -> Self {
        FleischerConfig {
            epsilon: 0.03,
            target_gap: 0.01,
            check_interval: 16,
            ..Default::default()
        }
    }
}

/// Maximum-concurrent-flow solver (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FleischerSolver {
    config: FleischerConfig,
}

impl FleischerSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: FleischerConfig) -> Self {
        FleischerSolver { config }
    }

    /// Computes throughput bounds for `tm` on `graph`.
    ///
    /// Returns `ThroughputBounds { lower: 0.0, upper: 0.0 }` if some demand
    /// pair is disconnected (the concurrent flow is then zero).
    pub fn solve(&self, graph: &Graph, tm: &TrafficMatrix) -> ThroughputBounds {
        let prob = FlowProblem::new(graph, tm);
        self.solve_problem(graph, &prob)
    }

    fn solve_problem(&self, graph: &Graph, prob: &FlowProblem) -> ThroughputBounds {
        let cfg = &self.config;
        let m = prob.num_arcs();
        let eps = cfg.epsilon;
        assert!(eps > 0.0 && eps < 0.5, "epsilon must be in (0, 0.5)");
        if m == 0 {
            return ThroughputBounds::exact(0.0);
        }

        // Reachability check: any unreachable demand forces throughput 0.
        for s in prob.sources() {
            let dist = tb_graph::bfs_distances(graph, s.src);
            if s
                .dests
                .iter()
                .any(|&(dst, _)| dist[dst] == tb_graph::shortest_path::UNREACHABLE)
            {
                return ThroughputBounds::exact(0.0);
            }
        }

        // Pre-scale demands so the scaled optimum is near 1; this keeps the
        // phase count predictable regardless of the raw demand magnitudes.
        let scale = prob.volumetric_estimate(graph).max(1e-12);
        let demands: Vec<Vec<f64>> = prob
            .sources()
            .iter()
            .map(|s| s.dests.iter().map(|&(_, d)| d * scale).collect())
            .collect();

        let caps: Vec<f64> = prob.arcs().iter().map(|a| a.cap).collect();
        let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);
        let mut len: Vec<f64> = caps.iter().map(|&c| delta / c).collect();
        // D(l) = sum_a len_a * cap_a, maintained incrementally.
        let mut d_l: f64 = len.iter().zip(&caps).map(|(l, c)| l * c).sum();

        let mut flow_arc = vec![0.0f64; m];
        let mut routed: Vec<Vec<f64>> = demands.iter().map(|d| vec![0.0; d.len()]).collect();

        let mut best_lower = 0.0f64;
        let mut best_upper = f64::INFINITY;

        // Scratch buffers for the per-iteration availability bookkeeping.
        let mut avail = caps.clone();
        let mut used = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        let mut phase = 0usize;
        'phases: while phase < cfg.max_phases && d_l < 1.0 {
            for (si, s) in prob.sources().iter().enumerate() {
                let mut remaining = demands[si].clone();
                loop {
                    if d_l >= 1.0 {
                        break 'phases;
                    }
                    let (dist, parent) = prob.shortest_path_tree(s.src, &len);
                    // Route every destination with remaining demand along the
                    // tree, never exceeding any arc's full capacity within this
                    // single tree iteration (so each length update factor stays
                    // <= 1 + eps).
                    touched.clear();
                    let mut progressed = false;
                    for (j, &(dst, _)) in s.dests.iter().enumerate() {
                        if remaining[j] <= 1e-15 {
                            continue;
                        }
                        debug_assert!(dist[dst].is_finite());
                        // Collect the tree path and its bottleneck.
                        let mut bottleneck = f64::INFINITY;
                        let mut cur = dst;
                        while cur != s.src {
                            let (p, aid) = parent[cur].expect("reachable by check above");
                            bottleneck = bottleneck.min(avail[aid]);
                            cur = p;
                        }
                        let f = remaining[j].min(bottleneck);
                        if f <= 1e-15 {
                            continue;
                        }
                        let mut cur = dst;
                        while cur != s.src {
                            let (p, aid) = parent[cur].unwrap();
                            if used[aid] == 0.0 {
                                touched.push(aid);
                            }
                            avail[aid] -= f;
                            used[aid] += f;
                            cur = p;
                        }
                        remaining[j] -= f;
                        routed[si][j] += f;
                        progressed = true;
                    }
                    // Apply multiplicative length updates for the arcs used in
                    // this tree iteration and restore the scratch buffers.
                    for &aid in &touched {
                        let u = used[aid];
                        flow_arc[aid] += u;
                        let old = len[aid];
                        let new = old * (1.0 + eps * u / caps[aid]);
                        d_l += (new - old) * caps[aid];
                        len[aid] = new;
                        used[aid] = 0.0;
                        avail[aid] = caps[aid];
                    }
                    touched.clear();
                    if !progressed || remaining.iter().all(|&r| r <= 1e-15) {
                        break;
                    }
                }
            }
            phase += 1;
            if phase % cfg.check_interval == 0 {
                let (lo, up) = self.evaluate_bounds(prob, &demands, &routed, &flow_arc, &caps, &len, d_l);
                best_lower = best_lower.max(lo);
                best_upper = best_upper.min(up);
                if best_upper.is_finite() && (best_upper - best_lower) / best_upper <= cfg.target_gap {
                    break 'phases;
                }
            }
        }

        // Final bound evaluation.
        let (lo, up) = self.evaluate_bounds(prob, &demands, &routed, &flow_arc, &caps, &len, d_l);
        best_lower = best_lower.max(lo);
        best_upper = best_upper.min(up);
        if !best_upper.is_finite() {
            best_upper = best_lower;
        }
        // Undo the demand pre-scaling: bounds computed for demands d*scale are
        // 1/scale times the bounds for d.
        ThroughputBounds {
            lower: best_lower * scale,
            upper: best_upper * scale,
        }
    }

    /// Evaluates the practical feasible lower bound and the dual upper bound
    /// for the current state. Bounds are in the *scaled* demand space.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_bounds(
        &self,
        prob: &FlowProblem,
        demands: &[Vec<f64>],
        routed: &[Vec<f64>],
        flow_arc: &[f64],
        caps: &[f64],
        len: &[f64],
        d_l: f64,
    ) -> (f64, f64) {
        // Feasible lower bound: scale the accumulated flow down so that no arc
        // exceeds its capacity, then the worst-served commodity determines the
        // concurrent throughput.
        let mut mu = f64::INFINITY;
        for (f, c) in flow_arc.iter().zip(caps) {
            if *f > 1e-15 {
                mu = mu.min(c / f);
            }
        }
        let lower = if mu.is_finite() {
            let mut worst = f64::INFINITY;
            for (r, d) in routed.iter().zip(demands) {
                for (rj, dj) in r.iter().zip(d) {
                    worst = worst.min(rj / dj);
                }
            }
            if worst.is_finite() {
                worst * mu
            } else {
                0.0
            }
        } else {
            0.0
        };

        // Dual upper bound: D(l) / alpha(l) with alpha(l) the demand-weighted
        // shortest-path distances under the current lengths.
        let mut alpha = 0.0;
        for (si, s) in prob.sources().iter().enumerate() {
            let (dist, _) = prob.shortest_path_tree(s.src, len);
            for (j, &(dst, _)) in s.dests.iter().enumerate() {
                alpha += demands[si][j] * dist[dst];
            }
        }
        let upper = if alpha > 0.0 { d_l / alpha } else { f64::INFINITY };
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;
    use tb_traffic::{Demand, TrafficMatrix};

    fn solver() -> FleischerSolver {
        FleischerSolver::new(FleischerConfig::precise())
    }

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn single_link_single_flow() {
        // One unit-capacity link, demand 1: throughput exactly 1.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!(b.lower <= b.upper + 1e-9);
        assert!((b.lower - 1.0).abs() < 0.03, "lower {}", b.lower);
        assert!((b.upper - 1.0).abs() < 0.03, "upper {}", b.upper);
    }

    #[test]
    fn path_graph_shared_bottleneck() {
        // Path 0-1-2, demands 0->2 and 1->2 of 1 each share link (1,2):
        // throughput 0.5.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 0.5).abs() < 0.02, "lower {}", b.lower);
        assert!(b.upper >= 0.5 - 1e-9);
        assert!(b.gap() < 0.05);
    }

    #[test]
    fn two_disjoint_paths_double_capacity() {
        // A 4-cycle gives two disjoint 2-hop paths between opposite corners:
        // demand 0->2 of 1 achieves throughput 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 2.0).abs() < 0.08, "lower {}", b.lower);
    }

    #[test]
    fn disconnected_demand_gives_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
    }

    #[test]
    fn ring_all_to_all_symmetry() {
        // On a C4 with one server per switch, A2A throughput is the same from
        // every node; just check bounds are consistent and positive.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let servers = vec![1usize; 4];
        let tm = tb_traffic::synthetic::all_to_all(&servers);
        let b = solver().solve(&g, &tm);
        assert!(b.lower > 0.0);
        assert!(b.lower <= b.upper + 1e-9);
        assert!(b.gap() < 0.05, "gap {}", b.gap());
    }

    #[test]
    fn capacity_scaling_scales_throughput() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let b1 = solver().solve(&g, &tm);
        let g2 = g.scaled_capacities(3.0);
        let b3 = solver().solve(&g2, &tm);
        assert!((b3.lower / b1.lower - 3.0).abs() < 0.1, "{} vs {}", b3.lower, b1.lower);
    }

    #[test]
    fn demand_scaling_inversely_scales_throughput() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let tm_half = tm.scaled(0.5);
        let b1 = solver().solve(&g, &tm);
        let b2 = solver().solve(&g, &tm_half);
        assert!((b2.lower / b1.lower - 2.0).abs() < 0.1);
    }

    #[test]
    fn star_graph_hose_limit() {
        // Star with 4 leaves, each leaf sends 1 unit to the next leaf
        // (a ring of demands): every leaf link carries 1 in and 1 out,
        // so throughput is 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let tm = TrafficMatrix::new(
            5,
            vec![
                demand(1, 2, 1.0),
                demand(2, 3, 1.0),
                demand(3, 4, 1.0),
                demand(4, 1, 1.0),
            ],
        );
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 1.0).abs() < 0.03, "lower {}", b.lower);
    }

    #[test]
    fn fast_config_still_brackets() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = FleischerSolver::new(FleischerConfig::fast()).solve(&g, &tm);
        assert!(b.lower <= 0.5 + 1e-9);
        assert!(b.upper >= 0.5 - 1e-9);
    }
}
