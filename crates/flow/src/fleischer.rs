//! Fleischer / Garg–Könemann multiplicative-weights FPTAS for maximum
//! concurrent flow, with a practical twist: alongside the classical
//! guarantee, the solver maintains
//!
//! * a **feasible lower bound** obtained by rescaling the accumulated primal
//!   flow to respect capacities exactly, and
//! * a **dual upper bound** `D(l)/alpha(l)` evaluated on the current length
//!   function (valid for any positive lengths by LP duality),
//!
//! and stops as soon as the two are within `target_gap` of each other (or the
//! classical termination `D(l) >= 1` fires). On the instances the paper
//! evaluates the bounds typically close to within a few percent long before
//! the worst-case phase count is reached.
//!
//! ## Hot-path layout
//!
//! The inner loop is a shortest-path computation per source per iteration, so
//! the solver is built around the shared `tb_graph` SSSP kernel:
//!
//! * arcs live in a CSR view ([`FlowProblem::csr`]); no nested adjacency
//!   vectors are chased,
//! * all per-iteration state (Dijkstra arrays and heap, remaining demand,
//!   availability bookkeeping, the recorded routing path) lives in a
//!   [`SolverWorkspace`] that is allocated once and reset in O(1) via
//!   generation counters,
//! * every SSSP call passes the source's destination set, so Dijkstra stops
//!   as soon as the last relevant node is settled,
//! * a tree is **reused** across a source's capacity-limited iterations while
//!   the walked path stays within a small factor of the tree's recorded
//!   distance (sound because arc lengths only ever grow, so the recorded
//!   distance lower-bounds the current one — the classical Fleischer
//!   argument),
//! * the dual bound's per-source SSSP sweep is read-only over the length
//!   function and fans out with rayon once the instance is large enough to
//!   amortize the pool.
//!
//! ## Goal-directed routing for sparse TMs
//!
//! Monotone lengths yield one more structural win: shortest-path distances
//! *to* a node, computed under any earlier (pointwise smaller) length
//! function, form a **consistent A\* potential** for the current lengths.
//! For every source with a single destination — the shape of matching-style
//! near-worst-case TMs, where each switch talks to one peer — the solver
//! caches reverse distances to that destination (refreshed on a fixed phase
//! cadence, in parallel for large instances) and runs the goal-directed
//! kernel [`tb_graph::sssp_csr_goal`] instead of a full Dijkstra. Distances
//! and routed paths remain *exact*; once the length function differentiates,
//! the search expands little beyond the shortest path itself, instead of
//! settling the whole graph per iteration.
//!
//! ## Aggregated tree routing for dense TMs
//!
//! At the opposite end of the TM spectrum (all-to-all and friends, where one
//! source talks to most of the graph), walking every destination's path
//! individually costs O(sum of path lengths) per tree iteration and re-touches
//! the arcs near the source once per destination. Sources whose destination
//! count reaches [`FleischerConfig::aggregate_min_dests`] instead route *all*
//! remaining demands in one bottom-up pass: the SSSP workspace exposes its
//! settle order ([`SsspWorkspace::settle_order`]), a reverse walk over that
//! order folds per-node subtree demand into the parent, and each tree arc is
//! loaded exactly once with its aggregate. If some arc's aggregate load
//! exceeds its capacity, the whole batch is scaled by the binding `cap/load`
//! ratio and the tree iteration repeats, so the per-iteration length-update
//! factor stays within `1 + eps` exactly as in the per-destination walk.
//! Reused trees are revalidated by one forward pass over the settle order
//! (re-deriving current path lengths) against the same staleness slack.
//! Sparse TMs keep the per-destination walk, where goal direction wins;
//! `tb_core`'s evaluation plumbing auto-picks the threshold from the graph
//! size via [`FleischerConfig::with_auto_aggregation`].

use crate::instance::FlowProblem;
use crate::ThroughputBounds;
use rayon::prelude::*;
use tb_graph::{sssp_csr, sssp_csr_goal, Graph, SsspWorkspace};
use tb_traffic::TrafficMatrix;

/// Per-arc routing state, interleaved so the walk/update loops touch one
/// cache line per arc instead of three parallel arrays. Lengths deliberately
/// stay in their own dense `Vec<f64>`: the SSSP relax loop reads *every*
/// arc's length and wants 8 of them per cache line, while only routed-path
/// arcs touch this struct.
#[derive(Debug, Clone, Copy, Default)]
struct RouteState {
    /// Capacity still available within the current tree iteration.
    avail: f64,
    /// Flow placed within the current tree iteration.
    used: f64,
    /// Arc capacity.
    cap: f64,
    /// Reciprocal capacity: the length-update loops run one of these per
    /// loaded arc, and a multiply beats a divide several times over there.
    inv_cap: f64,
}

/// Tuning knobs for the FPTAS.
#[derive(Debug, Clone, Copy)]
pub struct FleischerConfig {
    /// Multiplicative-weights step size (the classical epsilon). Smaller is
    /// more accurate but runs more phases.
    pub epsilon: f64,
    /// Stop once `(upper - lower) / upper <= target_gap`.
    pub target_gap: f64,
    /// Hard cap on the number of phases (safety valve).
    pub max_phases: usize,
    /// How many phases to run between bound evaluations (also the refresh
    /// cadence of the goal-direction potentials).
    pub check_interval: usize,
    /// Route a source's demands with the aggregated bottom-up tree kernel
    /// (one pass over the settle order per tree iteration instead of one
    /// parent walk per destination) once its destination count reaches this.
    /// `None` means "unset": the solver falls back to
    /// [`DEFAULT_AGGREGATE_MIN_DESTS`], and
    /// [`FleischerConfig::with_auto_aggregation`] may fill in a
    /// graph-size-aware value. `Some(usize::MAX)` disables aggregation, and
    /// any explicit `Some` survives the auto-pick.
    pub aggregate_min_dests: Option<usize>,
}

/// The aggregation threshold used when [`FleischerConfig::aggregate_min_dests`]
/// is unset: aggregation starts to pay once a source's destination count is a
/// sizable fraction of the graph (the tree then covers most settled nodes, so
/// per-destination walks re-touch the same arcs many times over).
pub const DEFAULT_AGGREGATE_MIN_DESTS: usize = 32;

impl Default for FleischerConfig {
    fn default() -> Self {
        FleischerConfig {
            epsilon: 0.07,
            target_gap: 0.03,
            max_phases: 20_000,
            check_interval: 8,
            aggregate_min_dests: None,
        }
    }
}

impl FleischerConfig {
    /// A faster, slightly looser configuration for large experiment sweeps.
    pub fn fast() -> Self {
        FleischerConfig {
            epsilon: 0.12,
            target_gap: 0.05,
            check_interval: 4,
            ..Default::default()
        }
    }

    /// A tighter configuration for validation against the exact LP.
    pub fn precise() -> Self {
        FleischerConfig {
            epsilon: 0.03,
            target_gap: 0.01,
            check_interval: 16,
            ..Default::default()
        }
    }

    /// Returns this configuration with an unset aggregation threshold picked
    /// for a graph of `num_switches` switches: a quarter of the switch count,
    /// clamped to `[8, DEFAULT_AGGREGATE_MIN_DESTS]`. Once a source talks to
    /// that fraction of the graph, its shortest-path tree spans most settled
    /// nodes and the bottom-up kernel is strictly less work than
    /// per-destination walks. An explicit `Some` threshold (tests forcing one
    /// kernel, callers that tuned their own) is left untouched.
    pub fn with_auto_aggregation(self, num_switches: usize) -> Self {
        if self.aggregate_min_dests.is_some() {
            return self;
        }
        FleischerConfig {
            aggregate_min_dests: Some((num_switches / 4).clamp(8, DEFAULT_AGGREGATE_MIN_DESTS)),
            ..self
        }
    }
}

/// Reusable scratch state for [`FleischerSolver`]: the SSSP workspace plus
/// the per-iteration buffers. Sized lazily and reusable across `solve` calls:
/// once the largest instance has been seen, the buffers held here stop
/// allocating (per-solve setup such as the `FlowProblem` arc view and demand
/// tables still allocates), and results are identical to fresh-workspace runs
/// (see the determinism tests).
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Dijkstra state shared by routing iterations and sequential bound
    /// sweeps.
    sssp: SsspWorkspace,
    /// Remaining un-routed demand of the current source's destinations.
    remaining: Vec<f64>,
    /// Current multiplicative-weights lengths (dense; the SSSP hot read).
    lens: Vec<f64>,
    /// Interleaved per-arc routing state (availability, use, capacity).
    arc_state: Vec<RouteState>,
    /// Arcs touched in the current tree iteration (sparse undo list).
    touched: Vec<usize>,
    /// Arc ids of the path being routed (recorded once, applied linearly).
    path: Vec<usize>,
    /// Goal-direction potentials, one row of `num_nodes` per single-dest
    /// source (reverse distances to its destination).
    potentials: Vec<f64>,
    /// Reversed per-arc lengths (partner-arc view) for potential refreshes.
    rev_lens: Vec<f64>,
    /// Per-node remaining subtree demand, folded bottom-up over the settle
    /// order by the aggregated routing kernel.
    subtree: Vec<f64>,
    /// Per-node current tree-path length, re-derived top-down over the settle
    /// order when the aggregated kernel revalidates a reused tree.
    cur_len: Vec<f64>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// solve.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fan SSSP sweeps out to the thread pool only when `sweeps * num_arcs`
/// clears this much work — below it, pool handoff costs more than it saves.
const PAR_MIN_SWEEP_WORK: usize = 1 << 17;

/// Maximum-concurrent-flow solver (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FleischerSolver {
    config: FleischerConfig,
}

impl FleischerSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: FleischerConfig) -> Self {
        FleischerSolver { config }
    }

    /// Computes throughput bounds for `tm` on `graph`.
    ///
    /// Returns `ThroughputBounds { lower: 0.0, upper: 0.0 }` if some demand
    /// pair is disconnected (the concurrent flow is then zero).
    pub fn solve(&self, graph: &Graph, tm: &TrafficMatrix) -> ThroughputBounds {
        let mut ws = SolverWorkspace::new();
        self.solve_with(graph, tm, &mut ws)
    }

    /// Like [`solve`](Self::solve), but drives a caller-provided workspace so
    /// buffers amortize across many solves (sweeps, relative-throughput
    /// sampling). Results are identical to [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        ws: &mut SolverWorkspace,
    ) -> ThroughputBounds {
        crate::record_solver_invocation();
        let prob = FlowProblem::new(graph, tm);
        self.solve_problem(graph, &prob, ws)
    }

    fn solve_problem(
        &self,
        graph: &Graph,
        prob: &FlowProblem,
        ws: &mut SolverWorkspace,
    ) -> ThroughputBounds {
        let cfg = &self.config;
        let n = prob.num_nodes();
        let m = prob.num_arcs();
        let eps = cfg.epsilon;
        assert!(eps > 0.0 && eps < 0.5, "epsilon must be in (0, 0.5)");
        if m == 0 {
            return ThroughputBounds::exact(0.0);
        }
        // Set TB_SOLVER_TRACE=1 to print per-solve convergence counters when
        // tuning the kernel. The global counters are process-cumulative, so
        // snapshot them here and print deltas: the trace line then pairs
        // tree/potential counts with the per-solve `phases=`/`d_l=` values.
        let trace = std::env::var_os("TB_SOLVER_TRACE").is_some();
        let trace_start = if trace {
            (
                TREE_COUNT.load(std::sync::atomic::Ordering::Relaxed),
                POT_COUNT.load(std::sync::atomic::Ordering::Relaxed),
            )
        } else {
            (0, 0)
        };

        // Pre-scale demands so the scaled optimum is near 1; this keeps the
        // phase count predictable regardless of the raw demand magnitudes.
        // The estimate doubles as the reachability check (0 iff some demand
        // pair is disconnected, which forces throughput 0) — one BFS sweep
        // instead of the former two.
        let est = prob.volumetric_estimate(graph);
        if est <= 0.0 {
            return ThroughputBounds::exact(0.0);
        }
        let scale = est.max(1e-12);
        let demands: Vec<Vec<f64>> = prob
            .sources()
            .iter()
            .map(|s| s.dests.iter().map(|&(_, d)| d * scale).collect())
            .collect();
        // Destination node list per source, for early-exit SSSP.
        let targets: Vec<Vec<usize>> = prob
            .sources()
            .iter()
            .map(|s| s.dests.iter().map(|&(dst, _)| dst).collect())
            .collect();
        // Goal-direction bookkeeping: sources with exactly one destination
        // get an A* potential row (see module docs).

        let single_dest: Vec<Option<usize>> = prob
            .sources()
            .iter()
            .map(|s| {
                if s.dests.len() == 1 {
                    Some(s.dests[0].0)
                } else {
                    None
                }
            })
            .collect();
        let pot_rows: Vec<usize> = {
            let mut next = 0usize;
            single_dest
                .iter()
                .map(|d| {
                    if d.is_some() {
                        next += 1;
                        next - 1
                    } else {
                        usize::MAX
                    }
                })
                .collect()
        };
        let num_single = single_dest.iter().filter(|d| d.is_some()).count();

        let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);

        let mut flow_arc = vec![0.0f64; m];
        let mut routed: Vec<Vec<f64>> = demands.iter().map(|d| vec![0.0; d.len()]).collect();

        let mut best_lower = 0.0f64;
        let mut best_upper = f64::INFINITY;

        let SolverWorkspace {
            sssp,
            remaining,
            lens,
            arc_state,
            touched,
            path,
            potentials,
            rev_lens,
            subtree,
            cur_len,
        } = ws;
        // Lengths and routing state, sized to this instance.
        lens.clear();
        lens.extend(prob.arcs().iter().map(|a| delta / a.cap));
        let len: &mut [f64] = lens;
        arc_state.clear();
        arc_state.extend(prob.arcs().iter().map(|a| RouteState {
            avail: a.cap,
            used: 0.0,
            cap: a.cap,
            inv_cap: 1.0 / a.cap,
        }));
        let st: &mut [RouteState] = arc_state;
        touched.clear();
        // D(l) = sum_a len_a * cap_a, maintained incrementally.
        let mut d_l: f64 = len.iter().zip(st.iter()).map(|(l, a)| l * a.cap).sum();
        if num_single > 0 {
            potentials.clear();
            potentials.resize(num_single * n, f64::INFINITY);
        }
        // Sources at or above the aggregation threshold route all their
        // remaining demands in one bottom-up pass over the tree's settle
        // order instead of one parent walk per destination (see module docs).
        let agg_min_dests = cfg
            .aggregate_min_dests
            .unwrap_or(DEFAULT_AGGREGATE_MIN_DESTS)
            .max(1);
        if prob
            .sources()
            .iter()
            .any(|s| s.dests.len() >= agg_min_dests)
        {
            subtree.clear();
            subtree.resize(n, 0.0);
            cur_len.clear();
            cur_len.resize(n, 0.0);
        }

        // Reuse a tree across a source's capacity-limited iterations while
        // the walked path is within this factor of the tree's recorded
        // distance; a quarter step keeps routed paths well inside the slack
        // the analysis absorbs. (Precomputing whole *blocks* of trees to
        // parallelize this loop was tried and reverted: cross-source
        // staleness either gets rejected here — doubling the SSSP work — or,
        // with a looser slack, measurably slows the multiplicative-weights
        // convergence. See CHANGES.md.)
        let reuse_slack = 1.0 + 0.25 * eps;
        // A zero `check_interval` would otherwise silently disable every
        // mid-run bound evaluation (and with it early termination).
        let check_interval = cfg.check_interval.max(1);
        let pot_refresh = check_interval;
        // Goal direction is kept on for the whole solve whenever any source
        // qualifies: switching kernels mid-solve was tried and reverted — it
        // changes tie-breaking, and with it the routing trajectory, enough to
        // slow convergence on some topologies.
        let goal_enabled = num_single > 0;
        let mut phase = 0usize;
        let mut state_evaluated = false;
        'phases: while phase < cfg.max_phases && d_l < 1.0 {
            if goal_enabled && phase.is_multiple_of(pot_refresh) {
                refresh_potentials(
                    prob,
                    &single_dest,
                    &pot_rows,
                    len,
                    rev_lens,
                    potentials,
                    sssp,
                    num_single,
                );
            }
            for (si, s) in prob.sources().iter().enumerate() {
                if d_l >= 1.0 {
                    break 'phases;
                }
                remaining.clear();
                remaining.extend_from_slice(&demands[si]);
                // Compute this source's tree at the current lengths, goal-
                // directed when it has a single destination.
                compute_tree(
                    prob,
                    s,
                    si,
                    &single_dest,
                    &pot_rows,
                    potentials,
                    goal_enabled,
                    len,
                    &targets,
                    sssp,
                );
                if s.dests.len() >= agg_min_dests {
                    // Aggregated bottom-up routing for dense destination
                    // sets: instead of chasing parents once per destination
                    // (O(sum of path lengths) per tree iteration), fold each
                    // node's remaining subtree demand over the settle order
                    // in reverse and load every tree arc exactly once. When
                    // some arc's aggregate load exceeds its capacity, the
                    // whole batch is scaled by the binding `cap/load` ratio
                    // and the loop repeats, so no arc exceeds its capacity
                    // within one tree iteration and every length-update
                    // factor stays <= 1 + eps — the same invariant the
                    // per-destination walk maintains. (Persisting these
                    // trees across phases behind cheap revalidation was
                    // tried and reverted: a phase's average arc utilization
                    // is ~1, so lengths drift enough per phase that any
                    // slack loose enough to admit reuse measurably slowed
                    // the multiplicative-weights convergence — the same
                    // trade the phase-blocked stale-tree experiment hit.)
                    let mut revalidate = false;
                    loop {
                        if d_l >= 1.0 {
                            break 'phases;
                        }
                        if revalidate {
                            // Reuse rule, tree-wide: the previous batch's
                            // apply pass left every settled node's *current*
                            // tree-path length in `cur_len` (maintained
                            // top-down for free while loading arcs);
                            // recompute the tree once any destination with
                            // remaining demand drifts past the slack.
                            // Recorded distances lower-bound current ones
                            // (lengths are monotone), so within the slack
                            // the tree paths remain approximately shortest —
                            // exactly the per-destination reuse argument.
                            let stale = s.dests.iter().enumerate().any(|(j, &(dst, _))| {
                                remaining[j] > 1e-15 && cur_len[dst] > reuse_slack * sssp.dist(dst)
                            });
                            if stale {
                                compute_tree(
                                    prob,
                                    s,
                                    si,
                                    &single_dest,
                                    &pot_rows,
                                    potentials,
                                    goal_enabled,
                                    len,
                                    &targets,
                                    sssp,
                                );
                            }
                        }
                        // Deposit remaining demands at their destinations.
                        for &v in sssp.settle_order() {
                            subtree[v as usize] = 0.0;
                        }
                        let mut pending = false;
                        for (j, &(dst, _)) in s.dests.iter().enumerate() {
                            if remaining[j] <= 1e-15 {
                                continue;
                            }
                            if dst == s.src {
                                // A self-demand consumes no capacity.
                                routed[si][j] += remaining[j];
                                remaining[j] = 0.0;
                            } else {
                                // Every destination is a target of the tree
                                // computation, so it is always settled (early
                                // exit stops only after the last target).
                                debug_assert!(sssp.dist(dst).is_finite());
                                subtree[dst] += remaining[j];
                                pending = true;
                            }
                        }
                        if !pending {
                            break;
                        }
                        // Bottom-up fold: children settle after their parent,
                        // so the reverse settle order visits them first and
                        // `subtree[v]` is complete — the total remaining
                        // demand crossing v's parent arc — when v is visited.
                        // Only arcs whose load exceeds capacity can bind, so
                        // the `cap/load` divide is confined to them.
                        let mut ratio = f64::INFINITY;
                        for &v in sssp.settle_order().iter().rev() {
                            let v = v as usize;
                            if v == s.src {
                                continue;
                            }
                            let load = subtree[v];
                            if load <= 0.0 {
                                continue;
                            }
                            let (p, aid) = sssp.parent_unchecked(v);
                            subtree[p] += load;
                            let cap = st[aid].cap;
                            if load > cap {
                                ratio = ratio.min(cap / load);
                            }
                        }
                        let theta = ratio.min(1.0);
                        // Apply the (scaled) batch — each tree arc is loaded
                        // exactly once, with at most its full capacity — and
                        // refresh `cur_len` (the current tree-path lengths)
                        // in the same top-down pass, so the next iteration's
                        // staleness check needs no extra walk.
                        for &v in sssp.settle_order() {
                            let v = v as usize;
                            if v == s.src {
                                cur_len[v] = 0.0;
                                continue;
                            }
                            let (p, aid) = sssp.parent_unchecked(v);
                            let load = subtree[v];
                            if load > 0.0 {
                                apply_length_update(
                                    eps,
                                    aid,
                                    theta * load,
                                    &st[aid],
                                    len,
                                    &mut flow_arc,
                                    &mut d_l,
                                );
                            }
                            cur_len[v] = cur_len[p] + len[aid];
                        }
                        for (j, r) in remaining.iter_mut().enumerate() {
                            if *r > 1e-15 {
                                let commit = theta * *r;
                                routed[si][j] += commit;
                                *r -= commit;
                            }
                        }
                        if theta == 1.0 {
                            break; // every remaining demand fully routed
                        }
                        // A capacity-limited batch saturated the binding arc
                        // (its length grew by the full 1 + eps factor);
                        // revalidate the tree before further reuse.
                        revalidate = true;
                    }
                    continue;
                }
                let mut tree_exact = true;
                loop {
                    if d_l >= 1.0 {
                        break 'phases;
                    }
                    // Route every destination with remaining demand along the
                    // tree, never exceeding any arc's full capacity within this
                    // single tree iteration (so each length update factor stays
                    // <= 1 + eps).
                    let mut progressed = false;
                    let mut need_fresh = false;
                    for (j, &(dst, _)) in s.dests.iter().enumerate() {
                        if remaining[j] <= 1e-15 {
                            continue;
                        }
                        let tree_dist = sssp.dist(dst);
                        debug_assert!(tree_dist.is_finite());
                        // Optimistic single-pass walk: apply the full
                        // remaining demand while chasing parents (recording
                        // the arc ids), tracking the bottleneck as it was
                        // *before* this application. If the bottleneck turns
                        // out to bind — rare, demands are small against
                        // capacities — a linear corrective pass over the
                        // recorded arcs removes the excess, so the committed
                        // amounts equal the classic
                        // `min(remaining, bottleneck)` exactly.
                        path.clear();
                        let f0 = remaining[j];
                        let mut path_len = 0.0;
                        let mut bottleneck = f64::INFINITY;
                        let mut cur = dst;
                        while cur != s.src {
                            let (p, aid) = sssp.parent_unchecked(cur);
                            path.push(aid);
                            if !tree_exact {
                                path_len += len[aid];
                            }
                            let a = &mut st[aid];
                            if a.used == 0.0 {
                                touched.push(aid);
                            }
                            bottleneck = bottleneck.min(a.avail);
                            a.avail -= f0;
                            a.used += f0;
                            cur = p;
                        }
                        // Reuse rule: `tree_dist` lower-bounds the current
                        // shortest distance (lengths are monotone), so within
                        // the slack this path is approximately shortest. Past
                        // it, undo this application and recompute. Exact
                        // (just-computed) trees skip the check — float noise
                        // must not re-trigger it.
                        if !tree_exact && path_len > reuse_slack * tree_dist {
                            for &aid in path.iter() {
                                let a = &mut st[aid];
                                a.avail += f0;
                                a.used -= f0;
                            }
                            need_fresh = true;
                            break;
                        }
                        let f = f0.min(bottleneck);
                        // Commit `min(remaining, bottleneck)` exactly as the
                        // classic two-pass scheme would; negligible amounts
                        // are rolled back entirely. Stray `touched` entries
                        // left with zero `used` are benign in the update loop
                        // below.
                        let commit = if f > 1e-15 { f } else { 0.0 };
                        if commit < f0 {
                            let excess = f0 - commit;
                            for &aid in path.iter() {
                                let a = &mut st[aid];
                                a.avail += excess;
                                a.used -= excess;
                            }
                        }
                        if commit == 0.0 {
                            continue;
                        }
                        remaining[j] -= commit;
                        routed[si][j] += commit;
                        progressed = true;
                    }
                    // Apply multiplicative length updates for the arcs used in
                    // this tree iteration and restore the scratch buffers.
                    for &aid in touched.iter() {
                        apply_length_update(
                            eps,
                            aid,
                            st[aid].used,
                            &st[aid],
                            len,
                            &mut flow_arc,
                            &mut d_l,
                        );
                        let a = &mut st[aid];
                        a.used = 0.0;
                        a.avail = a.cap;
                    }
                    touched.clear();
                    if need_fresh {
                        compute_tree(
                            prob,
                            s,
                            si,
                            &single_dest,
                            &pot_rows,
                            potentials,
                            goal_enabled,
                            len,
                            &targets,
                            sssp,
                        );
                        tree_exact = true;
                        continue;
                    }
                    if !progressed || remaining.iter().all(|&r| r <= 1e-15) {
                        break;
                    }
                    // Routing moved the lengths; the tree must pass the
                    // staleness check before further reuse.
                    tree_exact = false;
                }
            }
            phase += 1;
            if phase.is_multiple_of(check_interval) {
                let (lo, up) = evaluate_bounds(
                    prob,
                    &targets,
                    &single_dest,
                    &pot_rows,
                    potentials,
                    goal_enabled,
                    &demands,
                    &routed,
                    &flow_arc,
                    len,
                    st,
                    d_l,
                    sssp,
                );
                best_lower = best_lower.max(lo);
                best_upper = best_upper.min(up);
                if best_upper.is_finite()
                    && (best_upper - best_lower) / best_upper <= cfg.target_gap
                {
                    // No routing has happened since this evaluation, so the
                    // closing sweep below would recompute the same bounds;
                    // skip it.
                    state_evaluated = true;
                    break 'phases;
                }
            }
        }

        if trace {
            eprintln!(
                "TB_SOLVER_TRACE phases={phase} trees={} pot_refreshes={} d_l={d_l:.4}",
                TREE_COUNT
                    .load(std::sync::atomic::Ordering::Relaxed)
                    .wrapping_sub(trace_start.0),
                POT_COUNT
                    .load(std::sync::atomic::Ordering::Relaxed)
                    .wrapping_sub(trace_start.1),
            );
        }

        // Final bound evaluation (unless the state was already evaluated by
        // the gap check that ended the run).
        if !state_evaluated {
            let (lo, up) = evaluate_bounds(
                prob,
                &targets,
                &single_dest,
                &pot_rows,
                potentials,
                goal_enabled,
                &demands,
                &routed,
                &flow_arc,
                len,
                st,
                d_l,
                sssp,
            );
            best_lower = best_lower.max(lo);
            best_upper = best_upper.min(up);
        }
        if !best_upper.is_finite() {
            best_upper = best_lower;
        }
        // Undo the demand pre-scaling: bounds computed for demands d*scale are
        // 1/scale times the bounds for d.
        ThroughputBounds {
            lower: best_lower * scale,
            upper: best_upper * scale,
        }
    }
}

/// Process-cumulative counters behind `TB_SOLVER_TRACE` (diagnostics only;
/// relaxed increments cost nothing measurable on the hot path). Each solve
/// snapshots them on entry and prints the per-solve delta; concurrent solves
/// in one process can still bleed counts into each other's deltas, which the
/// single-threaded tuning workflow the trace exists for never does.
static TREE_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static POT_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The multiplicative-weights update for routing `u` units over arc `aid`:
/// accumulate the flow, grow the arc's length by `1 + eps * u / cap`
/// (reciprocal form — see [`RouteState::inv_cap`]), and maintain
/// `D(l) = sum_a len_a * cap_a` incrementally. One definition serves both
/// routing kernels, keeping the per-destination walk and the aggregated
/// batch apply arithmetically identical.
#[inline]
fn apply_length_update(
    eps: f64,
    aid: usize,
    u: f64,
    a: &RouteState,
    len: &mut [f64],
    flow_arc: &mut [f64],
    d_l: &mut f64,
) {
    flow_arc[aid] += u;
    let old = len[aid];
    let new = old * (1.0 + eps * u * a.inv_cap);
    *d_l += (new - old) * a.cap;
    len[aid] = new;
}

/// Computes the routing tree for source `s` at the current lengths: the
/// goal-directed kernel when the source has one destination and a finite
/// potential row, the early-exit Dijkstra otherwise.
#[allow(clippy::too_many_arguments)]
fn compute_tree(
    prob: &FlowProblem,
    s: &crate::instance::SourceDemands,
    si: usize,
    single_dest: &[Option<usize>],
    pot_rows: &[usize],
    potentials: &[f64],
    goal_enabled: bool,
    len: &[f64],
    targets: &[Vec<usize>],
    sssp: &mut SsspWorkspace,
) {
    let n = prob.num_nodes();
    TREE_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if let (true, Some(dst)) = (goal_enabled, single_dest[si]) {
        let row = &potentials[pot_rows[si] * n..(pot_rows[si] + 1) * n];
        sssp_csr_goal(prob.csr(), s.src, len, dst, row, sssp);
    } else {
        // Target bookkeeping only pays when the destination set is a small
        // fraction of the graph; dense sets (all-to-all) settle everything
        // anyway.
        let ts = &targets[si];
        let early = if ts.len() * 2 < n {
            Some(ts.as_slice())
        } else {
            None
        };
        sssp_csr(prob.csr(), s.src, len, early, sssp);
    }
}

/// Refreshes the goal-direction potential rows: one full reverse SSSP per
/// single-destination source's target, against the partner-arc length view.
/// Row values are exact reverse distances at refresh time and remain
/// consistent (admissible) as lengths grow. Fans out to the pool for large
/// instances; row contents do not depend on the thread count.
#[allow(clippy::too_many_arguments)]
fn refresh_potentials(
    prob: &FlowProblem,
    single_dest: &[Option<usize>],
    pot_rows: &[usize],
    len: &[f64],
    rev_lens: &mut Vec<f64>,
    potentials: &mut [f64],
    sssp: &mut SsspWorkspace,
    num_single: usize,
) {
    let n = prob.num_nodes();
    let m = prob.num_arcs();
    POT_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    // Reverse view: arcs are created in (forward, backward) pairs, so the
    // partner of arc `aid` is `aid ^ 1` and reverse-graph distances are plain
    // distances under the partner's length.
    rev_lens.clear();
    debug_assert!(
        (0..m).step_by(2).all(|aid| {
            let (f, b) = (prob.arcs()[aid], prob.arcs()[aid ^ 1]);
            f.from == b.to && f.to == b.from
        }),
        "FlowProblem arcs must come in (forward, backward) pairs for the partner view"
    );
    rev_lens.extend((0..m).map(|aid| len[aid ^ 1]));
    let rev: &[f64] = rev_lens;
    // Rows are handed out in source order; a source's row index from
    // `pot_rows` matches its position in this filtered sequence.
    let jobs: Vec<(&mut [f64], usize)> = potentials
        .chunks_mut(n)
        .zip(single_dest.iter().filter(|d| d.is_some()))
        .map(|(row, d)| (row, d.expect("filtered to Some")))
        .collect();
    debug_assert_eq!(jobs.len(), num_single);
    debug_assert!(pot_rows.iter().filter(|&&r| r != usize::MAX).count() == num_single);
    if num_single * m >= PAR_MIN_SWEEP_WORK && rayon::current_num_threads() > 1 {
        let _: Vec<()> = jobs
            .into_par_iter()
            .map_init(SsspWorkspace::new, |sw, (row, dst)| {
                sssp_csr(prob.csr(), dst, rev, None, sw);
                for (v, slot) in row.iter_mut().enumerate() {
                    *slot = sw.dist(v);
                }
            })
            .collect();
    } else {
        for (row, dst) in jobs {
            sssp_csr(prob.csr(), dst, rev, None, sssp);
            for (v, slot) in row.iter_mut().enumerate() {
                *slot = sssp.dist(v);
            }
        }
    }
}

/// Evaluates the practical feasible lower bound and the dual upper bound
/// for the current state. Bounds are in the *scaled* demand space.
///
/// The dual bound needs one shortest-path computation per source under the
/// current lengths (goal-directed where a potential row exists); the sweep is
/// read-only over `len`, so for larger instances it fans out across threads
/// (each worker carries its own SSSP workspace via `map_init`), with a fixed
/// summation order keeping the result independent of thread count.
#[allow(clippy::too_many_arguments)]
fn evaluate_bounds(
    prob: &FlowProblem,
    targets: &[Vec<usize>],
    single_dest: &[Option<usize>],
    pot_rows: &[usize],
    potentials: &[f64],
    goal_enabled: bool,
    demands: &[Vec<f64>],
    routed: &[Vec<f64>],
    flow_arc: &[f64],
    len: &[f64],
    st: &[RouteState],
    d_l: f64,
    sssp: &mut SsspWorkspace,
) -> (f64, f64) {
    // Feasible lower bound: scale the accumulated flow down so that no arc
    // exceeds its capacity, then the worst-served commodity determines the
    // concurrent throughput.
    let mut mu = f64::INFINITY;
    for (f, a) in flow_arc.iter().zip(st) {
        if *f > 1e-15 {
            mu = mu.min(a.cap / f);
        }
    }
    let lower = if mu.is_finite() {
        let mut worst = f64::INFINITY;
        for (r, d) in routed.iter().zip(demands) {
            for (rj, dj) in r.iter().zip(d) {
                worst = worst.min(rj / dj);
            }
        }
        if worst.is_finite() {
            worst * mu
        } else {
            0.0
        }
    } else {
        0.0
    };

    // Dual upper bound: D(l) / alpha(l) with alpha(l) the demand-weighted
    // shortest-path distances under the current lengths.
    let alpha_of = |sw: &mut SsspWorkspace, si: usize| -> f64 {
        let s = &prob.sources()[si];
        compute_tree(
            prob,
            s,
            si,
            single_dest,
            pot_rows,
            potentials,
            goal_enabled,
            len,
            targets,
            sw,
        );
        s.dests
            .iter()
            .enumerate()
            .map(|(j, &(dst, _))| demands[si][j] * sw.dist(dst))
            .sum()
    };
    let num_sources = prob.sources().len();
    let alpha: f64 = if num_sources * prob.num_arcs() >= PAR_MIN_SWEEP_WORK
        && rayon::current_num_threads() > 1
    {
        (0..num_sources)
            .into_par_iter()
            .map_init(SsspWorkspace::new, |sw, si| alpha_of(sw, si))
            .sum()
    } else {
        (0..num_sources).map(|si| alpha_of(sssp, si)).sum()
    };
    let upper = if alpha > 0.0 {
        d_l / alpha
    } else {
        f64::INFINITY
    };
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;
    use tb_traffic::{Demand, TrafficMatrix};

    fn solver() -> FleischerSolver {
        FleischerSolver::new(FleischerConfig::precise())
    }

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn single_link_single_flow() {
        // One unit-capacity link, demand 1: throughput exactly 1.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!(b.lower <= b.upper + 1e-9);
        assert!((b.lower - 1.0).abs() < 0.03, "lower {}", b.lower);
        assert!((b.upper - 1.0).abs() < 0.03, "upper {}", b.upper);
    }

    #[test]
    fn path_graph_shared_bottleneck() {
        // Path 0-1-2, demands 0->2 and 1->2 of 1 each share link (1,2):
        // throughput 0.5.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 0.5).abs() < 0.02, "lower {}", b.lower);
        assert!(b.upper >= 0.5 - 1e-9);
        assert!(b.gap() < 0.05);
    }

    #[test]
    fn two_disjoint_paths_double_capacity() {
        // A 4-cycle gives two disjoint 2-hop paths between opposite corners:
        // demand 0->2 of 1 achieves throughput 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 2.0).abs() < 0.08, "lower {}", b.lower);
    }

    #[test]
    fn disconnected_demand_gives_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0)]);
        let b = solver().solve(&g, &tm);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
    }

    #[test]
    fn ring_all_to_all_symmetry() {
        // On a C4 with one server per switch, A2A throughput is the same from
        // every node; just check bounds are consistent and positive.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let servers = vec![1usize; 4];
        let tm = tb_traffic::synthetic::all_to_all(&servers);
        let b = solver().solve(&g, &tm);
        assert!(b.lower > 0.0);
        assert!(b.lower <= b.upper + 1e-9);
        assert!(b.gap() < 0.05, "gap {}", b.gap());
    }

    #[test]
    fn capacity_scaling_scales_throughput() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let b1 = solver().solve(&g, &tm);
        let g2 = g.scaled_capacities(3.0);
        let b3 = solver().solve(&g2, &tm);
        assert!(
            (b3.lower / b1.lower - 3.0).abs() < 0.1,
            "{} vs {}",
            b3.lower,
            b1.lower
        );
    }

    #[test]
    fn demand_scaling_inversely_scales_throughput() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let tm_half = tm.scaled(0.5);
        let b1 = solver().solve(&g, &tm);
        let b2 = solver().solve(&g, &tm_half);
        assert!((b2.lower / b1.lower - 2.0).abs() < 0.1);
    }

    #[test]
    fn star_graph_hose_limit() {
        // Star with 4 leaves, each leaf sends 1 unit to the next leaf
        // (a ring of demands): every leaf link carries 1 in and 1 out,
        // so throughput is 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let tm = TrafficMatrix::new(
            5,
            vec![
                demand(1, 2, 1.0),
                demand(2, 3, 1.0),
                demand(3, 4, 1.0),
                demand(4, 1, 1.0),
            ],
        );
        let b = solver().solve(&g, &tm);
        assert!((b.lower - 1.0).abs() < 0.03, "lower {}", b.lower);
    }

    #[test]
    fn fast_config_still_brackets() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = FleischerSolver::new(FleischerConfig::fast()).solve(&g, &tm);
        assert!(b.lower <= 0.5 + 1e-9);
        assert!(b.upper >= 0.5 - 1e-9);
    }

    #[test]
    fn auto_aggregation_threshold_scales_with_graph_size() {
        // A quarter of the switch count, clamped to [8, default].
        let base = FleischerConfig::default();
        assert_eq!(base.with_auto_aggregation(16).aggregate_min_dests, Some(8));
        assert_eq!(base.with_auto_aggregation(64).aggregate_min_dests, Some(16));
        assert_eq!(
            base.with_auto_aggregation(4096).aggregate_min_dests,
            Some(DEFAULT_AGGREGATE_MIN_DESTS)
        );
        // Explicit settings — disabled, forced, or exactly the default value —
        // survive the auto-pick.
        for explicit in [usize::MAX, 2, DEFAULT_AGGREGATE_MIN_DESTS] {
            let cfg = FleischerConfig {
                aggregate_min_dests: Some(explicit),
                ..base
            };
            assert_eq!(
                cfg.with_auto_aggregation(64).aggregate_min_dests,
                Some(explicit)
            );
        }
    }

    #[test]
    fn aggregated_ring_a2a_matches_per_destination_walk() {
        // Small dense instance driven through both routing kernels: when no
        // capacity binds within a tree iteration the two are arithmetically
        // identical, so the bounds must agree to the last bit here.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let servers = vec![1usize; 6];
        let tm = tb_traffic::synthetic::all_to_all(&servers);
        let agg = FleischerSolver::new(FleischerConfig {
            aggregate_min_dests: Some(2),
            ..FleischerConfig::precise()
        })
        .solve(&g, &tm);
        let walk = FleischerSolver::new(FleischerConfig {
            aggregate_min_dests: Some(usize::MAX),
            ..FleischerConfig::precise()
        })
        .solve(&g, &tm);
        assert!(agg.lower > 0.0);
        assert!(
            (agg.lower - walk.lower).abs() <= 1e-12 * walk.lower
                && (agg.upper - walk.upper).abs() <= 1e-12 * walk.upper,
            "aggregated {agg:?} vs per-destination {walk:?}"
        );
    }

    #[test]
    fn reused_workspace_matches_fresh_solves() {
        // A single workspace driven across different graphs and TMs (of
        // different sizes, in both directions) must reproduce fresh-workspace
        // results bit-for-bit.
        let g1 = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm1 = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let g2 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let servers = vec![1usize; 4];
        let tm2 = tb_traffic::synthetic::all_to_all(&servers);
        let s = solver();
        let fresh1 = s.solve(&g1, &tm1);
        let fresh2 = s.solve(&g2, &tm2);
        let mut ws = SolverWorkspace::new();
        for _ in 0..3 {
            let b1 = s.solve_with(&g1, &tm1, &mut ws);
            assert_eq!(b1.lower, fresh1.lower);
            assert_eq!(b1.upper, fresh1.upper);
            let b2 = s.solve_with(&g2, &tm2, &mut ws);
            assert_eq!(b2.lower, fresh2.lower);
            assert_eq!(b2.upper, fresh2.upper);
        }
    }
}
