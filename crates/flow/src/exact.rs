//! Exact throughput via linear programming, solved with the bundled revised
//! simplex (`tb-lp`). Two formulations share one certificate epilogue; the
//! solver picks per instance:
//!
//! * **Arc LP** (small shapes): `x[d][a]` = flow destined to switch `d` on
//!   arc `a`, plus the throughput scalar `t`; capacity rows
//!   `sum_d x[d][a] <= cap(a)` and per-(destination, node) conservation rows
//!   `outflow_d(v) - inflow_d(v) = t * T(v, d)`. This is the paper's Gurobi
//!   LP aggregated by destination (`O(n · m)` variables instead of
//!   `O(n^2 · m)`), and the battle-tested path for everything the evaluation
//!   layer short-circuits to the exact solver.
//!
//! * **Path column generation** (large shapes with few commodities): a
//!   restricted master over path variables — capacity rows plus one coverage
//!   row `sum_{p in P_j} x_p = t * d_j` per commodity — grown by shortest-path
//!   pricing under the capacity duals. The master has `m + k` rows instead of
//!   the arc LP's `m + |dests| · (n-1)`, which is what makes the 64-switch
//!   bench shapes tractable: hypercube-64 under a matching TM is 448 rows
//!   instead of 4416, and the product-form inverse stops drowning in fill-in.
//!   Convergence is certified, not assumed: each round derives the dual bound
//!   `D(l)/alpha(l)` from the clamped capacity duals — the exact quantity the
//!   emitted [`ThroughputCertificate`] carries — and the loop only terminates
//!   successfully once that bound closes onto the master value to within
//!   `COLGEN_GAP`. A warm-start hint seeds the column pool with shortest
//!   paths under the FPTAS's final length function (near-optimal duals).
//!
//! Degenerate inputs short-circuit *before* any LP is built: an empty traffic
//! matrix (or one with only self-demands / zero amounts) leaves `t` entirely
//! unconstrained in the LP, and a disconnected demand pair admits no flow at
//! any `t > 0`. Both return the strict-zero semantics the evaluation layer
//! promises instead of surfacing an unbounded-LP error.

use crate::certificate::ThroughputCertificate;
use crate::instance::FlowProblem;
use crate::ThroughputBounds;
use tb_graph::connectivity::connected_components;
use tb_graph::Graph;
use tb_lp::{ConstraintOp, LinearProgram, LpError};
use tb_traffic::TrafficMatrix;

/// Above this many arc-LP variables (`|dests| · m`), and provided the path
/// master would have strictly fewer rows, the solver switches to column
/// generation. Small instances keep the dense-grid arc LP: it needs no
/// pricing loop and its behavior is pinned by years of tests.
const ARC_LP_VAR_LIMIT: usize = 8192;

/// Relative duality gap at which column generation declares optimality. The
/// bound compared is the certificate's own `D(l)/alpha(l)`, so a successful
/// exit *is* a certified solve, not a heuristic stop.
const COLGEN_GAP: f64 = 1e-9;

/// Pricing-round cap. Well-posed instances close the gap in tens of rounds;
/// hitting this means numerical trouble and surfaces as
/// [`LpError::IterationLimit`].
const COLGEN_MAX_ROUNDS: usize = 400;

/// Certificate evidence in the layouts [`ThroughputCertificate::build`]
/// expects: `(t, aggregate flow per arc, served per commodity, lengths)`.
type Evidence = (f64, Vec<f64>, Vec<f64>, Vec<f64>);

/// Exact LP-based throughput solver.
#[derive(Debug, Clone, Default)]
pub struct ExactLpSolver;

impl ExactLpSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        ExactLpSolver
    }

    /// Computes the exact throughput of `tm` on `graph`.
    ///
    /// Returns an error if the LP solver fails (which, for a well-formed
    /// instance, only happens when the iteration limit is exceeded).
    pub fn solve(&self, graph: &Graph, tm: &TrafficMatrix) -> Result<ThroughputBounds, LpError> {
        Ok(self.solve_certified_with_hint(graph, tm, None)?.0)
    }

    /// Like [`solve`](Self::solve), but also returns a
    /// [`ThroughputCertificate`] built from the LP optimum: the aggregate
    /// optimal flow, per-commodity served amounts `t* · demand`, and the
    /// capacity-row duals as the length function. At an exact optimum the
    /// dual bound `D(l)/alpha(l)` collapses onto `t*`, so the certified gap
    /// is limited only by simplex rounding.
    pub fn solve_certified(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
    ) -> Result<(ThroughputBounds, ThroughputCertificate), LpError> {
        self.solve_certified_with_hint(graph, tm, None)
    }

    /// [`solve_certified`](Self::solve_certified) with an optional warm-start
    /// hint: a certificate from a prior (e.g. FPTAS) solve of the *same*
    /// instance. Its aggregate flow seeds the simplex crash basis; a useless
    /// hint silently falls back to the cold start, so the result is identical
    /// either way.
    pub fn solve_certified_with_hint(
        &self,
        graph: &Graph,
        tm: &TrafficMatrix,
        hint: Option<&ThroughputCertificate>,
    ) -> Result<(ThroughputBounds, ThroughputCertificate), LpError> {
        crate::record_solver_invocation();

        // Degenerate inputs, resolved before any LP exists. Demands that are
        // self-loops or zero-amount constrain nothing; if nothing else
        // remains, `t` would be unconstrained (unbounded LP), and the strict
        // semantics of the empty instance is an exact zero.
        let real: Vec<(usize, usize)> = tm
            .demands()
            .iter()
            .filter(|d| d.src != d.dst && d.amount > 0.0)
            .map(|d| (d.src, d.dst))
            .collect();
        if tm.num_flows() == 0 {
            return Ok((
                ThroughputBounds::exact(0.0),
                ThroughputCertificate::trivial_zero(),
            ));
        }
        let zero_cert = |prob: &FlowProblem| {
            let commodities = prob.num_commodities();
            ThroughputCertificate::build(
                prob,
                vec![0.0; prob.num_arcs()],
                vec![0.0; commodities],
                vec![1.0; prob.num_arcs()],
            )
        };
        if real.is_empty() {
            let prob = FlowProblem::new(graph, tm);
            return Ok((ThroughputBounds::exact(0.0), zero_cert(&prob)));
        }
        // Any disconnected pair pins the concurrent flow to zero: the LP
        // would grind to the same answer, the reachability check gets there
        // in one BFS sweep.
        let comp = connected_components(graph);
        if real.iter().any(|&(s, d)| comp[s] != comp[d]) {
            let prob = FlowProblem::new(graph, tm);
            return Ok((ThroughputBounds::exact(0.0), zero_cert(&prob)));
        }

        let prob = FlowProblem::new(graph, tm);
        let n = prob.num_nodes();
        let m = prob.num_arcs();
        let num_dest = {
            let mut d: Vec<usize> = tm.demands().iter().map(|d| d.dst).collect();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        // Formulation gate: column generation wins exactly when the arc grid
        // is too big for the simplex *and* the path master genuinely has
        // fewer rows (few commodities relative to the destination grid —
        // matching-style TMs, not all-to-all).
        let arc_vars = num_dest * m + 1;
        let k = prob.num_commodities();
        let (t, flow, served, lengths) = if arc_vars > ARC_LP_VAR_LIMIT && k < num_dest * (n - 1) {
            self.solve_path_colgen(&prob, hint)?
        } else {
            self.solve_arc_lp(&prob, tm, hint)?
        };

        let bounds = ThroughputBounds::exact(t);
        let mut cert = ThroughputCertificate::build(&prob, flow, served, lengths);
        // Simplex rounding can leave the derived dual bound a few ulps below
        // the primal value; shrink the served amounts minimally until the
        // bracket orders. The shift is O(gap) ~ 1e-12 relative, far inside
        // every verification tolerance.
        for _ in 0..4 {
            if cert.lower <= cert.upper || cert.lower <= 0.0 {
                break;
            }
            let scale = (cert.upper / cert.lower) * (1.0 - 1e-12);
            let served: Vec<f64> = cert.served.iter().map(|x| x * scale).collect();
            cert = ThroughputCertificate::build(&prob, cert.flow, served, cert.lengths);
        }
        Ok((bounds, cert))
    }

    /// The destination-aggregated arc LP: one shot, no pricing loop. Returns
    /// `(t, aggregate flow, served, lengths)` in certificate layouts.
    fn solve_arc_lp(
        &self,
        prob: &FlowProblem,
        tm: &TrafficMatrix,
        hint: Option<&ThroughputCertificate>,
    ) -> Result<Evidence, LpError> {
        let n = prob.num_nodes();
        let m = prob.num_arcs();

        // Destinations that actually receive traffic.
        let mut dest_ids: Vec<usize> = tm.demands().iter().map(|d| d.dst).collect();
        dest_ids.sort_unstable();
        dest_ids.dedup();
        let dest_index: std::collections::HashMap<usize, usize> =
            dest_ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        // Demand matrix entries T(v, d) for quick lookup.
        let mut demand_to: Vec<Vec<(usize, f64)>> = vec![Vec::new(); dest_ids.len()];
        for d in tm.demands() {
            demand_to[dest_index[&d.dst]].push((d.src, d.amount));
        }

        // In-arc lists, precomputed once (the per-row scan over all arcs was
        // quadratic in practice and dominated LP construction on the 64-switch
        // shapes).
        let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (aid, arc) in prob.arcs().iter().enumerate() {
            in_arcs[arc.to].push(aid);
        }

        let num_dest = dest_ids.len();
        // Variable layout: x[di][a] at index di * m + a, then t last.
        let t_var = num_dest * m;
        let mut lp = LinearProgram::new(t_var + 1);
        lp.set_objective(t_var, 1.0);

        // Capacity constraints, over the same shared arc-capacity view the
        // FPTAS initializes its length state from (`FlowProblem::arc_caps`).
        // These come first, so `duals[0..m]` are the arc length function.
        for (a, cap) in prob.arc_caps().enumerate() {
            let coeffs: Vec<(usize, f64)> = (0..num_dest).map(|di| (di * m + a, 1.0)).collect();
            lp.add_constraint(coeffs, ConstraintOp::Le, cap);
        }

        // Conservation constraints.
        for (di, &dest) in dest_ids.iter().enumerate() {
            for (v, in_v) in in_arcs.iter().enumerate() {
                if v == dest {
                    continue;
                }
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for (_, aid) in prob.out_arcs(v) {
                    coeffs.push((di * m + aid, 1.0));
                }
                for &aid in in_v {
                    coeffs.push((di * m + aid, -1.0));
                }
                let demand = demand_to[di]
                    .iter()
                    .find(|&&(src, _)| src == v)
                    .map(|&(_, amt)| amt)
                    .unwrap_or(0.0);
                coeffs.push((t_var, -demand));
                lp.add_constraint(coeffs, ConstraintOp::Eq, 0.0);
            }
        }

        let solution = match hint.filter(|h| h.flow.len() == m) {
            Some(h) => {
                // Distribute the hint's aggregate flow across destinations by
                // demand share — a guess, but the crash basis only needs the
                // big structural columns to be roughly right.
                let total: f64 = tm.total_demand();
                let mut guess = vec![0.0; t_var + 1];
                if total > 0.0 {
                    for (di, entries) in demand_to.iter().enumerate() {
                        let share: f64 = entries.iter().map(|&(_, amt)| amt).sum::<f64>() / total;
                        for (a, &f) in h.flow.iter().enumerate() {
                            guess[di * m + a] = f * share;
                        }
                    }
                }
                guess[t_var] = h.lower.max(0.0);
                tb_lp::solve_with_hint(&lp, &guess)?
            }
            None => tb_lp::solve(&lp)?,
        };
        let t = solution.values[t_var];

        // Certificate evidence straight from the LP optimum: aggregate flow,
        // proportional served amounts, capacity duals as lengths (clamped at
        // zero — a binding `<=` row's dual is nonnegative up to rounding).
        let mut flow = vec![0.0; m];
        for di in 0..num_dest {
            for (a, f) in flow.iter_mut().enumerate() {
                *f += solution.values[di * m + a];
            }
        }
        let lengths: Vec<f64> = solution.duals[..m].iter().map(|d| d.max(0.0)).collect();
        let mut served = Vec::with_capacity(prob.num_commodities());
        for s in prob.sources() {
            for &(_, demand) in &s.dests {
                served.push(t * demand);
            }
        }
        Ok((t, flow, served, lengths))
    }

    /// Path-formulation column generation for large, commodity-sparse shapes.
    ///
    /// Master (restricted to the current path pool `P`): maximize `t` s.t.
    /// `sum_{p ni a} x_p <= cap(a)` per arc and
    /// `sum_{p in P_j} x_p - t * d_j = 0` per commodity. Pricing adds, for
    /// every commodity, its shortest path under the clamped capacity duals;
    /// the loop exits once the dual bound those duals certify closes onto the
    /// master value. Returns `(t, aggregate flow, served, lengths)`.
    fn solve_path_colgen(
        &self,
        prob: &FlowProblem,
        hint: Option<&ThroughputCertificate>,
    ) -> Result<Evidence, LpError> {
        use std::collections::HashSet;

        let m = prob.num_arcs();
        let k = prob.num_commodities();
        let demands: Vec<f64> = prob
            .sources()
            .iter()
            .flat_map(|s| s.dests.iter().map(|&(_, d)| d))
            .collect();

        // Column pool: (commodity, arc list), deduplicated. Extra columns are
        // harmless (the master leaves them at zero), missing ones are what
        // pricing exists to find.
        let mut pool: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut seen: HashSet<(usize, Vec<u32>)> = HashSet::new();
        let mut admit = |pool: &mut Vec<(usize, Vec<u32>)>, paths: Vec<(usize, Vec<u32>)>| {
            let mut added = 0usize;
            for jp in paths {
                if seen.insert(jp.clone()) {
                    pool.push(jp);
                    added += 1;
                }
            }
            added
        };

        // Seed: hop-count shortest paths always; the hint's FPTAS length
        // function when present — its duals are near-optimal, so the paths
        // they select usually contain the optimal support outright.
        admit(&mut pool, shortest_paths(prob, &vec![1.0; m]).1);
        if let Some(h) = hint.filter(|h| {
            h.lengths.len() == m && h.lengths.iter().all(|l| l.is_finite() && *l >= 0.0)
        }) {
            admit(&mut pool, shortest_paths(prob, &h.lengths).1);
        }

        let mut prev: Option<Vec<f64>> = None;
        for round in 0..COLGEN_MAX_ROUNDS {
            // Build the restricted master over the current pool. Variable 0
            // is `t`; path variables follow in pool order. Capacity rows come
            // first so `duals[0..m]` is the length function, matching the arc
            // LP's convention.
            let mut lp = LinearProgram::new(1 + pool.len());
            lp.set_objective(0, 1.0);
            let mut arc_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
            let mut cov_cols: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (p, (j, arcs)) in pool.iter().enumerate() {
                cov_cols[*j].push(1 + p);
                for &a in arcs {
                    arc_cols[a as usize].push(1 + p);
                }
            }
            for (a, cap) in prob.arc_caps().enumerate() {
                let coeffs: Vec<(usize, f64)> = arc_cols[a].iter().map(|&v| (v, 1.0)).collect();
                lp.add_constraint(coeffs, ConstraintOp::Le, cap);
            }
            for (j, cols) in cov_cols.iter().enumerate() {
                let mut coeffs: Vec<(usize, f64)> = cols.iter().map(|&v| (v, 1.0)).collect();
                coeffs.push((0, -demands[j]));
                lp.add_constraint(coeffs, ConstraintOp::Eq, 0.0);
            }

            // Warm-start each resolve from the previous round's point (new
            // columns enter at zero); `t = 0, x = 0` keeps round one cold.
            let solution = match &prev {
                Some(vals) => {
                    let mut guess = vals.clone();
                    guess.resize(1 + pool.len(), 0.0);
                    tb_lp::solve_with_hint(&lp, &guess)?
                }
                None => tb_lp::solve(&lp)?,
            };
            let t = solution.values[0];
            let lengths: Vec<f64> = solution.duals[..m].iter().map(|d| d.max(0.0)).collect();

            // Termination is the certificate's own test: the dual bound
            // `D(l)/alpha(l)` under the clamped duals is a valid upper bound
            // for ANY such l, so once it meets the (always-feasible) master
            // value the solve is provably optimal — and the bound collapses
            // onto `t` in the emitted certificate.
            let d_l: f64 = prob
                .arcs()
                .iter()
                .zip(&lengths)
                .map(|(arc, &l)| arc.cap * l)
                .sum();
            let (alpha, priced) = shortest_paths(prob, &lengths);
            let dual = d_l / alpha;
            if dual.is_finite() && dual - t <= COLGEN_GAP * dual.abs().max(1e-300) {
                let mut flow = vec![0.0; m];
                let mut served = vec![0.0; k];
                for (p, (j, arcs)) in pool.iter().enumerate() {
                    let x = solution.values[1 + p].max(0.0);
                    if x == 0.0 {
                        continue;
                    }
                    served[*j] += x;
                    for &a in arcs {
                        flow[a as usize] += x;
                    }
                }
                return Ok((t, flow, served, lengths));
            }

            // Price: every commodity's shortest path under the duals. A round
            // that adds nothing while the gap is open means the optimum needs
            // a tie path the parent tree didn't pick — deterministically
            // perturb the lengths to rotate through the ties.
            if admit(&mut pool, priced) == 0 {
                let scale = lengths.iter().cloned().fold(0.0f64, f64::max) * 1e-9 + 1e-15;
                let jitter: Vec<f64> = lengths
                    .iter()
                    .enumerate()
                    .map(|(a, &l)| {
                        l + scale * (((a + 1) * (round + 1)) as f64 * 0.618_033_988_749_895).fract()
                    })
                    .collect();
                if admit(&mut pool, shortest_paths(prob, &jitter).1) == 0 {
                    return Err(LpError::IterationLimit);
                }
            }
            prev = Some(solution.values);
        }
        Err(LpError::IterationLimit)
    }
}

/// One Dijkstra per source under `lengths`: returns the demand-weighted
/// distance sum `alpha(lengths)` and, per commodity (source-major order),
/// the shortest path as an arc-id list read off the parent tree.
fn shortest_paths(prob: &FlowProblem, lengths: &[f64]) -> (f64, Vec<(usize, Vec<u32>)>) {
    let mut alpha = 0.0f64;
    let mut paths = Vec::with_capacity(prob.num_commodities());
    let mut j = 0usize;
    for s in prob.sources() {
        let (dist, parent) = prob.shortest_path_tree(s.src, lengths);
        for &(dst, demand) in &s.dests {
            alpha += demand * dist[dst];
            let mut arcs: Vec<u32> = Vec::new();
            let mut v = dst;
            while v != s.src {
                match parent[v] {
                    Some((p, aid)) => {
                        arcs.push(aid as u32);
                        v = p;
                    }
                    None => break, // unreachable: guarded upstream
                }
            }
            arcs.reverse();
            paths.push((j, arcs));
            j += 1;
        }
    }
    (alpha, paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::verify_certificate;
    use crate::fleischer::{FleischerConfig, FleischerSolver};
    use tb_graph::Graph;
    use tb_traffic::{synthetic, Demand, TrafficMatrix};

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn single_link() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 2.0)]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 0.5).abs() < 1e-6);
    }

    #[test]
    fn shared_bottleneck_is_split_evenly() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cycle_uses_both_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0)]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complete_graph_all_to_all() {
        // K4 with one server per switch under A2A: by symmetry every demand of
        // 1/4 can ride its direct link (capacity 1), and the volumetric bound
        // caps throughput at total capacity / total demand·1 hop = 12 / 3 = 4.
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_unit_edge(i, j);
            }
        }
        let tm = synthetic::all_to_all(&[1, 1, 1, 1]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!(b.lower >= 4.0 - 1e-6, "got {}", b.lower);
    }

    #[test]
    fn agrees_with_fleischer_on_small_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let fleischer = FleischerSolver::new(FleischerConfig::precise());
        for trial in 0..4 {
            // Small random connected graph.
            let n = 6;
            let g = tb_graph::random::random_regular_graph(n, 3, trial);
            let mut demands = Vec::new();
            for _ in 0..4 {
                let s = rng.gen_range(0..n);
                let mut t = rng.gen_range(0..n);
                if t == s {
                    t = (t + 1) % n;
                }
                demands.push(demand(s, t, 1.0 + rng.gen::<f64>()));
            }
            let tm = TrafficMatrix::new(n, demands);
            let exact = ExactLpSolver::new().solve(&g, &tm).unwrap();
            let approx = fleischer.solve(&g, &tm);
            assert!(
                approx.lower <= exact.lower + 1e-6,
                "feasible value exceeds optimum: {} > {}",
                approx.lower,
                exact.lower
            );
            assert!(
                approx.upper >= exact.lower - 1e-6,
                "upper bound below optimum: {} < {}",
                approx.upper,
                exact.lower
            );
            assert!(
                (exact.lower - approx.lower) / exact.lower < 0.05,
                "trial {trial}: exact {} vs approx {}",
                exact.lower,
                approx.lower
            );
        }
    }

    #[test]
    fn longest_matching_throughput_on_ring_matches_hand_computation() {
        // C6, one server per switch, longest matching pairs antipodes
        // (3 hops). Total demand·hops = 6*3 = 18 > capacity 12, so the
        // volumetric bound gives t <= 12/18 = 2/3, and routing each demand
        // half clockwise/half counterclockwise achieves it.
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = Graph::from_edges(6, &edges);
        let servers = vec![1usize; 6];
        let tm = synthetic::longest_matching(&g, &servers, true);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 2.0 / 3.0).abs() < 1e-6, "got {}", b.lower);
    }

    #[test]
    fn empty_tm_returns_strict_zero_instead_of_unbounded() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::empty(2);
        let (b, cert) = ExactLpSolver::new().solve_certified(&g, &tm).unwrap();
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
        verify_certificate(&g, &tm, &cert, 0.0).unwrap();
    }

    #[test]
    fn self_demands_only_return_strict_zero() {
        // Only self-loops: no conservation row references t, so the raw LP
        // would be unbounded. The strict semantics is the degenerate zero.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 0, 1.0), demand(1, 1, 2.0)]);
        let (b, cert) = ExactLpSolver::new().solve_certified(&g, &tm).unwrap();
        assert_eq!(b.lower, 0.0);
        verify_certificate(&g, &tm, &cert, 0.0).unwrap();
    }

    #[test]
    fn all_disconnected_demands_return_strict_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0), demand(2, 1, 1.0)]);
        let (b, cert) = ExactLpSolver::new().solve_certified(&g, &tm).unwrap();
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
        verify_certificate(&g, &tm, &cert, 0.0).unwrap();
    }

    #[test]
    fn certified_solve_verifies_with_tight_gap() {
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = Graph::from_edges(6, &edges);
        let tm = synthetic::longest_matching(&g, &[1usize; 6], true);
        let (b, cert) = ExactLpSolver::new().solve_certified(&g, &tm).unwrap();
        assert!((b.lower - 2.0 / 3.0).abs() < 1e-6);
        // The exact certificate's bracket collapses onto the optimum and
        // verifies independently at a tight eps.
        verify_certificate(&g, &tm, &cert, 1e-4).unwrap();
        assert!((cert.lower - b.lower).abs() <= 1e-7 * (1.0 + b.lower.abs()));
        assert!((cert.upper - b.lower).abs() <= 1e-4 * (1.0 + b.lower.abs()));
    }

    #[test]
    fn warm_started_certified_solve_matches_cold() {
        let g = tb_graph::random::random_regular_graph(8, 3, 7);
        let tm = synthetic::random_permutation(&[1usize; 8], 5);
        let solver = ExactLpSolver::new();
        let (cold, _) = solver.solve_certified(&g, &tm).unwrap();
        // Warm start from the FPTAS certificate of the same instance.
        let fptas = FleischerSolver::new(FleischerConfig::precise());
        let outcome = fptas.solve_outcome_with(&g, &tm, &mut crate::SolverWorkspace::new());
        let (warm, cert) = solver
            .solve_certified_with_hint(&g, &tm, Some(&outcome.certificate))
            .unwrap();
        assert!((warm.lower - cold.lower).abs() < 1e-6);
        verify_certificate(&g, &tm, &cert, 1e-4).unwrap();
        // And the FPTAS bounds must bracket the exact optimum.
        assert!(outcome.bounds.lower <= cold.lower + 1e-6);
        assert!(outcome.bounds.upper >= cold.lower - 1e-6);
    }

    /// Builds a `dim`-dimensional hypercube with one server per switch.
    fn hypercube(dim: usize) -> Graph {
        let n = 1usize << dim;
        let mut edges = Vec::new();
        for v in 0..n {
            for b in 0..dim {
                let u = v ^ (1 << b);
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// hypercube-32 under a longest matching sits past `ARC_LP_VAR_LIMIT`
    /// with few commodities, so this exercises the column-generation path on
    /// every test run (the 64-switch shape stays an ignored release test).
    /// The colgen optimum must be bracketed by precise FPTAS bounds and its
    /// certificate must verify at the colgen gap.
    #[test]
    fn column_generation_certifies_hypercube_32() {
        let g = hypercube(5);
        let tm = synthetic::longest_matching(&g, &vec![1usize; 32], true);
        let fptas = FleischerSolver::new(FleischerConfig::precise());
        let outcome = fptas.solve_outcome_with(&g, &tm, &mut crate::SolverWorkspace::new());
        let (b, cert) = ExactLpSolver::new()
            .solve_certified_with_hint(&g, &tm, Some(&outcome.certificate))
            .unwrap();
        verify_certificate(&g, &tm, &cert, 1e-4).unwrap();
        assert!((cert.upper - cert.lower) <= 1e-6 * cert.upper.max(1.0));
        assert!(outcome.bounds.lower <= b.lower + 1e-6);
        assert!(outcome.bounds.upper >= b.lower - 1e-6);
    }

    #[test]
    #[ignore = "64-switch certification; run with --release in CI"]
    fn certifies_hypercube_64_against_the_fptas() {
        // hypercube-64 (dimension 6), longest-matching TM: the bench shape
        // the acceptance gate names. Built inline to keep tb_flow free of a
        // topology dependency.
        let g = hypercube(6);
        let tm = synthetic::longest_matching(&g, &vec![1usize; 64], true);

        let fptas = FleischerSolver::new(FleischerConfig::precise());
        let outcome = fptas.solve_outcome_with(&g, &tm, &mut crate::SolverWorkspace::new());
        let t0 = std::time::Instant::now();
        let (b, cert) = ExactLpSolver::new()
            .solve_certified_with_hint(&g, &tm, Some(&outcome.certificate))
            .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        verify_certificate(&g, &tm, &cert, 1e-4).unwrap();
        assert!(
            outcome.bounds.lower <= b.lower + 1e-6 && outcome.bounds.upper >= b.lower - 1e-6,
            "FPTAS bounds [{}, {}] do not bracket the LP optimum {}",
            outcome.bounds.lower,
            outcome.bounds.upper,
            b.lower
        );
        println!(
            "hypercube-64/lm: exact t* = {:.6}, certified in {secs:.2}s (FPTAS bracket [{:.6}, {:.6}])",
            b.lower, outcome.bounds.lower, outcome.bounds.upper
        );
    }
}
