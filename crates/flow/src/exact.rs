//! Exact throughput via the destination-aggregated arc LP, solved with the
//! bundled simplex (`tb-lp`).
//!
//! Variables: `x[d][a]` = flow destined to switch `d` on arc `a`, plus the
//! throughput scalar `t`. Constraints:
//!
//! * capacity: for every arc `a`, `sum_d x[d][a] <= cap(a)`;
//! * conservation: for every destination `d` and node `v != d`,
//!   `outflow_d(v) - inflow_d(v) = t * T(v, d)`;
//!
//! maximize `t`. This is the same LP the paper solves with Gurobi, aggregated
//! by destination so the variable count is `O(n · m)` instead of `O(n^2 · m)`.
//! Intended for small instances (a few dozen switches): it is the ground truth
//! the FPTAS is validated against in tests, and the solver used for the small
//! §III-B case studies.

use crate::instance::FlowProblem;
use crate::ThroughputBounds;
use tb_graph::Graph;
use tb_lp::{ConstraintOp, LinearProgram, LpError};
use tb_traffic::TrafficMatrix;

/// Exact LP-based throughput solver for small instances.
#[derive(Debug, Clone, Default)]
pub struct ExactLpSolver;

impl ExactLpSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        ExactLpSolver
    }

    /// Computes the exact throughput of `tm` on `graph`.
    ///
    /// Returns an error if the LP solver fails (which, for a well-formed
    /// instance, only happens when the iteration limit is exceeded).
    pub fn solve(&self, graph: &Graph, tm: &TrafficMatrix) -> Result<ThroughputBounds, LpError> {
        crate::record_solver_invocation();
        let prob = FlowProblem::new(graph, tm);
        let n = prob.num_nodes();
        let m = prob.num_arcs();

        // Destinations that actually receive traffic.
        let mut dest_ids: Vec<usize> = tm.demands().iter().map(|d| d.dst).collect();
        dest_ids.sort_unstable();
        dest_ids.dedup();
        let dest_index: std::collections::HashMap<usize, usize> =
            dest_ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        // Demand matrix entries T(v, d) for quick lookup.
        let mut demand_to: Vec<Vec<(usize, f64)>> = vec![Vec::new(); dest_ids.len()];
        for d in tm.demands() {
            demand_to[dest_index[&d.dst]].push((d.src, d.amount));
        }

        let num_dest = dest_ids.len();
        // Variable layout: x[di][a] at index di * m + a, then t last.
        let t_var = num_dest * m;
        let mut lp = LinearProgram::new(t_var + 1);
        lp.set_objective(t_var, 1.0);

        // Capacity constraints, over the same shared arc-capacity view the
        // FPTAS initializes its length state from (`FlowProblem::arc_caps`).
        for (a, cap) in prob.arc_caps().enumerate() {
            let coeffs: Vec<(usize, f64)> = (0..num_dest).map(|di| (di * m + a, 1.0)).collect();
            lp.add_constraint(coeffs, ConstraintOp::Le, cap);
        }

        // Conservation constraints.
        for (di, &dest) in dest_ids.iter().enumerate() {
            for v in 0..n {
                if v == dest {
                    continue;
                }
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for (_, aid) in prob.out_arcs(v) {
                    coeffs.push((di * m + aid, 1.0));
                }
                // Inflow arcs: arcs whose head is v.
                for (aid, arc) in prob.arcs().iter().enumerate() {
                    if arc.to == v {
                        coeffs.push((di * m + aid, -1.0));
                    }
                }
                let demand = demand_to[di]
                    .iter()
                    .find(|&&(src, _)| src == v)
                    .map(|&(_, amt)| amt)
                    .unwrap_or(0.0);
                coeffs.push((t_var, -demand));
                lp.add_constraint(coeffs, ConstraintOp::Eq, 0.0);
            }
        }

        let solution = tb_lp::solve(&lp)?;
        Ok(ThroughputBounds::exact(solution.objective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleischer::{FleischerConfig, FleischerSolver};
    use tb_graph::Graph;
    use tb_traffic::{synthetic, Demand, TrafficMatrix};

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn single_link() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 2.0)]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 0.5).abs() < 1e-6);
    }

    #[test]
    fn shared_bottleneck_is_split_evenly() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0), demand(1, 2, 1.0)]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cycle_uses_both_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0)]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complete_graph_all_to_all() {
        // K4 with one server per switch under A2A: by symmetry every demand of
        // 1/4 can ride its direct link (capacity 1), and the volumetric bound
        // caps throughput at total capacity / total demand·1 hop = 12 / 3 = 4.
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_unit_edge(i, j);
            }
        }
        let tm = synthetic::all_to_all(&[1, 1, 1, 1]);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!(b.lower >= 4.0 - 1e-6, "got {}", b.lower);
    }

    #[test]
    fn agrees_with_fleischer_on_small_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let fleischer = FleischerSolver::new(FleischerConfig::precise());
        for trial in 0..4 {
            // Small random connected graph.
            let n = 6;
            let g = tb_graph::random::random_regular_graph(n, 3, trial);
            let mut demands = Vec::new();
            for _ in 0..4 {
                let s = rng.gen_range(0..n);
                let mut t = rng.gen_range(0..n);
                if t == s {
                    t = (t + 1) % n;
                }
                demands.push(demand(s, t, 1.0 + rng.gen::<f64>()));
            }
            let tm = TrafficMatrix::new(n, demands);
            let exact = ExactLpSolver::new().solve(&g, &tm).unwrap();
            let approx = fleischer.solve(&g, &tm);
            assert!(
                approx.lower <= exact.lower + 1e-6,
                "feasible value exceeds optimum: {} > {}",
                approx.lower,
                exact.lower
            );
            assert!(
                approx.upper >= exact.lower - 1e-6,
                "upper bound below optimum: {} < {}",
                approx.upper,
                exact.lower
            );
            assert!(
                (exact.lower - approx.lower) / exact.lower < 0.05,
                "trial {trial}: exact {} vs approx {}",
                exact.lower,
                approx.lower
            );
        }
    }

    #[test]
    fn longest_matching_throughput_on_ring_matches_hand_computation() {
        // C6, one server per switch, longest matching pairs antipodes
        // (3 hops). Total demand·hops = 6*3 = 18 > capacity 12, so the
        // volumetric bound gives t <= 12/18 = 2/3, and routing each demand
        // half clockwise/half counterclockwise achieves it.
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = Graph::from_edges(6, &edges);
        let servers = vec![1usize; 6];
        let tm = synthetic::longest_matching(&g, &servers, true);
        let b = ExactLpSolver::new().solve(&g, &tm).unwrap();
        assert!((b.lower - 2.0 / 3.0).abs() < 1e-6, "got {}", b.lower);
    }
}
