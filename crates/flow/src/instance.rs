//! The directed-arc view of a throughput instance.
//!
//! The switch graph is undirected, but the fluid-flow model treats every link
//! as a pair of unidirectional arcs of the link's capacity (§II-A). Solvers
//! work on this arc view, with commodities grouped by source switch so that a
//! single shortest-path tree serves every destination of that source.
//!
//! Adjacency is stored as a [`CsrGraph`] (flat offsets + arc arrays) whose
//! length indices are the arc ids, so the shared `tb_graph` SSSP kernel runs
//! directly over it with the solver's per-arc length function.

use rayon::prelude::*;
use tb_graph::{CsrGraph, Graph};
use tb_traffic::TrafficMatrix;

/// One directed arc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Tail (origin) switch.
    pub from: usize,
    /// Head (destination) switch.
    pub to: usize,
    /// Capacity in this direction.
    pub cap: f64,
}

/// Demands of one source switch.
#[derive(Debug, Clone)]
pub struct SourceDemands {
    /// The source switch.
    pub src: usize,
    /// (destination switch, demand) pairs, each demand > 0.
    pub dests: Vec<(usize, f64)>,
}

/// A throughput instance: arcs plus commodities grouped by source.
#[derive(Debug, Clone)]
pub struct FlowProblem {
    num_nodes: usize,
    arcs: Vec<Arc>,
    /// CSR over the directed arcs; length indices are arc ids.
    csr: CsrGraph,
    /// Commodities grouped by source.
    sources: Vec<SourceDemands>,
    /// Total demand over all commodities.
    total_demand: f64,
}

/// Run the per-source pre-pass in parallel only past this source count (the
/// vendored rayon spawns scoped threads per call, so tiny instances are
/// cheaper sequentially).
const PAR_SOURCES_MIN: usize = 32;

impl FlowProblem {
    /// Builds the arc view of `graph` with the demands of `tm`.
    ///
    /// # Panics
    /// Panics if the TM references switches outside the graph or has no
    /// demands.
    pub fn new(graph: &Graph, tm: &TrafficMatrix) -> Self {
        assert_eq!(
            graph.num_nodes(),
            tm.num_switches(),
            "traffic matrix does not match the graph size"
        );
        assert!(tm.num_flows() > 0, "traffic matrix has no demands");
        let n = graph.num_nodes();
        let mut arcs = Vec::with_capacity(2 * graph.num_edges());
        for e in graph.edges() {
            arcs.push(Arc {
                from: e.u,
                to: e.v,
                cap: e.cap,
            });
            arcs.push(Arc {
                from: e.v,
                to: e.u,
                cap: e.cap,
            });
        }
        let csr = CsrGraph::from_directed_arcs(
            n,
            arcs.iter().enumerate().map(|(aid, a)| (a.from, a.to, aid)),
        );
        let mut by_src: std::collections::BTreeMap<usize, Vec<(usize, f64)>> =
            std::collections::BTreeMap::new();
        for d in tm.demands() {
            by_src.entry(d.src).or_default().push((d.dst, d.amount));
        }
        let sources: Vec<SourceDemands> = by_src
            .into_iter()
            .map(|(src, dests)| SourceDemands { src, dests })
            .collect();
        let total_demand = tm.total_demand();
        FlowProblem {
            num_nodes: n,
            arcs,
            csr,
            sources,
            total_demand,
        }
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs (twice the number of links).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The arc list.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// The CSR adjacency over the directed arcs (length indices = arc ids);
    /// this is what the SSSP kernel traverses.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Outgoing arcs of `u` as `(head, arc id)` pairs.
    pub fn out_arcs(&self, u: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.csr.neighbors(u)
    }

    /// Commodities grouped by source.
    pub fn sources(&self) -> &[SourceDemands] {
        &self.sources
    }

    /// Total number of commodities (flows).
    pub fn num_commodities(&self) -> usize {
        self.sources.iter().map(|s| s.dests.len()).sum()
    }

    /// Sum of all demands.
    pub fn total_demand(&self) -> f64 {
        self.total_demand
    }

    /// Per-arc capacities in arc-id order — the shared accessor the solvers
    /// initialize their length/constraint state from (the FPTAS feeds it to
    /// [`tb_flow::lengths::MwuLengths`](crate::MwuLengths), the exact LP
    /// builds its capacity rows from it).
    pub fn arc_caps(&self) -> impl Iterator<Item = f64> + '_ {
        self.arcs.iter().map(|a| a.cap)
    }

    /// Total directed capacity (sum of arc capacities).
    pub fn total_capacity(&self) -> f64 {
        self.arcs.iter().map(|a| a.cap).sum()
    }

    /// Dijkstra over arcs from `src` under per-arc lengths; returns distances
    /// and, for each node, the (parent node, arc id) used to reach it.
    ///
    /// Compatibility wrapper over the shared `tb_graph` kernel that allocates
    /// the result vectors; the solver hot path drives
    /// [`tb_graph::sssp_csr`] with a reused workspace instead.
    pub fn shortest_path_tree(
        &self,
        src: usize,
        arc_len: &[f64],
    ) -> (Vec<f64>, Vec<Option<(usize, usize)>>) {
        let mut ws = tb_graph::SsspWorkspace::new();
        tb_graph::sssp_csr(&self.csr, src, arc_len, None, &mut ws);
        let tree = ws.to_tree(self.num_nodes);
        (tree.dist, tree.parent)
    }

    /// The volumetric throughput estimate of §II-B: total capacity divided by
    /// (total demand × average hop length of the demands). Used to pre-scale
    /// the instance so the FPTAS runs a predictable number of phases; it is
    /// *not* a valid bound by itself (paths may be longer than shortest).
    ///
    /// Returns `0.0` iff some demand pair is disconnected — the solver uses
    /// this to fold the reachability check into the same BFS sweep (which
    /// runs across sources in parallel for larger instances).
    pub fn volumetric_estimate(&self, graph: &Graph) -> f64 {
        let per_source = |s: &SourceDemands| -> f64 {
            let dist = tb_graph::bfs_distances(graph, s.src);
            let mut hops = 0.0;
            for &(dst, d) in &s.dests {
                let h = dist[dst];
                if h == tb_graph::shortest_path::UNREACHABLE {
                    return f64::NAN; // flags a disconnected pair
                }
                hops += d * h as f64;
            }
            hops
        };
        let weighted_hops: f64 = if self.sources.len() >= PAR_SOURCES_MIN {
            self.sources.par_iter().map(per_source).sum()
        } else {
            self.sources.iter().map(per_source).sum()
        };
        if weighted_hops.is_nan() {
            return 0.0;
        }
        if weighted_hops <= 0.0 {
            return 1.0;
        }
        self.total_capacity() / weighted_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;
    use tb_traffic::{Demand, TrafficMatrix};

    fn tiny() -> (Graph, TrafficMatrix) {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(
            3,
            vec![
                Demand {
                    src: 0,
                    dst: 2,
                    amount: 1.0,
                },
                Demand {
                    src: 2,
                    dst: 0,
                    amount: 0.5,
                },
            ],
        );
        (g, tm)
    }

    #[test]
    fn arc_view() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        assert_eq!(p.num_arcs(), 4);
        assert_eq!(p.num_commodities(), 2);
        assert_eq!(p.sources().len(), 2);
        assert!((p.total_capacity() - 4.0).abs() < 1e-12);
        assert!((p.total_demand() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arc_directions() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        let mut seen = 0;
        for (v, aid) in p.out_arcs(1) {
            assert_eq!(p.arcs()[aid].from, 1);
            assert_eq!(p.arcs()[aid].to, v);
            seen += 1;
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn csr_matches_arc_list() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        assert_eq!(p.csr().num_arcs(), p.num_arcs());
        for u in 0..p.num_nodes() {
            for (v, aid) in p.csr().neighbors(u) {
                assert_eq!(p.arcs()[aid].from, u);
                assert_eq!(p.arcs()[aid].to, v);
            }
        }
    }

    #[test]
    fn shortest_path_tree_on_arcs() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        let len = vec![1.0; p.num_arcs()];
        let (dist, parent) = p.shortest_path_tree(0, &len);
        assert_eq!(dist[2], 2.0);
        let (pnode, _) = parent[2].unwrap();
        assert_eq!(pnode, 1);
    }

    #[test]
    fn volumetric_estimate_path() {
        // Path of 2 links: total directed capacity 4, demand 1.0 at 2 hops +
        // 0.5 at 2 hops = 3 weighted hops -> estimate 4/3.
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        assert!((p.volumetric_estimate(&g) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn volumetric_estimate_zero_when_disconnected() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(
            4,
            vec![Demand {
                src: 0,
                dst: 3,
                amount: 1.0,
            }],
        );
        let p = FlowProblem::new(&g, &tm);
        assert_eq!(p.volumetric_estimate(&g), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_tm_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::empty(2);
        FlowProblem::new(&g, &tm);
    }
}
