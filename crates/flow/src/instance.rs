//! The directed-arc view of a throughput instance.
//!
//! The switch graph is undirected, but the fluid-flow model treats every link
//! as a pair of unidirectional arcs of the link's capacity (§II-A). Solvers
//! work on this arc view, with commodities grouped by source switch so that a
//! single shortest-path tree serves every destination of that source.

use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// One directed arc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Tail (origin) switch.
    pub from: usize,
    /// Head (destination) switch.
    pub to: usize,
    /// Capacity in this direction.
    pub cap: f64,
}

/// Demands of one source switch.
#[derive(Debug, Clone)]
pub struct SourceDemands {
    /// The source switch.
    pub src: usize,
    /// (destination switch, demand) pairs, each demand > 0.
    pub dests: Vec<(usize, f64)>,
}

/// A throughput instance: arcs plus commodities grouped by source.
#[derive(Debug, Clone)]
pub struct FlowProblem {
    num_nodes: usize,
    arcs: Vec<Arc>,
    /// Outgoing arcs of each node as (head, arc id).
    out_arcs: Vec<Vec<(usize, usize)>>,
    /// Commodities grouped by source.
    sources: Vec<SourceDemands>,
    /// Total demand over all commodities.
    total_demand: f64,
}

impl FlowProblem {
    /// Builds the arc view of `graph` with the demands of `tm`.
    ///
    /// # Panics
    /// Panics if the TM references switches outside the graph or has no
    /// demands.
    pub fn new(graph: &Graph, tm: &TrafficMatrix) -> Self {
        assert_eq!(
            graph.num_nodes(),
            tm.num_switches(),
            "traffic matrix does not match the graph size"
        );
        assert!(tm.num_flows() > 0, "traffic matrix has no demands");
        let n = graph.num_nodes();
        let mut arcs = Vec::with_capacity(2 * graph.num_edges());
        let mut out_arcs = vec![Vec::new(); n];
        for e in graph.edges() {
            let a0 = arcs.len();
            arcs.push(Arc { from: e.u, to: e.v, cap: e.cap });
            out_arcs[e.u].push((e.v, a0));
            let a1 = arcs.len();
            arcs.push(Arc { from: e.v, to: e.u, cap: e.cap });
            out_arcs[e.v].push((e.u, a1));
        }
        let mut by_src: std::collections::BTreeMap<usize, Vec<(usize, f64)>> =
            std::collections::BTreeMap::new();
        for d in tm.demands() {
            by_src.entry(d.src).or_default().push((d.dst, d.amount));
        }
        let sources: Vec<SourceDemands> = by_src
            .into_iter()
            .map(|(src, dests)| SourceDemands { src, dests })
            .collect();
        let total_demand = tm.total_demand();
        FlowProblem {
            num_nodes: n,
            arcs,
            out_arcs,
            sources,
            total_demand,
        }
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs (twice the number of links).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The arc list.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Outgoing arcs of `u` as (head, arc id).
    pub fn out_arcs(&self, u: usize) -> &[(usize, usize)] {
        &self.out_arcs[u]
    }

    /// Commodities grouped by source.
    pub fn sources(&self) -> &[SourceDemands] {
        &self.sources
    }

    /// Total number of commodities (flows).
    pub fn num_commodities(&self) -> usize {
        self.sources.iter().map(|s| s.dests.len()).sum()
    }

    /// Sum of all demands.
    pub fn total_demand(&self) -> f64 {
        self.total_demand
    }

    /// Total directed capacity (sum of arc capacities).
    pub fn total_capacity(&self) -> f64 {
        self.arcs.iter().map(|a| a.cap).sum()
    }

    /// Dijkstra over arcs from `src` under per-arc lengths; returns distances
    /// and, for each node, the (parent node, arc id) used to reach it.
    pub fn shortest_path_tree(
        &self,
        src: usize,
        arc_len: &[f64],
    ) -> (Vec<f64>, Vec<Option<(usize, usize)>>) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry {
            dist: f64,
            node: usize,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.num_nodes;
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![None; n];
        let mut heap = BinaryHeap::with_capacity(n);
        dist[src] = 0.0;
        heap.push(Entry { dist: 0.0, node: src });
        while let Some(Entry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, aid) in &self.out_arcs[u] {
                let nd = d + arc_len[aid];
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = Some((u, aid));
                    heap.push(Entry { dist: nd, node: v });
                }
            }
        }
        (dist, parent)
    }

    /// The volumetric throughput estimate of §II-B: total capacity divided by
    /// (total demand × average hop length of the demands). Used to pre-scale
    /// the instance so the FPTAS runs a predictable number of phases; it is
    /// *not* a valid bound by itself (paths may be longer than shortest).
    pub fn volumetric_estimate(&self, graph: &Graph) -> f64 {
        let unit = vec![1.0; self.num_arcs()];
        let _ = unit;
        let mut weighted_hops = 0.0;
        for s in &self.sources {
            let dist = tb_graph::bfs_distances(graph, s.src);
            for &(dst, d) in &s.dests {
                let h = dist[dst];
                if h == tb_graph::shortest_path::UNREACHABLE {
                    return 0.0;
                }
                weighted_hops += d * h as f64;
            }
        }
        if weighted_hops <= 0.0 {
            return 1.0;
        }
        self.total_capacity() / weighted_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;
    use tb_traffic::{Demand, TrafficMatrix};

    fn tiny() -> (Graph, TrafficMatrix) {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(
            3,
            vec![
                Demand { src: 0, dst: 2, amount: 1.0 },
                Demand { src: 2, dst: 0, amount: 0.5 },
            ],
        );
        (g, tm)
    }

    #[test]
    fn arc_view() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        assert_eq!(p.num_arcs(), 4);
        assert_eq!(p.num_commodities(), 2);
        assert_eq!(p.sources().len(), 2);
        assert!((p.total_capacity() - 4.0).abs() < 1e-12);
        assert!((p.total_demand() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arc_directions() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        for &(v, aid) in p.out_arcs(1) {
            assert_eq!(p.arcs()[aid].from, 1);
            assert_eq!(p.arcs()[aid].to, v);
        }
    }

    #[test]
    fn shortest_path_tree_on_arcs() {
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        let len = vec![1.0; p.num_arcs()];
        let (dist, parent) = p.shortest_path_tree(0, &len);
        assert_eq!(dist[2], 2.0);
        let (pnode, _) = parent[2].unwrap();
        assert_eq!(pnode, 1);
    }

    #[test]
    fn volumetric_estimate_path() {
        // Path of 2 links: total directed capacity 4, demand 1.0 at 2 hops +
        // 0.5 at 2 hops = 3 weighted hops -> estimate 4/3.
        let (g, tm) = tiny();
        let p = FlowProblem::new(&g, &tm);
        assert!((p.volumetric_estimate(&g) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_tm_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::empty(2);
        FlowProblem::new(&g, &tm);
    }
}
