//! Path-restricted throughput and the subflow-counting estimator used to
//! replicate the Yuan et al. comparison (Fig 15 of the paper).
//!
//! Yuan et al. (SC'13) route each flow over `K` paths chosen by their LLSKR
//! scheme and *estimate* throughput by counting, for each subflow, the maximum
//! number of subflows sharing a link on its path and inverting that count.
//! The paper replicates this estimate (Comparison 1), then recomputes
//! throughput exactly under the same path restriction (Comparison 2), and
//! finally equalizes equipment (Comparison 3). This module provides:
//!
//! * [`k_shortest_path_sets`] — a K-shortest-paths route generator standing in
//!   for LLSKR (documented substitution in `DESIGN.md`),
//! * [`SubflowCountingEstimator`] — the counting heuristic,
//! * [`PathRestrictedSolver`] — maximum concurrent flow restricted to the
//!   given path sets (multiplicative-weights FPTAS over the path sets).

use crate::lengths::{ArcLengths, MwuLengths};
use crate::ThroughputBounds;
use std::collections::HashMap;
use tb_graph::shortest_path::k_shortest_paths;
use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// The set of allowed paths for one commodity.
#[derive(Debug, Clone)]
pub struct CommodityPaths {
    /// Source switch.
    pub src: usize,
    /// Destination switch.
    pub dst: usize,
    /// Demand.
    pub demand: f64,
    /// Allowed paths, each a node sequence from `src` to `dst`.
    pub paths: Vec<Vec<usize>>,
}

/// Computes `k` shortest paths for every demand of `tm`, the stand-in for the
/// LLSKR path selection.
pub fn k_shortest_path_sets(graph: &Graph, tm: &TrafficMatrix, k: usize) -> Vec<CommodityPaths> {
    tm.demands()
        .iter()
        .map(|d| CommodityPaths {
            src: d.src,
            dst: d.dst,
            demand: d.amount,
            paths: k_shortest_paths(graph, d.src, d.dst, k),
        })
        .collect()
}

fn path_links(path: &[usize]) -> Vec<(usize, usize)> {
    path.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Yuan et al.'s subflow-counting throughput estimator: each commodity is
/// split into equal subflows (one per path); a subflow's rate is the inverse
/// of the maximum number of subflows crossing any link on its path; a
/// commodity's throughput is the sum of its subflows' rates; the estimator
/// reports the *average* commodity throughput (that is what [48] measured).
#[derive(Debug, Clone, Default)]
pub struct SubflowCountingEstimator;

impl SubflowCountingEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        SubflowCountingEstimator
    }

    /// Estimates average per-flow throughput for the given path sets.
    pub fn estimate(&self, commodities: &[CommodityPaths]) -> f64 {
        // Count subflows per directed link.
        let mut link_subflows: HashMap<(usize, usize), usize> = HashMap::new();
        for c in commodities {
            for p in &c.paths {
                for l in path_links(p) {
                    *link_subflows.entry(l).or_insert(0) += 1;
                }
            }
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for c in commodities {
            if c.paths.is_empty() {
                continue;
            }
            let mut flow_rate = 0.0;
            for p in &c.paths {
                let max_share = path_links(p)
                    .iter()
                    .map(|l| link_subflows[l])
                    .max()
                    .unwrap_or(1);
                flow_rate += 1.0 / max_share as f64;
            }
            total += flow_rate;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Maximum concurrent flow restricted to explicit path sets, solved with the
/// same multiplicative-weights machinery as the unrestricted FPTAS — the
/// shared [`MwuLengths`] state (delta init, multiplicative updates,
/// incremental `D(l)`, path pricing) — but with the shortest-path oracle
/// replaced by "cheapest allowed path".
#[derive(Debug, Clone)]
pub struct PathRestrictedSolver {
    /// Multiplicative step size; must lie in `(0, 0.5)` (the shared
    /// [`MwuLengths`] state asserts the FPTAS step-size range, where the
    /// pre-`MwuLengths` code silently accepted out-of-range values).
    pub epsilon: f64,
    /// Target relative gap between the feasible value and the dual bound.
    pub target_gap: f64,
    /// Phase cap.
    pub max_phases: usize,
}

impl Default for PathRestrictedSolver {
    fn default() -> Self {
        PathRestrictedSolver {
            epsilon: 0.05,
            target_gap: 0.03,
            max_phases: 20_000,
        }
    }
}

impl PathRestrictedSolver {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes throughput bounds when each commodity may only use its listed
    /// paths. Commodities with no path make the throughput zero.
    ///
    /// # Panics
    /// Panics if [`epsilon`](PathRestrictedSolver::epsilon) is outside
    /// `(0, 0.5)`.
    pub fn solve(&self, graph: &Graph, commodities: &[CommodityPaths]) -> ThroughputBounds {
        crate::record_solver_invocation();
        if commodities.is_empty() {
            return ThroughputBounds::exact(0.0);
        }
        if commodities
            .iter()
            .any(|c| c.paths.is_empty() || c.demand <= 0.0)
        {
            return ThroughputBounds::exact(0.0);
        }
        // Directed link capacities from the graph (sum of parallel edges).
        let mut cap: HashMap<(usize, usize), f64> = HashMap::new();
        for e in graph.edges() {
            *cap.entry((e.u, e.v)).or_insert(0.0) += e.cap;
            *cap.entry((e.v, e.u)).or_insert(0.0) += e.cap;
        }
        // Index the links that appear in any path.
        let mut link_ids: HashMap<(usize, usize), usize> = HashMap::new();
        let mut link_caps: Vec<f64> = Vec::new();
        let mut paths_as_links: Vec<Vec<Vec<usize>>> = Vec::with_capacity(commodities.len());
        for c in commodities {
            let mut plinks = Vec::with_capacity(c.paths.len());
            for p in &c.paths {
                let mut ids = Vec::with_capacity(p.len().saturating_sub(1));
                for l in path_links(p) {
                    let cap_l = *cap
                        .get(&l)
                        .unwrap_or_else(|| panic!("path uses non-existent link {l:?}"));
                    let id = *link_ids.entry(l).or_insert_with(|| {
                        link_caps.push(cap_l);
                        link_caps.len() - 1
                    });
                    ids.push(id);
                }
                plinks.push(ids);
            }
            paths_as_links.push(plinks);
        }
        let m = link_caps.len();
        let eps = self.epsilon;
        // The shared MWU length state (delta init, multiplicative updates,
        // incremental D(l)) — the same machinery the Fleischer solver runs
        // on, in its quotient-update form (see `lengths::MwuLengths`).
        let mut mwu = MwuLengths::new();
        mwu.reset(eps, link_caps.iter().copied());
        let mut flow_link = vec![0.0f64; m];
        let mut routed = vec![0.0f64; commodities.len()];

        // Pre-scale demands so the optimum is around 1 (volumetric estimate
        // over the shortest allowed path). Path sets are non-empty here (the
        // guard above returned zero otherwise), but stay panic-free anyway.
        let mut weighted_hops = 0.0;
        for (ci, c) in commodities.iter().enumerate() {
            let min_hops = paths_as_links[ci]
                .iter()
                .map(|p| p.len())
                .min()
                .unwrap_or(0) as f64;
            weighted_hops += c.demand * min_hops;
        }
        let total_cap: f64 = link_caps.iter().sum();
        let scale = if weighted_hops > 0.0 {
            total_cap / weighted_hops
        } else {
            1.0
        };
        let demands: Vec<f64> = commodities.iter().map(|c| c.demand * scale).collect();

        let mut best_lower = 0.0f64;
        let mut best_upper = f64::INFINITY;
        let mut phase = 0usize;
        'phases: while phase < self.max_phases && !mwu.saturated() {
            for (ci, plinks) in paths_as_links.iter().enumerate() {
                let mut remaining = demands[ci];
                while remaining > 1e-15 {
                    if mwu.saturated() {
                        break 'phases;
                    }
                    // Cheapest allowed path under current lengths. `total_cmp`
                    // gives a total order even if a cost ever became NaN, and
                    // the path set is non-empty (guarded at entry), but an
                    // empty set still must not panic: skip the commodity.
                    let Some((best_path, _)) = plinks
                        .iter()
                        .map(|ids| (ids, mwu.path_cost(ids.iter().copied())))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                    else {
                        break;
                    };
                    let bottleneck = best_path
                        .iter()
                        .map(|&i| link_caps[i])
                        .fold(f64::INFINITY, f64::min);
                    let f = remaining.min(bottleneck);
                    // A zero-capacity (or otherwise degenerate, e.g. NaN)
                    // bottleneck routes nothing; without this guard the
                    // `while remaining > 1e-15` loop would never progress.
                    if f.is_nan() || f <= 1e-15 {
                        break;
                    }
                    for &i in best_path {
                        flow_link[i] += f;
                        mwu.apply_quotient(i, f);
                    }
                    routed[ci] += f;
                    remaining -= f;
                }
            }
            phase += 1;
            if phase.is_multiple_of(8) || mwu.saturated() {
                let (lo, up) = self.bounds(&paths_as_links, &demands, &routed, &flow_link, &mwu);
                best_lower = best_lower.max(lo);
                best_upper = best_upper.min(up);
                if best_upper.is_finite()
                    && (best_upper - best_lower) / best_upper <= self.target_gap
                {
                    break 'phases;
                }
            }
        }
        let (lo, up) = self.bounds(&paths_as_links, &demands, &routed, &flow_link, &mwu);
        best_lower = best_lower.max(lo);
        best_upper = best_upper.min(up);
        if !best_upper.is_finite() {
            best_upper = best_lower;
        }
        ThroughputBounds {
            lower: best_lower * scale,
            upper: best_upper * scale,
        }
    }

    fn bounds(
        &self,
        paths_as_links: &[Vec<Vec<usize>>],
        demands: &[f64],
        routed: &[f64],
        flow_link: &[f64],
        mwu: &MwuLengths,
    ) -> (f64, f64) {
        let mut mu = f64::INFINITY;
        for (f, c) in flow_link.iter().zip(mwu.caps()) {
            if *f > 1e-15 {
                mu = mu.min(c / f);
            }
        }
        let lower = if mu.is_finite() {
            let worst = routed
                .iter()
                .zip(demands)
                .map(|(r, d)| r / d)
                .fold(f64::INFINITY, f64::min);
            if worst.is_finite() {
                worst * mu
            } else {
                0.0
            }
        } else {
            0.0
        };
        let mut alpha = 0.0;
        for (ci, plinks) in paths_as_links.iter().enumerate() {
            let min_cost = plinks
                .iter()
                .map(|ids| mwu.path_cost(ids.iter().copied()))
                .fold(f64::INFINITY, f64::min);
            alpha += demands[ci] * min_cost;
        }
        (lower, mwu.dual_bound(alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;
    use tb_traffic::{Demand, TrafficMatrix};

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn path_sets_are_generated() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0)]);
        let sets = k_shortest_path_sets(&g, &tm, 2);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].paths.len(), 2);
    }

    #[test]
    fn restricted_single_path_limits_throughput() {
        // C4 with the demand restricted to a single path: throughput 1 instead
        // of 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let one_path = vec![CommodityPaths {
            src: 0,
            dst: 2,
            demand: 1.0,
            paths: vec![vec![0, 1, 2]],
        }];
        let b = PathRestrictedSolver::new().solve(&g, &one_path);
        assert!((b.lower - 1.0).abs() < 0.05, "lower {}", b.lower);
        let two_paths = vec![CommodityPaths {
            src: 0,
            dst: 2,
            demand: 1.0,
            paths: vec![vec![0, 1, 2], vec![0, 3, 2]],
        }];
        let b2 = PathRestrictedSolver::new().solve(&g, &two_paths);
        assert!((b2.lower - 2.0).abs() < 0.1, "lower {}", b2.lower);
    }

    #[test]
    fn missing_path_means_zero() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let c = vec![CommodityPaths {
            src: 0,
            dst: 1,
            demand: 1.0,
            paths: vec![],
        }];
        assert_eq!(PathRestrictedSolver::new().solve(&g, &c).lower, 0.0);
    }

    #[test]
    fn disconnected_pair_returns_zero_without_panicking() {
        // End-to-end regression for the empty-allowed-path-set panic: a
        // disconnected pair yields an empty k-shortest-path set, and the
        // solver must report zero throughput (as `FleischerSolver` does for
        // disconnected demands) instead of unwrapping an empty min.
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let tm = TrafficMatrix::new(4, vec![demand(0, 1, 1.0), demand(0, 3, 1.0)]);
        let sets = k_shortest_path_sets(&g, &tm, 4);
        assert!(sets.iter().any(|c| c.paths.is_empty()));
        let b = PathRestrictedSolver::new().solve(&g, &sets);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
    }

    #[test]
    fn negligible_capacity_bottleneck_terminates() {
        // A commodity whose only path crosses an (effectively) zero-capacity
        // link can route nothing useful; the phase loop must detect the
        // negligible bottleneck and stop routing the commodity instead of
        // spinning on `remaining > 1e-15` in vanishing steps.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1e-20);
        g.add_unit_edge(1, 2);
        let c = vec![CommodityPaths {
            src: 0,
            dst: 2,
            demand: 1.0,
            paths: vec![vec![0, 1, 2]],
        }];
        let b = PathRestrictedSolver::new().solve(&g, &c);
        assert!(b.lower <= 1e-9, "lower {}", b.lower);
    }

    #[test]
    fn subflow_counting_on_shared_link() {
        // Two flows forced over the same single link: each gets 1/2.
        let commodities = vec![
            CommodityPaths {
                src: 0,
                dst: 1,
                demand: 1.0,
                paths: vec![vec![0, 1]],
            },
            CommodityPaths {
                src: 2,
                dst: 1,
                demand: 1.0,
                paths: vec![vec![2, 0, 1]],
            },
        ];
        let est = SubflowCountingEstimator::new().estimate(&commodities);
        assert!((est - 0.5).abs() < 1e-9);
    }

    #[test]
    fn subflow_counting_overestimates_vs_lp_when_paths_overlap_unevenly() {
        // The counting heuristic ignores that a subflow's bottleneck link may
        // be shared with subflows whose own bottleneck is elsewhere; the paper
        // exploits exactly this to show LP-based throughput is the right
        // metric. Here we just check both are computable on the same input.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 2, 1.0), demand(1, 3, 1.0)]);
        let sets = k_shortest_path_sets(&g, &tm, 2);
        let est = SubflowCountingEstimator::new().estimate(&sets);
        let lp = PathRestrictedSolver::new().solve(&g, &sets);
        assert!(est > 0.0);
        assert!(lp.lower > 0.0);
    }
}
