//! # tb-flow
//!
//! Throughput solvers for topobench.
//!
//! Throughput of a topology `G` under a traffic matrix `T` is defined (§II-A
//! of the paper) as the largest `t` such that `T · t` is feasible as a
//! multicommodity flow in `G` — the *maximum concurrent flow*. The paper
//! solves the corresponding LP with Gurobi; this crate provides:
//!
//! * [`FleischerSolver`] — a combinatorial FPTAS (Fleischer / Garg–Könemann
//!   multiplicative weights) that produces a *feasible* flow (lower bound) and
//!   a dual length-function bound (upper bound), with adaptive termination
//!   once the two are within a configurable gap. This is the workhorse used by
//!   all experiments.
//! * [`ExactLpSolver`] — the arc-based LP aggregated by destination, solved
//!   exactly with the bundled simplex (`tb-lp`); practical for graphs up to a
//!   few dozen switches and used to validate the FPTAS in tests.
//! * [`restricted`] — path-restricted throughput (the LLSKR replication used
//!   by Fig 15) and the subflow-counting estimator of Yuan et al.
//!
//! All solvers consume a [`tb_graph::Graph`] (switch-level, per-direction edge
//! capacities) and a [`tb_traffic::TrafficMatrix`].

pub mod certificate;
pub mod exact;
pub mod fleischer;
pub mod instance;
pub mod lengths;
pub mod restricted;

pub use certificate::{verify_certificate, CertificateError, ThroughputCertificate};
pub use exact::ExactLpSolver;
pub use fleischer::{
    auto_steal_chunk, BatchGate, FleischerConfig, FleischerSolver, PricingMode, SolveOutcome,
    SolveStats, SolverWorkspace, WarmGate,
};
pub use instance::FlowProblem;
pub use lengths::{ArcLengths, LengthSnapshot, MwuLengths, StaleLengths, WarmRescale, WarmStart};

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use tb_graph::connectivity::connected_components;
use tb_graph::Graph;
use tb_traffic::{Demand, TrafficMatrix};

/// Process-wide count of throughput-solver invocations (FPTAS, exact LP and
/// path-restricted). The sweep engine's cache tests read deltas of this
/// counter to prove that cache-hot runs perform zero solves.
static SOLVE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Returns the cumulative number of solver invocations in this process.
pub fn solver_invocations() -> u64 {
    SOLVE_COUNT.load(Ordering::Relaxed)
}

pub(crate) fn record_solver_invocation() {
    SOLVE_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// The result of a throughput computation: a bracketing interval around the
/// true LP optimum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBounds {
    /// A value achieved by an explicit feasible flow (`lower <= optimum`).
    pub lower: f64,
    /// A dual/certified upper bound (`optimum <= upper`).
    pub upper: f64,
}

impl ThroughputBounds {
    /// An exact result (both bounds equal).
    pub fn exact(value: f64) -> Self {
        ThroughputBounds {
            lower: value,
            upper: value,
        }
    }

    /// The feasible value; this is what experiments report as "throughput".
    pub fn value(&self) -> f64 {
        self.lower
    }

    /// Relative gap between the bounds (0 for exact results).
    pub fn gap(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            (self.upper - self.lower) / self.upper
        }
    }
}

/// Structured status of one throughput solve, reported by
/// [`FleischerSolver::solve_outcome_with`] alongside the bounds.
///
/// `Converged` means the solver met its accuracy contract (the classical
/// FPTAS termination or the target bound gap). Anything else is a *degraded*
/// result: the bounds are still valid (`lower` is achieved by an explicit
/// feasible flow, `upper` is a dual certificate), but the caller should know
/// the instance was pathological.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The bounds bracket the optimum within the solver's accuracy contract.
    Converged,
    /// The phase/time budget ran out first; the bounds are the best
    /// (1±ε)-bracketed values seen so far.
    BudgetExhausted,
    /// Some demand pairs were disconnected and dropped before solving; the
    /// bounds describe the surviving demands only (zero when none survive).
    DisconnectedDemandsDropped {
        /// Demands dropped because their endpoints share no component.
        dropped: usize,
        /// Demands that survived and were actually solved.
        kept: usize,
    },
}

impl SolveStatus {
    /// True unless the solve fully converged on the full demand set.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, SolveStatus::Converged)
    }

    /// A short, stable label for artifacts and logs.
    pub fn label(&self) -> String {
        match self {
            SolveStatus::Converged => "converged".to_string(),
            SolveStatus::BudgetExhausted => "budget-exhausted".to_string(),
            SolveStatus::DisconnectedDemandsDropped { dropped, kept } => {
                format!("dropped-{dropped}-kept-{kept}")
            }
        }
    }
}

/// Splits `tm` into the demands whose endpoints share a connected component
/// of `graph`, dropping the rest. Returns the (possibly empty) surviving
/// traffic matrix and the number of dropped demands. Self-demands always
/// survive. This is the reachability partition used by the degradation-aware
/// solve path: a single disconnected pair forces the *concurrent* flow to
/// zero, so graceful degradation means solving the reachable sub-TM instead.
pub fn drop_disconnected_demands(graph: &Graph, tm: &TrafficMatrix) -> (TrafficMatrix, usize) {
    let comp = connected_components(graph);
    let kept: Vec<Demand> = tm
        .demands()
        .iter()
        .filter(|d| comp[d.src] == comp[d.dst])
        .copied()
        .collect();
    let dropped = tm.num_flows() - kept.len();
    (TrafficMatrix::new(tm.num_switches(), kept), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_gap() {
        let b = ThroughputBounds {
            lower: 0.9,
            upper: 1.0,
        };
        assert!((b.gap() - 0.1).abs() < 1e-12);
        assert_eq!(b.value(), 0.9);
        let e = ThroughputBounds::exact(2.0);
        assert_eq!(e.gap(), 0.0);
    }
}
