//! # tb-flow
//!
//! Throughput solvers for topobench.
//!
//! Throughput of a topology `G` under a traffic matrix `T` is defined (§II-A
//! of the paper) as the largest `t` such that `T · t` is feasible as a
//! multicommodity flow in `G` — the *maximum concurrent flow*. The paper
//! solves the corresponding LP with Gurobi; this crate provides:
//!
//! * [`FleischerSolver`] — a combinatorial FPTAS (Fleischer / Garg–Könemann
//!   multiplicative weights) that produces a *feasible* flow (lower bound) and
//!   a dual length-function bound (upper bound), with adaptive termination
//!   once the two are within a configurable gap. This is the workhorse used by
//!   all experiments.
//! * [`ExactLpSolver`] — the arc-based LP aggregated by destination, solved
//!   exactly with the bundled simplex (`tb-lp`); practical for graphs up to a
//!   few dozen switches and used to validate the FPTAS in tests.
//! * [`restricted`] — path-restricted throughput (the LLSKR replication used
//!   by Fig 15) and the subflow-counting estimator of Yuan et al.
//!
//! All solvers consume a [`tb_graph::Graph`] (switch-level, per-direction edge
//! capacities) and a [`tb_traffic::TrafficMatrix`].

pub mod exact;
pub mod fleischer;
pub mod instance;
pub mod lengths;
pub mod restricted;

pub use exact::ExactLpSolver;
pub use fleischer::{FleischerConfig, FleischerSolver, SolveStats, SolverWorkspace};
pub use instance::FlowProblem;
pub use lengths::{ArcLengths, LengthSnapshot, MwuLengths};

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of throughput-solver invocations (FPTAS, exact LP and
/// path-restricted). The sweep engine's cache tests read deltas of this
/// counter to prove that cache-hot runs perform zero solves.
static SOLVE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Returns the cumulative number of solver invocations in this process.
pub fn solver_invocations() -> u64 {
    SOLVE_COUNT.load(Ordering::Relaxed)
}

pub(crate) fn record_solver_invocation() {
    SOLVE_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// The result of a throughput computation: a bracketing interval around the
/// true LP optimum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBounds {
    /// A value achieved by an explicit feasible flow (`lower <= optimum`).
    pub lower: f64,
    /// A dual/certified upper bound (`optimum <= upper`).
    pub upper: f64,
}

impl ThroughputBounds {
    /// An exact result (both bounds equal).
    pub fn exact(value: f64) -> Self {
        ThroughputBounds {
            lower: value,
            upper: value,
        }
    }

    /// The feasible value; this is what experiments report as "throughput".
    pub fn value(&self) -> f64 {
        self.lower
    }

    /// Relative gap between the bounds (0 for exact results).
    pub fn gap(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            (self.upper - self.lower) / self.upper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_gap() {
        let b = ThroughputBounds {
            lower: 0.9,
            upper: 1.0,
        };
        assert!((b.gap() - 0.1).abs() < 1e-12);
        assert_eq!(b.value(), 0.9);
        let e = ThroughputBounds::exact(2.0);
        assert_eq!(e.gap(), 0.0);
    }
}
