//! Shared plumbing for the experiment harness binaries.
//!
//! Every figure and table of the paper is registered as a **scenario** in
//! [`registry`]: a declarative grid of sweep cells plus a renderer (see
//! [`topobench::sweep`]). The per-figure binaries (`fig02`, …, `table02`,
//! `theorem1_demo`) are thin wrappers that run their scenario through the
//! engine; the `sweep` binary drives any scenario by name, and
//! `sweep --list` prints the authoritative figure index (replacing the old
//! hand-maintained per-binary index).
//!
//! Command-line convention (parsed strictly; unknown flags are errors):
//!
//! * `--full`     — run the paper-scale instance ladder (slow); the default
//!   is a reduced ladder that finishes in minutes on a laptop,
//! * `--seed N`   — change the base RNG seed,
//! * `--csv`      — additionally write `results/<figure>.csv` per table and
//!   the unified JSON artifact `results/<scenario>.json`,
//! * `--jobs N`   — worker threads for cell execution (`1` forces a fully
//!   serial run; results are bit-identical either way),
//! * `--solver-jobs N` — solver-level parallelism (defaults to
//!   `TB_SOLVER_JOBS`, else 1): with `N > 1` each FPTAS solve runs
//!   batch-parallel MWU phases. **Orthogonal to `--jobs`**: `--jobs` splits
//!   *cells* across workers, `--solver-jobs` splits *one solve* — the knob
//!   for runs dominated by a few huge cells. With `--jobs > 1` the cell pool
//!   takes precedence (intra-solve fan-out runs inline on the cell worker;
//!   results are identical either way, only the parallel axis changes).
//!   Unlike `--jobs`, turning this on switches to a different (equally
//!   valid) solver trajectory, so it keys new cache entries — one set for
//!   all `N > 1`, since only the on/off decision affects values — and is
//!   not for golden runs (`--write-golden` rejects it),
//! * `--filter S` — run only cells whose id contains `S` (prints a raw cell
//!   dump instead of the figure tables; artifacts land in
//!   `results/<scenario>.partial.json`, marked `"partial": true`),
//! * `--no-cache` — bypass the content-keyed result cache.
//!
//! Results are cached under `results/cache/`, one JSON file per unique
//! (cell spec, eval config) pair, so re-runs and interrupted `--full`
//! ladders resume instead of recomputing; `--seed`/`--full` changes key new
//! cache entries automatically.

use std::path::PathBuf;
use topobench::sweep::{run_scenario, Scenario, SweepOptions, SweepReport};
use topobench::EvalConfig;

pub use tb_topology::families::Scale;
pub use topobench::sweep::{f3, Table};

mod scenarios;
pub use scenarios::registry;
pub mod verify;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Run the paper-scale ladder instead of the reduced one.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Write a CSV copy of each table and the JSON artifact under `results/`.
    pub csv: bool,
    /// Worker threads for cell execution (None = all cores).
    pub jobs: Option<usize>,
    /// Solver-level parallelism (None = `TB_SOLVER_JOBS` env, else 1): with
    /// more than one solver job, each FPTAS solve runs batch-parallel MWU
    /// phases. Orthogonal to [`jobs`](RunOptions::jobs) (cells vs one solve).
    pub solver_jobs: Option<usize>,
    /// Only run cells whose id contains this substring.
    pub filter: Option<String>,
    /// Bypass the on-disk result cache.
    pub no_cache: bool,
    /// Attach optimality certificates to throughput cells (keys new cache
    /// entries; values stay bit-identical to uncertified runs).
    pub certify: bool,
    /// Warm-start chaining: ladder-rung solves of one family are chained,
    /// each seeded from the previous rung's final MWU lengths, and
    /// relative-throughput samples chain within a cell. Keys new cache
    /// entries (warm trajectories differ from cold ones); not for golden
    /// runs (`--write-golden` rejects it).
    pub warm: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            full: false,
            seed: 1,
            csv: false,
            jobs: None,
            solver_jobs: None,
            filter: None,
            no_cache: false,
            certify: false,
            warm: false,
        }
    }
}

/// An extra flag a binary accepts on top of the shared set.
#[derive(Debug, Clone, Copy)]
pub struct ExtraFlag {
    /// Flag name, including the leading dashes (e.g. `"--list"`).
    pub name: &'static str,
    /// Whether the flag consumes a value argument.
    pub takes_value: bool,
    /// One-line help text.
    pub help: &'static str,
}

const COMMON_HELP: &str =
    "  --full           run the paper-scale instance ladder (slow; default: reduced)
  --seed <N>       base RNG seed (default 1)
  --csv            also write results/<figure>.csv and results/<scenario>.json
  --jobs <N>       worker threads for sweep cells (1 = fully serial; default: all cores)
  --solver-jobs <N>  parallelism inside each solver call (batch-parallel MWU;
                   default: TB_SOLVER_JOBS, else 1). Orthogonal to --jobs:
                   --jobs splits cells, --solver-jobs splits one solve
  --filter <S>     only run cells whose id contains S (prints a raw cell dump)
  --no-cache       do not read or write results/cache/
  --certify        attach optimality certificates to throughput cells (for
                   `sweep verify`; values stay bit-identical, cache keys change)
  --warm           warm-start chaining: ladder-rung solves of one family are
                   seeded from the previous rung's MWU lengths (guarded by the
                   solver's warm-quality gate; keys new cache entries, not for
                   golden runs)
  --help           print this help";

impl RunOptions {
    /// Parses the shared options from `std::env::args`, exiting with help or
    /// a usage error as appropriate.
    pub fn from_args() -> Self {
        Self::from_args_with(&[]).0
    }

    /// Like [`RunOptions::from_args`], also accepting binary-specific flags;
    /// returns their parsed occurrences as `(name, value)` pairs (the value
    /// is empty for flags that take none).
    pub fn from_args_with(extra: &[ExtraFlag]) -> (Self, Vec<(String, String)>) {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(&args, extra) {
            Ok(mut parsed) => {
                // --solver-jobs defaults to the TB_SOLVER_JOBS environment
                // variable (a hard usage error when set to garbage).
                if parsed.0.solver_jobs.is_none() {
                    parsed.0.solver_jobs = solver_jobs_from_env();
                }
                let solver_jobs = parsed.0.solver_jobs.unwrap_or(1);
                // The worker pool reads RAYON_NUM_THREADS once at first use;
                // parsing happens before any parallel work, so it takes
                // effect. --jobs owns the pool; a fully serial cell run
                // (--jobs 1 executes cells in the caller thread, off the
                // pool) hands the pool to the intra-solver fan-out instead.
                if solver_jobs > 1 && parsed.0.jobs != Some(1) {
                    // Nested parallelism runs inline on the cell workers, so
                    // without --jobs 1 the batched schedule pays its extra
                    // pricing work with no intra-solve fan-out to show for it.
                    eprintln!(
                        "note: --solver-jobs parallelizes inside a solve only when cells run \
                         serially; pass --jobs 1 to hand the worker pool to the solver"
                    );
                }
                if let Some(jobs) = parsed.0.jobs {
                    let pool = if jobs == 1 { solver_jobs } else { jobs };
                    std::env::set_var("RAYON_NUM_THREADS", pool.to_string());
                } else if solver_jobs > 1 && std::env::var_os("RAYON_NUM_THREADS").is_none() {
                    // Default pool = all cores; widen it when the requested
                    // solver fan-out is larger than the machine. An explicit
                    // RAYON_NUM_THREADS pin in the environment always wins
                    // (it is the documented way to force a pool size).
                    let cores = std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1);
                    if solver_jobs > cores {
                        std::env::set_var("RAYON_NUM_THREADS", solver_jobs.to_string());
                    }
                }
                parsed
            }
            Err(ParseAbort::Help) => {
                let program = std::env::args()
                    .next()
                    .map(|p| {
                        PathBuf::from(p)
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default()
                    })
                    .unwrap_or_default();
                println!(
                    "Usage: {program} [OPTIONS]\n\nOptions:\n{}",
                    help_text(extra)
                );
                std::process::exit(0);
            }
            Err(ParseAbort::Usage(msg)) => {
                eprintln!("error: {msg}\n\nOptions:\n{}", help_text(extra));
                std::process::exit(2);
            }
        }
    }

    /// Strict parser: `--help` aborts with help, any unknown flag or missing
    /// value is a hard usage error.
    fn try_parse(
        args: &[String],
        extra: &[ExtraFlag],
    ) -> Result<(Self, Vec<(String, String)>), ParseAbort> {
        let mut opts = RunOptions::default();
        let mut extras = Vec::new();
        let mut i = 0;
        let value_of = |i: &mut usize, flag: &str| -> Result<String, ParseAbort> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| ParseAbort::Usage(format!("{flag} requires an argument")))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--help" | "-h" => return Err(ParseAbort::Help),
                "--full" => opts.full = true,
                "--csv" => opts.csv = true,
                "--no-cache" => opts.no_cache = true,
                "--certify" => opts.certify = true,
                "--warm" => opts.warm = true,
                "--seed" => {
                    let v = value_of(&mut i, "--seed")?;
                    opts.seed = v.parse().map_err(|_| {
                        ParseAbort::Usage(format!("--seed requires an integer, got '{v}'"))
                    })?;
                }
                "--jobs" => {
                    let v = value_of(&mut i, "--jobs")?;
                    let jobs: usize = v.parse().map_err(|_| {
                        ParseAbort::Usage(format!("--jobs requires an integer, got '{v}'"))
                    })?;
                    if jobs == 0 {
                        return Err(ParseAbort::Usage("--jobs must be at least 1".into()));
                    }
                    opts.jobs = Some(jobs);
                }
                "--solver-jobs" => {
                    let v = value_of(&mut i, "--solver-jobs")?;
                    let jobs: usize = v.parse().map_err(|_| {
                        ParseAbort::Usage(format!("--solver-jobs requires an integer, got '{v}'"))
                    })?;
                    if jobs == 0 {
                        return Err(ParseAbort::Usage("--solver-jobs must be at least 1".into()));
                    }
                    opts.solver_jobs = Some(jobs);
                }
                "--filter" => {
                    let v = value_of(&mut i, "--filter")?;
                    opts.filter = Some(v);
                }
                other => {
                    if let Some(flag) = extra.iter().find(|f| f.name == other) {
                        let value = if flag.takes_value {
                            value_of(&mut i, flag.name)?
                        } else {
                            String::new()
                        };
                        extras.push((flag.name.to_string(), value));
                    } else {
                        return Err(ParseAbort::Usage(format!("unknown argument: {other}")));
                    }
                }
            }
            i += 1;
        }
        Ok((opts, extras))
    }

    /// The topology instance ladder scale implied by the options.
    pub fn scale(&self) -> Scale {
        self.sweep_options().scale()
    }

    /// The evaluation configuration implied by the options.
    pub fn eval_config(&self) -> EvalConfig {
        self.sweep_options().eval_config()
    }

    /// The sweep-engine options implied by the options.
    pub fn sweep_options(&self) -> SweepOptions {
        let mut s = SweepOptions::new(self.full, self.seed);
        s.jobs = self.jobs;
        s.use_cache = !self.no_cache;
        s.filter = self.filter.clone();
        s.solver_jobs = self.solver_jobs;
        s.certify = self.certify;
        s.warm = self.warm;
        s
    }
}

/// The `TB_SOLVER_JOBS` environment default for `--solver-jobs`. Unset or
/// empty means "no default"; anything else must parse as a positive integer
/// (hard usage error otherwise, matching the strict flag parser).
fn solver_jobs_from_env() -> Option<usize> {
    let v = std::env::var("TB_SOLVER_JOBS").ok()?;
    let trimmed = v.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("error: TB_SOLVER_JOBS must be a positive integer, got '{v}'");
            std::process::exit(2);
        }
    }
}

enum ParseAbort {
    Help,
    Usage(String),
}

fn help_text(extra: &[ExtraFlag]) -> String {
    let mut out = String::new();
    for flag in extra {
        let name = if flag.takes_value {
            format!("{} <V>", flag.name)
        } else {
            flag.name.to_string()
        };
        out.push_str(&format!("  {name:<15}  {}\n", flag.help));
    }
    out.push_str(COMMON_HELP);
    out
}

/// Emits a standalone table to stdout and, if requested, to CSV (kept for
/// ad-hoc callers; scenario output goes through [`run_and_emit`]).
pub fn emit(table: &Table, name: &str, opts: &RunOptions) {
    table.print();
    if opts.csv {
        match table.write_csv(name) {
            Ok(path) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("failed to write CSV: {e}"),
        }
    }
}

/// Runs a scenario through the engine and prints its output exactly like the
/// pre-engine binaries did: preamble, tables (each followed by its CSV path
/// when `--csv` is set), then the expected-shape notes. With `--csv` the
/// unified JSON artifact is written and validated as well. Returns the run
/// report, the rendered output and the path of the artifact if one was
/// written (for callers that post-process them, e.g. the `sweep` driver's
/// summary, unconditional artifact and `--write-golden` copy).
pub fn run_and_emit(
    scenario: &Scenario,
    opts: &RunOptions,
) -> (SweepReport, topobench::sweep::RenderOutput, Option<PathBuf>) {
    let sopts = opts.sweep_options();
    let (report, render) = run_scenario(scenario, &sopts);
    for line in &render.preamble {
        println!("{line}");
    }
    for nt in &render.tables {
        nt.table.print();
        if opts.csv {
            match nt.table.write_csv(&nt.name) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
    }
    let artifact_path = if opts.csv {
        // Filtered runs write a clearly-marked partial artifact under
        // `results/<scenario>.partial.json` (never overwriting the complete
        // one), so `sweep diff` can still consume the subset.
        Some(write_and_validate_artifact(
            scenario, &sopts, &report, &render,
        ))
    } else {
        None
    };
    if !render.notes.is_empty() {
        println!("\n{}", render.notes);
    }
    (report, render, artifact_path)
}

/// Writes the JSON artifact for a finished run and validates it against the
/// schema, printing the path. Panics on validation failure (a bug in the
/// artifact writer, not in the run).
pub fn write_and_validate_artifact(
    scenario: &Scenario,
    sopts: &SweepOptions,
    report: &SweepReport,
    render: &topobench::sweep::RenderOutput,
) -> PathBuf {
    let path =
        topobench::sweep::write_artifact(scenario.name, scenario.title, sopts, report, render)
            .expect("failed to write JSON artifact");
    let text = std::fs::read_to_string(&path).expect("failed to re-read JSON artifact");
    topobench::sweep::validate_artifact(&text)
        .unwrap_or_else(|e| panic!("artifact failed schema validation: {e}"));
    println!("(wrote {}, schema valid)", path.display());
    path
}

/// Looks up a scenario by registry name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// Entry point for the per-figure binaries: parse shared flags, run the
/// named scenario, print its tables.
pub fn scenario_main(name: &str) {
    let opts = RunOptions::from_args();
    let scenario =
        find_scenario(name).unwrap_or_else(|| panic!("scenario '{name}' is not registered"));
    let _ = run_and_emit(&scenario, &opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOptions, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        match RunOptions::try_parse(&args, &[]) {
            Ok((o, _)) => Ok(o),
            Err(ParseAbort::Help) => Err("help".into()),
            Err(ParseAbort::Usage(m)) => Err(m),
        }
    }

    #[test]
    fn options_default() {
        let o = RunOptions::default();
        assert!(!o.full);
        assert_eq!(o.scale(), Scale::Small);
        assert!(o.sweep_options().use_cache);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--full",
            "--csv",
            "--seed",
            "9",
            "--jobs",
            "2",
            "--solver-jobs",
            "4",
            "--filter",
            "A2A",
            "--no-cache",
            "--certify",
            "--warm",
        ])
        .unwrap();
        assert!(o.full && o.csv && o.no_cache);
        assert!(o.certify && o.sweep_options().certify);
        assert!(o.warm && o.sweep_options().warm);
        assert!(o.sweep_options().eval_config().warm);
        assert_eq!(o.seed, 9);
        assert_eq!(o.jobs, Some(2));
        assert_eq!(o.solver_jobs, Some(4));
        assert_eq!(o.filter.as_deref(), Some("A2A"));
        assert!(!o.sweep_options().use_cache);
        // Both knobs reach the engine options; the eval config normalizes
        // the job count to the trajectory decision (2 = batched) so the
        // cell cache is keyed on what actually changes values.
        let s = o.sweep_options();
        assert_eq!(s.solver_jobs, Some(4));
        assert_eq!(s.eval_config().solver_jobs, 2);
        let mut s8 = o.sweep_options();
        s8.solver_jobs = Some(8);
        assert_eq!(
            format!("{:?}", s8.eval_config()),
            format!("{:?}", s.eval_config()),
            "distinct job counts must share one cache key"
        );
    }

    #[test]
    fn unknown_flag_is_a_hard_error() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn missing_values_are_errors() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "xyz"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--solver-jobs", "0"]).is_err());
        assert!(parse(&["--solver-jobs"]).is_err());
        assert!(parse(&["--solver-jobs", "x"]).is_err());
    }

    #[test]
    fn solver_jobs_defaults_to_serial() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.solver_jobs, None);
        // Unset means serial in the eval config (batching off, goldens safe).
        assert_eq!(o.sweep_options().eval_config().solver_jobs, 1);
    }

    #[test]
    fn help_is_recognized() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn extra_flags_are_collected() {
        let args: Vec<String> = ["--scenario", "fig02", "--list"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let extra = [
            ExtraFlag {
                name: "--scenario",
                takes_value: true,
                help: "",
            },
            ExtraFlag {
                name: "--list",
                takes_value: false,
                help: "",
            },
        ];
        let (_, extras) = RunOptions::try_parse(&args, &extra)
            .map_err(|_| ())
            .unwrap();
        assert_eq!(extras.len(), 2);
        assert_eq!(extras[0], ("--scenario".to_string(), "fig02".to_string()));
        assert_eq!(extras[1].0, "--list");
    }

    #[test]
    fn registry_is_complete_and_unique() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        assert_eq!(
            names.len(),
            15,
            "all 13 figure/table scenarios plus the failure sweep and the design search registered"
        );
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for expected in [
            "fig02",
            "fig03",
            "fig04",
            "fig05_06",
            "fig07",
            "fig08",
            "fig09",
            "fig10_11",
            "fig12",
            "fig13_14",
            "fig15",
            "table02",
            "theorem1_demo",
            "failures",
            "search",
        ] {
            assert!(names.contains(&expected), "missing scenario {expected}");
        }
    }
}
