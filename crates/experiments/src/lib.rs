//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary in this crate regenerates one table or figure of the paper
//! (see `DESIGN.md` for the full index). They share a tiny command-line
//! convention:
//!
//! * `--full`   — run the paper-scale instance ladder (slow); the default is a
//!   reduced ladder that finishes in minutes on a laptop,
//! * `--seed N` — change the base RNG seed,
//! * `--csv`    — additionally write `results/<figure>.csv`.
//!
//! Output is printed as aligned text tables whose rows correspond to the data
//! series of the original figure.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use topobench::EvalConfig;

pub use tb_topology::families::Scale;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Run the paper-scale ladder instead of the reduced one.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Write a CSV copy of the output under `results/`.
    pub csv: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            full: false,
            seed: 1,
            csv: false,
        }
    }
}

impl RunOptions {
    /// Parses options from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = RunOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.full = true,
                "--csv" => opts.csv = true,
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires an integer argument");
                }
                other => eprintln!("ignoring unknown argument: {other}"),
            }
            i += 1;
        }
        opts
    }

    /// The topology instance ladder scale implied by the options.
    pub fn scale(&self) -> Scale {
        if self.full {
            Scale::Full
        } else {
            Scale::Small
        }
    }

    /// The evaluation configuration implied by the options.
    pub fn eval_config(&self) -> EvalConfig {
        let mut cfg = if self.full {
            EvalConfig::paper()
        } else {
            EvalConfig::fast()
        };
        cfg.seed = self.seed;
        cfg
    }
}

/// A simple text table collector that can also be written to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (converted to strings).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Appends a row of pre-formatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table to stdout with aligned columns.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Convenience: format a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Emits the table to stdout and, if requested, to CSV.
pub fn emit(table: &Table, name: &str, opts: &RunOptions) {
    table.print();
    if opts.csv {
        match table.write_csv(name) {
            Ok(path) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("failed to write CSV: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row_strings(vec!["2".into(), "y".into()]);
        assert_eq!(t.num_rows(), 2);
        t.print();
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn options_default() {
        let o = RunOptions::default();
        assert!(!o.full);
        assert_eq!(o.scale(), Scale::Small);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.23456), "1.235");
    }
}
