//! The scenario registry: every table and figure of the paper, expressed as
//! a declarative sweep over the engine in [`topobench::sweep`].
//!
//! Each scenario is a `build` function (expands the cell grid, pinning every
//! seed from the run options) and a `render` function (turns the completed
//! cells back into the figure's tables). Renderers only read cell results and
//! cheap topology metadata captured as labels at expansion time — all solver
//! work happens in the cells, where it is deduplicated, parallelized and
//! cached.

use tb_cuts::ALL_ESTIMATORS;
use tb_flow::ThroughputBounds;
use tb_topology::families::ALL_FAMILIES;
use tb_topology::hyperx::design_search;
use tb_topology::natural::natural_meta;
use topobench::sweep::{
    f3, CellSet, CellSpec, FbMatrix, NamedTable, RenderOutput, Scenario, SweepCell, SweepOptions,
    Table, TopoSpec,
};
use topobench::{lower_bound_from, TmSpec};

/// All registered scenarios, in the paper's figure order.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "fig02",
            title: "Figure 2: absolute throughput of TM families vs topology degree",
            build: fig02_build,
            render: fig02_render,
        },
        Scenario {
            name: "fig03",
            title: "Figure 3: throughput vs sparse cut (longest-matching TM)",
            build: fig03_build,
            render: fig03_render,
        },
        Scenario {
            name: "fig04",
            title: "Figure 4: throughput normalized to the theoretical lower bound",
            build: fig04_build,
            render: fig04_render,
        },
        Scenario {
            name: "fig05_06",
            title: "Figures 5/6 + Table I: relative throughput vs number of servers",
            build: fig05_06_build,
            render: fig05_06_render,
        },
        Scenario {
            name: "fig07",
            title: "Figure 7: HyperX relative throughput by target bisection",
            build: fig07_build,
            render: fig07_render,
        },
        Scenario {
            name: "fig08",
            title: "Figure 8: Long Hop relative throughput under longest matching",
            build: fig08_build,
            render: fig08_render,
        },
        Scenario {
            name: "fig09",
            title: "Figure 9: Slim Fly relative throughput and relative path length",
            build: fig09_build,
            render: fig09_render,
        },
        Scenario {
            name: "fig10_11",
            title: "Figures 10/11: relative throughput vs percentage of large flows",
            build: fig10_11_build,
            render: fig10_11_render,
        },
        Scenario {
            name: "fig12",
            title: "Figure 12: absolute throughput vs percentage of large flows",
            build: fig12_build,
            render: fig12_render,
        },
        Scenario {
            name: "fig13_14",
            title: "Figures 13/14: real-world (Facebook) TMs, sampled vs shuffled placement",
            build: fig13_14_build,
            render: fig13_14_render,
        },
        Scenario {
            name: "fig15",
            title: "Figure 15: fat tree vs Jellyfish under three methodologies",
            build: fig15_build,
            render: fig15_render,
        },
        Scenario {
            name: "table02",
            title: "Table II: sparsest-cut estimators vs throughput",
            build: table02_build,
            render: table02_render,
        },
        Scenario {
            name: "theorem1_demo",
            title: "Theorem 1 demo: sparsest cut can rank networks opposite to throughput",
            build: theorem1_build,
            render: theorem1_render,
        },
        Scenario {
            name: "failures",
            title: "Failure sweep: throughput degradation under random link/switch failures",
            build: failures_build,
            render: failures_render,
        },
        Scenario {
            name: "search",
            title: "Design search: hill-climb topology parameters for throughput per cost",
            build: search_build,
            render: search_render,
        },
    ]
}

fn bounds_of(set: &CellSet, id: &str) -> ThroughputBounds {
    ThroughputBounds {
        lower: set.num(id, "lower"),
        upper: set.num(id, "upper"),
    }
}

/// The figure's reported throughput value of a `Throughput` cell.
fn tput(set: &CellSet, id: &str) -> f64 {
    bounds_of(set, id).value()
}

// ---------------------------------------------------------------------------
// Figure 2: TM families vs degree (hypercube / random regular / fat tree).
// ---------------------------------------------------------------------------

struct Fig02Row {
    kind: &'static str,
    param: String,
    topo: TopoSpec,
}

fn fig02_rows(opts: &SweepOptions) -> Vec<Fig02Row> {
    let mut rows = Vec::new();
    let degrees: Vec<usize> = if opts.full {
        (3..=9).collect()
    } else {
        (3..=6).collect()
    };
    for &d in &degrees {
        rows.push(Fig02Row {
            kind: "hypercube",
            param: format!("d={d}"),
            topo: TopoSpec::Hypercube {
                dims: d,
                servers: 1,
            },
        });
    }
    for &d in &degrees {
        // Same switch count as the matching hypercube for a familiar scale.
        let n = 1usize << if opts.full { 7 } else { 5 };
        rows.push(Fig02Row {
            kind: "random-regular",
            param: format!("r={d}"),
            topo: TopoSpec::Jellyfish {
                switches: n,
                degree: d,
                servers: 1,
                seed: opts.seed,
            },
        });
    }
    let fat_ks: Vec<usize> = if opts.full {
        vec![4, 6, 8, 10, 12]
    } else {
        vec![4, 6, 8]
    };
    for k in fat_ks {
        rows.push(Fig02Row {
            kind: "fat-tree",
            param: format!("k={k}"),
            topo: TopoSpec::FatTree { k },
        });
    }
    rows
}

/// The per-row series, in column order: (id suffix, TM spec, server override).
fn fig02_series() -> Vec<(String, TmSpec, Option<usize>)> {
    let mut series = vec![("A2A".to_string(), TmSpec::AllToAll, None)];
    for k in [10usize, 2, 1] {
        series.push((
            format!("RM({k})"),
            TmSpec::RandomMatching {
                servers_per_switch: k,
            },
            Some(k),
        ));
    }
    series.push(("Kodialam".to_string(), TmSpec::Kodialam, None));
    series.push(("LM".to_string(), TmSpec::LongestMatching, None));
    series
}

fn fig02_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for row in fig02_rows(opts) {
        for (suffix, tm, servers) in fig02_series() {
            let topo = match servers {
                // The RM(k) series re-attaches k servers per switch on the
                // same switch graph, exactly like the paper's Fig. 2.
                Some(k) => TopoSpec::WithServers {
                    base: Box::new(row.topo.clone()),
                    servers_per_switch: k,
                },
                None => row.topo.clone(),
            };
            cells.push(SweepCell::new(
                format!("{}/{}/{}", row.kind, row.param, suffix),
                CellSpec::Throughput {
                    topo,
                    tm,
                    tm_seed: opts.seed,
                },
            ));
        }
    }
    cells
}

fn fig02_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 2: absolute throughput of TM families vs topology degree",
        &[
            "topology",
            "size-param",
            "A2A",
            "RM(10)",
            "RM(2)",
            "RM(1)",
            "Kodialam",
            "LM",
            "LowerBound",
        ],
    );
    for r in fig02_rows(opts) {
        let id = |suffix: &str| format!("{}/{}/{}", r.kind, r.param, suffix);
        let mut row = vec![r.kind.to_string(), r.param.clone()];
        for (suffix, _, _) in fig02_series() {
            row.push(f3(tput(set, &id(&suffix))));
        }
        // Theorem-2 bound from the A2A result already computed above.
        row.push(f3(lower_bound_from(bounds_of(set, &id("A2A"))).value()));
        table.row_strings(row);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig02_tm_families".into(),
            table,
        }],
        notes: "Expected shape (paper): A2A >= RM(10) >= RM(2) >= RM(1) >= Kodialam ~= LM >= lower bound;\n\
                in hypercubes LM sits essentially on the lower bound, in fat trees LM equals A2A."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 3: throughput vs sparsest cut across all families + naturals.
// ---------------------------------------------------------------------------

struct NetRow {
    id: String,
    group: String,
    name: String,
    params: String,
    switches: usize,
    topo: TopoSpec,
}

/// Family-ladder instances under a switch cap, then natural networks — the
/// shared network battery of Fig. 3 and Table II (which differ in the cap).
/// Only called at expansion time, and entirely on construction-free topology
/// metadata: expanding the battery builds no graphs (renderers likewise read
/// the row metadata back from cell labels).
fn cut_battery(opts: &SweepOptions, cap: usize) -> Vec<NetRow> {
    let mut out = Vec::new();
    for family in ALL_FAMILIES {
        for index in 0..family.ladder_len(opts.scale()) {
            let Some(meta) = family.ladder_meta(opts.scale(), opts.seed, index) else {
                continue;
            };
            if meta.switches <= cap {
                out.push(NetRow {
                    id: format!("{}/{}", family.name(), index),
                    group: family.name().to_string(),
                    name: meta.name,
                    params: meta.params,
                    switches: meta.switches,
                    topo: TopoSpec::Ladder {
                        family,
                        scale: opts.scale(),
                        index,
                        seed: opts.seed,
                    },
                });
            }
        }
    }
    let count = if opts.full { 40 } else { 12 };
    for index in 0..count {
        let meta = natural_meta(index);
        out.push(NetRow {
            id: format!("natural/{index}"),
            group: "natural".to_string(),
            name: meta.name,
            params: meta.params,
            switches: meta.switches,
            topo: TopoSpec::Natural {
                index,
                seed: opts.seed,
            },
        });
    }
    out
}

fn cut_battery_cells(opts: &SweepOptions, rows: &[NetRow]) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for r in rows {
        cells.push(
            SweepCell::new(
                format!("{}/tput", r.id),
                CellSpec::Throughput {
                    topo: r.topo.clone(),
                    tm: TmSpec::LongestMatching,
                    tm_seed: opts.seed,
                },
            )
            .label("group", r.group.clone())
            .label("name", r.name.clone())
            .label("params", r.params.clone())
            .label("switches", r.switches.to_string()),
        );
        cells.push(SweepCell::new(
            format!("{}/cut", r.id),
            CellSpec::CutEstimate {
                topo: r.topo.clone(),
                tm: TmSpec::LongestMatching,
                tm_seed: opts.seed,
            },
        ));
    }
    cells
}

/// The battery's `(row id, tput outcome)` pairs in expansion order,
/// recovered from the outcomes themselves (no topology rebuilds).
fn battery_rows<'a>(
    set: &'a CellSet,
) -> impl Iterator<Item = (String, &'a topobench::sweep::CellOutcome)> {
    set.outcomes().iter().filter_map(|o| {
        let base = o.cell.id.strip_suffix("/tput")?;
        if base == "fbfly-case" {
            return None; // the Fig. 3 case study, rendered separately
        }
        Some((base.to_string(), o))
    })
}

fn fig03_cap(opts: &SweepOptions) -> usize {
    // The cut estimators include an O(n^2) two-node sweep per network; keep
    // the scatter to moderately sized instances like the paper.
    if opts.full {
        200
    } else {
        90
    }
}

fn fig03_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let rows = cut_battery(opts, fig03_cap(opts));
    let mut cells = cut_battery_cells(opts, &rows);
    // §III-B case study: 5-ary 3-stage flattened butterfly.
    let fbfly = TopoSpec::FlattenedButterfly { k: 5, n: 3 };
    let meta = fbfly.metadata().expect("flattened butterfly has metadata");
    cells.push(
        SweepCell::new(
            "fbfly-case/tput",
            CellSpec::Throughput {
                topo: fbfly.clone(),
                tm: TmSpec::LongestMatching,
                tm_seed: opts.seed,
            },
        )
        .label("switches", meta.switches.to_string())
        .label("servers", meta.servers.to_string()),
    );
    cells.push(SweepCell::new(
        "fbfly-case/cut",
        CellSpec::CutEstimate {
            topo: fbfly,
            tm: TmSpec::LongestMatching,
            tm_seed: opts.seed,
        },
    ));
    cells
}

fn fig03_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 3: throughput vs sparse cut (longest-matching TM)",
        &[
            "network",
            "params",
            "switches",
            "sparse-cut",
            "throughput",
            "cut/throughput",
        ],
    );
    for (base, o) in battery_rows(set) {
        let throughput = o.values.num("lower");
        let sparsity = set.num(&format!("{base}/cut"), "best_sparsity");
        let ratio = if throughput > 0.0 {
            sparsity / throughput
        } else {
            f64::NAN
        };
        table.row_strings(vec![
            o.cell.get_label("name").expect("labeled").to_string(),
            o.cell.get_label("params").expect("labeled").to_string(),
            o.cell.get_label("switches").expect("labeled").to_string(),
            f3(sparsity),
            f3(throughput),
            f3(ratio),
        ]);
    }

    let case_cell = set.outcome("fbfly-case/tput");
    let case_bounds = bounds_of(set, "fbfly-case/tput");
    let mut case = Table::new(
        "SIII-B case study: 5-ary 3-stage flattened butterfly",
        &["metric", "value"],
    );
    for metric in ["switches", "servers"] {
        case.row_strings(vec![
            metric.into(),
            case_cell.cell.get_label(metric).expect("labeled").into(),
        ]);
    }
    case.row_strings(vec![
        "sparse cut".into(),
        f3(set.num("fbfly-case/cut", "best_sparsity")),
    ]);
    case.row_strings(vec!["throughput (lower)".into(), f3(case_bounds.lower)]);
    case.row_strings(vec!["throughput (upper)".into(), f3(case_bounds.upper)]);
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![
            NamedTable {
                name: "fig03_cut_vs_throughput".into(),
                table,
            },
            NamedTable {
                name: "fig03_fbfly_case".into(),
                table: case,
            },
        ],
        notes: "Expected shape (paper): every point satisfies throughput <= cut; for many networks the\n\
                cut overestimates throughput (up to ~3x), and even the 25-switch flattened butterfly has\n\
                throughput strictly below its sparsest cut (0.565 vs 0.6 in the paper's units)."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 4: TMs normalized to the Theorem-2 bound, per family representative.
// ---------------------------------------------------------------------------

fn fig04_specs() -> [(&'static str, TmSpec); 4] {
    [
        ("A2A", TmSpec::AllToAll),
        (
            "RM(5)",
            TmSpec::RandomMatching {
                servers_per_switch: 5,
            },
        ),
        (
            "RM(1)",
            TmSpec::RandomMatching {
                servers_per_switch: 1,
            },
        ),
        ("LM", TmSpec::LongestMatching),
    ]
}

fn fig04_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for family in ALL_FAMILIES {
        let topo = TopoSpec::Representative {
            family,
            seed: opts.seed,
        };
        let params = topo
            .metadata()
            .expect("representatives have metadata")
            .params;
        for (suffix, tm) in fig04_specs() {
            cells.push(
                SweepCell::new(
                    format!("{}/{}", family.name(), suffix),
                    CellSpec::Throughput {
                        topo: topo.clone(),
                        tm,
                        tm_seed: opts.seed,
                    },
                )
                .label("params", params.clone()),
            );
        }
    }
    cells
}

fn fig04_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 4: throughput normalized to the theoretical lower bound (T_A2A/2 = 1)",
        &["topology", "params", "A2A", "RM(5)", "RM(1)", "LM"],
    );
    for family in ALL_FAMILIES {
        let id = |suffix: &str| format!("{}/{}", family.name(), suffix);
        let a2a = tput(set, &id("A2A"));
        let bound = a2a / 2.0;
        let params = set
            .outcome(&id("A2A"))
            .cell
            .get_label("params")
            .expect("labeled")
            .to_string();
        let mut row = vec![family.name().to_string(), params];
        for (suffix, _) in fig04_specs() {
            row.push(f3(tput(set, &id(suffix)) / bound));
        }
        table.row_strings(row);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig04_normalized_tms".into(),
            table,
        }],
        notes: "Expected shape (paper): every row satisfies 2 = A2A >= RM(5) >= RM(1) >= LM >= 1\n\
                (up to solver tolerance); LM reaches ~1 for BCube, Hypercube, HyperX and Dragonfly,\n\
                while in fat trees LM stays at the A2A value because the lower bound is loose there."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figures 5/6 + Table I: relative throughput vs servers, per family ladder.
// ---------------------------------------------------------------------------

fn fig05_specs() -> [TmSpec; 3] {
    [
        TmSpec::AllToAll,
        TmSpec::RandomMatching {
            servers_per_switch: 1,
        },
        TmSpec::LongestMatching,
    ]
}

fn fig05_06_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for family in ALL_FAMILIES {
        for index in 0..family.ladder_len(opts.scale()) {
            let Some(meta) = family.ladder_meta(opts.scale(), opts.seed, index) else {
                continue;
            };
            for spec in fig05_specs() {
                let tm_label = spec.label();
                cells.push(
                    SweepCell::new(
                        format!("{}/{}/{}", family.name(), index, tm_label),
                        CellSpec::Relative {
                            topo: TopoSpec::Ladder {
                                family,
                                scale: opts.scale(),
                                index,
                                seed: opts.seed,
                            },
                            tm: spec,
                        },
                    )
                    .label("family", family.name())
                    .label("tm", tm_label)
                    .label("params", meta.params.clone())
                    .label("servers", meta.servers.to_string()),
                );
            }
        }
    }
    cells
}

fn fig05_06_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figures 5/6: relative throughput vs number of servers",
        &[
            "topology",
            "params",
            "servers",
            "TM",
            "rel-throughput",
            "ci95",
        ],
    );
    let mut table1 = Table::new(
        "Table I: relative throughput at the largest size tested",
        &["topology", "A2A", "RM(1)", "LM"],
    );
    for family in ALL_FAMILIES {
        // Ladder cells in expansion order (index ascending), recovered from
        // the labels — the ladder graphs are not rebuilt for rendering.
        let family_cells: Vec<_> = set
            .outcomes()
            .iter()
            .filter(|o| o.cell.get_label("family") == Some(family.name()))
            .collect();
        let mut largest_row: Vec<String> = vec![family.name().to_string()];
        for spec in fig05_specs() {
            let mut last = f64::NAN;
            for o in family_cells
                .iter()
                .filter(|o| o.cell.get_label("tm") == Some(spec.label().as_str()))
            {
                table.row_strings(vec![
                    family.name().to_string(),
                    o.cell.get_label("params").expect("labeled").to_string(),
                    o.cell.get_label("servers").expect("labeled").to_string(),
                    spec.label(),
                    f3(o.values.num("rel_mean")),
                    f3(o.values.num("rel_ci95")),
                ]);
                last = o.values.num("rel_mean");
            }
            largest_row.push(format!("{:.0}%", last * 100.0));
        }
        table1.row_strings(largest_row);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![
            NamedTable {
                name: "fig05_06_relative_throughput".into(),
                table,
            },
            NamedTable {
                name: "table01_largest_size".into(),
                table: table1,
            },
        ],
        notes: "Expected shape (paper): Jellyfish sits at 1.0 by definition; most structured\n\
                topologies degrade relative to the random graph as size grows (Table I: BCube ~51%,\n\
                Hypercube ~51%, Flattened BF ~47% under LM at the largest sizes), while fat trees do\n\
                comparatively better under LM (~89%) than under A2A (~65%)."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 7: HyperX designs by target bisection.
// ---------------------------------------------------------------------------

const FIG07_BETAS: [f64; 3] = [0.2, 0.4, 0.5];

fn fig07_targets(opts: &SweepOptions) -> Vec<usize> {
    if opts.full {
        vec![128, 216, 324, 512, 648, 864, 1024]
    } else {
        vec![64, 128, 216, 324]
    }
}

fn fig07_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &beta in &FIG07_BETAS {
        for &servers in &fig07_targets(opts) {
            let Some(design) = design_search(24, servers, beta) else {
                continue;
            };
            let topo = TopoSpec::HyperX {
                radix: 24,
                min_servers: servers,
                bisection: beta,
            };
            // The design record already carries the instance sizes — no need
            // to construct the topology just to label the row.
            cells.push(
                SweepCell::new(
                    format!("b{beta:.1}/n{servers}"),
                    CellSpec::Relative {
                        topo,
                        tm: TmSpec::LongestMatching,
                    },
                )
                .label("bisection", format!("{beta:.1}"))
                .label("target", servers.to_string())
                .label(
                    "design",
                    format!(
                        "L={} S={} K={} T={}",
                        design.dims, design.s, design.k, design.t
                    ),
                )
                .label("servers", design.servers.to_string())
                .label("switches", design.switches.to_string()),
            );
        }
    }
    cells
}

fn fig07_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 7: HyperX relative throughput (longest matching) vs servers, by target bisection",
        &[
            "bisection",
            "servers-target",
            "design",
            "servers",
            "switches",
            "rel-throughput",
            "ci95",
        ],
    );
    // Expansion order is already beta-major, target-minor; iterate the
    // outcomes directly rather than repeating the design searches.
    for o in set.outcomes() {
        table.row_strings(vec![
            o.cell.get_label("bisection").expect("labeled").to_string(),
            o.cell.get_label("target").expect("labeled").to_string(),
            o.cell.get_label("design").expect("labeled").to_string(),
            o.cell.get_label("servers").expect("labeled").to_string(),
            o.cell.get_label("switches").expect("labeled").to_string(),
            f3(o.values.num("rel_mean")),
            f3(o.values.num("rel_ci95")),
        ]);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig07_hyperx".into(),
            table,
        }],
        notes: "Expected shape (paper): relative throughput varies widely (roughly 0.4-0.9) and\n\
                non-monotonically with the requested size for every bisection target — high bisection\n\
                does not imply high worst-case throughput."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 8: Long Hop ladders.
// ---------------------------------------------------------------------------

fn fig08_grid(opts: &SweepOptions) -> Vec<(usize, usize)> {
    let dims: Vec<usize> = if opts.full {
        vec![5, 6, 7, 8]
    } else {
        vec![5, 6, 7]
    };
    let mut grid = Vec::new();
    for d in dims {
        // Degree and concentration grow mildly with dimension, mirroring the
        // equipment assumptions of the instance ladder.
        for extra in [2usize, 3, 4] {
            grid.push((d, extra));
        }
    }
    grid
}

fn fig08_build(opts: &SweepOptions) -> Vec<SweepCell> {
    fig08_grid(opts)
        .into_iter()
        .map(|(d, extra)| {
            let topo = TopoSpec::LongHop {
                dim: d,
                degree: d + extra,
                servers: (d + extra) / 3,
            };
            let meta = topo.metadata().expect("long hop has metadata");
            SweepCell::new(
                format!("d{d}/extra{extra}"),
                CellSpec::Relative {
                    topo,
                    tm: TmSpec::LongestMatching,
                },
            )
            .label("servers", meta.servers.to_string())
        })
        .collect()
}

fn fig08_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 8: Long Hop relative throughput under longest matching",
        &["dimension", "degree", "servers", "rel-throughput", "ci95"],
    );
    for (d, extra) in fig08_grid(opts) {
        let o = set.outcome(&format!("d{d}/extra{extra}"));
        table.row_strings(vec![
            d.to_string(),
            (d + extra).to_string(),
            o.cell.get_label("servers").expect("labeled").to_string(),
            f3(o.values.num("rel_mean")),
            f3(o.values.num("rel_ci95")),
        ]);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig08_longhop".into(),
            table,
        }],
        notes:
            "Expected shape (paper): relative throughput below 1 at small sizes and approaching 1\n\
                as dimension/size grows — Long Hop networks are no better than random graphs."
                .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 9: Slim Fly relative throughput + relative path length.
// ---------------------------------------------------------------------------

fn fig09_qs(opts: &SweepOptions) -> Vec<usize> {
    if opts.full {
        vec![5, 13, 17]
    } else {
        vec![5, 13]
    }
}

fn fig09_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for q in fig09_qs(opts) {
        let topo = TopoSpec::SlimFly { q };
        let meta = topo.metadata().expect("slim fly has metadata");
        cells.push(
            SweepCell::new(
                format!("q{q}/rel"),
                CellSpec::Relative {
                    topo: topo.clone(),
                    tm: TmSpec::LongestMatching,
                },
            )
            .label("switches", meta.switches.to_string())
            .label("servers", meta.servers.to_string()),
        );
        cells.push(SweepCell::new(
            format!("q{q}/apl"),
            CellSpec::PathLengthRatio {
                topo,
                rnd_seed: opts.seed.wrapping_add(77),
            },
        ));
    }
    cells
}

fn fig09_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 9: Slim Fly relative throughput and relative path length (longest matching)",
        &[
            "q",
            "switches",
            "servers",
            "rel-throughput",
            "ci95",
            "rel-path-length",
        ],
    );
    for q in fig09_qs(opts) {
        let o = set.outcome(&format!("q{q}/rel"));
        table.row_strings(vec![
            q.to_string(),
            o.cell.get_label("switches").expect("labeled").to_string(),
            o.cell.get_label("servers").expect("labeled").to_string(),
            f3(o.values.num("rel_mean")),
            f3(o.values.num("rel_ci95")),
            f3(set.num(&format!("q{q}/apl"), "ratio")),
        ]);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig09_slimfly".into(),
            table,
        }],
        notes: "Expected shape (paper): relative path length ~0.85-0.9 (Slim Fly's paths are shorter\n\
                than the random graph's) while relative throughput is ~1 at small scale and declines\n\
                toward ~0.8 at the largest size under longest matching."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figures 10/11: skewed LM, relative, per family representative.
// ---------------------------------------------------------------------------

fn fig10_percents(opts: &SweepOptions) -> Vec<f64> {
    if opts.full {
        vec![1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0]
    } else {
        vec![5.0, 25.0, 100.0]
    }
}

fn fig10_11_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for family in ALL_FAMILIES {
        let topo = TopoSpec::Representative {
            family,
            seed: opts.seed,
        };
        let params = topo
            .metadata()
            .expect("representatives have metadata")
            .params;
        for p in fig10_percents(opts) {
            cells.push(
                SweepCell::new(
                    format!("{}/{p:.0}", family.name()),
                    CellSpec::Relative {
                        topo: topo.clone(),
                        tm: TmSpec::SkewedLongestMatching {
                            fraction: p / 100.0,
                            weight: 10.0,
                        },
                    },
                )
                .label("params", params.clone()),
            );
        }
    }
    cells
}

fn fig10_11_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figures 10/11: relative throughput vs percentage of large flows (weight 10, longest matching)",
        &["topology", "params", "%large", "rel-throughput", "ci95"],
    );
    for family in ALL_FAMILIES {
        for p in fig10_percents(opts) {
            let o = set.outcome(&format!("{}/{p:.0}", family.name()));
            table.row_strings(vec![
                family.name().to_string(),
                o.cell.get_label("params").expect("labeled").to_string(),
                format!("{p:.0}"),
                f3(o.values.num("rel_mean")),
                f3(o.values.num("rel_ci95")),
            ]);
        }
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig10_11_skewed".into(),
            table,
        }],
        notes: "Expected shape (paper): every family except the fat tree keeps a roughly flat relative\n\
                throughput as the fraction of large flows grows; the fat tree dips noticeably when only\n\
                a few flows are large because its ToR uplinks carry only locally originated traffic."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 12: skewed LM, absolute, hypercube / fat tree / same-equipment RRGs.
// ---------------------------------------------------------------------------

fn fig12_networks(opts: &SweepOptions) -> Vec<(&'static str, TopoSpec)> {
    let cube = if opts.full {
        TopoSpec::Hypercube {
            dims: 7,
            servers: 4,
        }
    } else {
        TopoSpec::Hypercube {
            dims: 6,
            servers: 3,
        }
    };
    let ft = TopoSpec::FatTree {
        k: if opts.full { 10 } else { 8 },
    };
    vec![
        ("Hypercube", cube.clone()),
        ("Fat tree", ft.clone()),
        (
            "Jellyfish (same equip. as hypercube)",
            TopoSpec::SameEquipment {
                base: Box::new(cube),
                seed: opts.seed.wrapping_add(11),
            },
        ),
        (
            "Jellyfish (same equip. as fat tree)",
            TopoSpec::SameEquipment {
                base: Box::new(ft),
                seed: opts.seed.wrapping_add(12),
            },
        ),
    ]
}

fn fig12_percents(opts: &SweepOptions) -> Vec<f64> {
    if opts.full {
        vec![1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0]
    } else {
        vec![1.0, 10.0, 100.0]
    }
}

fn fig12_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for (name, topo) in fig12_networks(opts) {
        for p in fig12_percents(opts) {
            cells.push(SweepCell::new(
                format!("{name}/{p:.0}"),
                CellSpec::Throughput {
                    topo: topo.clone(),
                    tm: TmSpec::SkewedLongestMatching {
                        fraction: p / 100.0,
                        weight: 10.0,
                    },
                    tm_seed: opts.seed,
                },
            ));
        }
    }
    cells
}

fn fig12_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Figure 12: absolute throughput vs percentage of large flows (weight 10, longest matching)",
        &["network", "%large", "abs-throughput"],
    );
    for (name, _) in fig12_networks(opts) {
        for p in fig12_percents(opts) {
            table.row_strings(vec![
                name.to_string(),
                format!("{p:.0}"),
                f3(tput(set, &format!("{name}/{p:.0}"))),
            ]);
        }
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "fig12_skewed_absolute".into(),
            table,
        }],
        notes: "Expected shape (paper): the fat tree's absolute throughput dips at small percentages of\n\
                large flows and recovers at 100% (where rescaling makes the TM uniform again); the\n\
                hypercube and both Jellyfish networks stay comparatively flat."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figures 13/14: Facebook rack-level TMs, sampled vs shuffled placement.
// ---------------------------------------------------------------------------

const FIG13_MATRICES: [(FbMatrix, &str, &str); 2] = [
    (FbMatrix::Hadoop, "h", "Figure 13 TM-H (Hadoop)"),
    (FbMatrix::Frontend, "f", "Figure 14 TM-F (frontend)"),
];

fn fig13_14_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for (matrix, tag, _) in FIG13_MATRICES {
        for family in ALL_FAMILIES {
            let topo = TopoSpec::Representative {
                family,
                seed: opts.seed,
            };
            let params = topo
                .metadata()
                .expect("representatives have metadata")
                .params;
            for shuffled in [false, true] {
                let placement = if shuffled { "shuffled" } else { "sampled" };
                cells.push(
                    SweepCell::new(
                        format!("{tag}/{}/{placement}", family.name()),
                        CellSpec::FacebookRelative {
                            topo: topo.clone(),
                            matrix,
                            shuffled,
                            tm_seed: opts.seed,
                            shuffle_seed: opts.seed.wrapping_add(9),
                        },
                    )
                    .label("params", params.clone()),
                );
            }
        }
    }
    cells
}

fn fig13_14_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut tables = Vec::new();
    for (_, tag, name) in FIG13_MATRICES {
        let mut table = Table::new(
            format!(
                "{name}: normalized throughput per topology (sampled vs shuffled rack placement)"
            ),
            &["topology", "params", "racks", "sampled", "shuffled"],
        );
        for family in ALL_FAMILIES {
            let sampled = set.outcome(&format!("{tag}/{}/sampled", family.name()));
            let shuffled = set.outcome(&format!("{tag}/{}/shuffled", family.name()));
            table.row_strings(vec![
                family.name().to_string(),
                sampled
                    .cell
                    .get_label("params")
                    .expect("labeled")
                    .to_string(),
                (sampled.values.num("racks") as usize).to_string(),
                f3(sampled.values.num("rel_mean")),
                f3(shuffled.values.num("rel_mean")),
            ]);
        }
        tables.push(NamedTable {
            name: name.to_lowercase().replace(['-', ' '], "_"),
            table,
        });
    }
    RenderOutput {
        preamble: Vec::new(),
        tables,
        notes: "Expected shape (paper): under the near-uniform TM-H, shuffling rack placement barely\n\
                changes performance; under the skewed TM-F, shuffling significantly improves every\n\
                topology except Jellyfish, Long Hop, Slim Fly and the fat tree, which are already\n\
                insensitive to placement."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 15: Yuan et al. replication (subflow counting vs LP).
// ---------------------------------------------------------------------------

const FIG15_K_PATHS: usize = 8;

fn fig15_networks(opts: &SweepOptions) -> Vec<(&'static str, TopoSpec)> {
    vec![
        // The fat tree Yuan et al. used: 80 switches, 128 servers.
        ("ft", TopoSpec::FatTree { k: 8 }),
        // Their Jellyfish: same 80 switches, radix 8 (6 + 2 servers).
        (
            "jf-yuan",
            TopoSpec::Jellyfish {
                switches: 80,
                degree: 6,
                servers: 2,
                seed: opts.seed,
            },
        ),
        // Equal equipment: 80 switches and the fat tree's 128 servers.
        (
            "jf-equal",
            TopoSpec::JellyfishSpread {
                switches: 80,
                degree: 6,
                servers_total: 128,
                seed: opts.seed,
            },
        ),
    ]
}

fn fig15_build(opts: &SweepOptions) -> Vec<SweepCell> {
    fig15_networks(opts)
        .into_iter()
        .map(|(id, topo)| {
            let meta = topo.metadata().expect("fig15 networks have metadata");
            SweepCell::new(
                id,
                CellSpec::PathRestricted {
                    topo,
                    k_paths: FIG15_K_PATHS,
                    tm_seed: opts.seed,
                },
            )
            .label("switches", meta.switches.to_string())
            .label("servers", meta.servers.to_string())
        })
        .collect()
}

fn fig15_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let sizes = |id: &str| {
        let o = set.outcome(id);
        (
            o.cell.get_label("switches").expect("labeled").to_string(),
            o.cell.get_label("servers").expect("labeled").to_string(),
        )
    };
    let (ft_sw, ft_srv) = sizes("ft");
    let (jy_sw, jy_srv) = sizes("jf-yuan");
    let (je_sw, je_srv) = sizes("jf-equal");
    let preamble = vec![format!(
        "fat tree: {ft_sw} switches / {ft_srv} servers; Jellyfish (Yuan): {jy_sw} switches / {jy_srv} servers; \
         Jellyfish (equalized): {je_sw} switches / {je_srv} servers"
    )];

    let ft_count = set.num("ft", "counting");
    let ft_lp = set.num("ft", "lp");
    let jf_count = set.num("jf-yuan", "counting");
    let jf_lp = set.num("jf-yuan", "lp");
    let jf_eq_lp = set.num("jf-equal", "lp");

    let mut table = Table::new(
        "Figure 15: fat tree vs Jellyfish under three methodologies (A2A traffic)",
        &["comparison", "fat tree", "Jellyfish", "Jellyfish/FatTree"],
    );
    table.row_strings(vec![
        "1: subflow counting (Yuan et al.)".into(),
        f3(ft_count),
        f3(jf_count),
        f3(jf_count / ft_count),
    ]);
    table.row_strings(vec![
        "2: LP throughput, same paths".into(),
        f3(ft_lp),
        f3(jf_lp),
        f3(jf_lp / ft_lp),
    ]);
    table.row_strings(vec![
        "3: LP throughput, equal equipment".into(),
        f3(ft_lp),
        f3(jf_eq_lp),
        f3(jf_eq_lp / ft_lp),
    ]);
    RenderOutput {
        preamble,
        tables: vec![NamedTable {
            name: "fig15_yuan".into(),
            table,
        }],
        notes: "Expected shape (paper): the subflow-counting heuristic (Comparison 1) misjudges the two\n\
                networks as roughly comparable; switching to exact LP throughput under the same path\n\
                restriction (Comparison 2) reveals a clear Jellyfish advantage, and equalizing equipment\n\
                (Comparison 3) widens it further — the ordering C1 < C2 < C3 in the Jellyfish/FatTree\n\
                column is the reproduction target."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Table II: which estimators find the sparsest cut, and does it match
// throughput?
// ---------------------------------------------------------------------------

fn table02_cap(opts: &SweepOptions) -> usize {
    if opts.full {
        200
    } else {
        70
    }
}

fn table02_build(opts: &SweepOptions) -> Vec<SweepCell> {
    cut_battery_cells(opts, &cut_battery(opts, table02_cap(opts)))
}

#[derive(Default, Clone)]
struct Table02Row {
    total: usize,
    matches: usize,
    by_estimator: [usize; 5],
}

impl Table02Row {
    fn account(&mut self, set: &CellSet, base: &str) {
        let upper = set.num(&format!("{base}/tput"), "upper");
        let cut = set.outcome(&format!("{base}/cut"));
        self.total += 1;
        // "cut equals throughput" within the solver's bracketing tolerance
        // plus 2%.
        if cut.values.num("best_sparsity") <= upper * 1.02 + 1e-9 {
            self.matches += 1;
        }
        for (i, est) in ALL_ESTIMATORS.iter().enumerate() {
            let metric = format!("found_{}", est.name().to_lowercase().replace(' ', "_"));
            if cut.values.num(&metric) == 1.0 {
                self.by_estimator[i] += 1;
            }
        }
    }

    fn absorb(&mut self, other: &Table02Row) {
        self.total += other.total;
        self.matches += other.matches;
        for i in 0..5 {
            self.by_estimator[i] += other.by_estimator[i];
        }
    }

    fn cells(&self, label: String) -> Vec<String> {
        let mut row = vec![label, self.total.to_string(), self.matches.to_string()];
        row.extend(self.by_estimator.iter().map(|c| c.to_string()));
        row
    }
}

fn table02_render(_opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Table II: estimated sparsest cuts — do they match throughput, and which estimators found them?",
        &[
            "topology family", "networks", "cut=throughput", "Brute force", "1-node", "2-node",
            "Expanding regions", "Eigenvector",
        ],
    );
    // Group the battery rows by the "group" label captured at expansion —
    // no topology reconstruction on the render path.
    let rows: Vec<(String, String)> = battery_rows(set)
        .map(|(base, o)| {
            (
                base,
                o.cell.get_label("group").expect("labeled").to_string(),
            )
        })
        .collect();
    let mut grand = Table02Row::default();
    for family in ALL_FAMILIES {
        let mut acc = Table02Row::default();
        for (base, _) in rows.iter().filter(|(_, g)| g == family.name()) {
            acc.account(set, base);
        }
        grand.absorb(&acc);
        table.row_strings(acc.cells(family.name().to_string()));
    }
    let mut nat = Table02Row::default();
    for (base, _) in rows.iter().filter(|(_, g)| g == "natural") {
        nat.account(set, base);
    }
    grand.absorb(&nat);
    table.row_strings(nat.cells("Natural networks".to_string()));
    table.row_strings(grand.cells("Total".to_string()));
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "table02_cut_estimators".into(),
            table,
        }],
        notes: "Expected shape (paper): the estimated cut matches throughput in only a minority of\n\
                computer networks (throughput < cut elsewhere); the eigenvector sweep finds the winning\n\
                cut most often, with one/two-node cuts mattering mainly for the natural networks, and\n\
                fat trees matched by every estimator."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Theorem 1 demo: cut and throughput can rank two graphs oppositely.
// ---------------------------------------------------------------------------

fn theorem1_graphs(opts: &SweepOptions) -> Vec<(&'static str, String, TopoSpec)> {
    let n: usize = if opts.full { 128 } else { 48 };
    // Graph A: degree 2d = 6 with beta ~ alpha / log2(n).
    let graph_a = TopoSpec::ClusteredRandom {
        n,
        alpha: 5,
        beta: 1,
        seed: opts.seed,
    };
    // Graph B: same node budget: N = n / p base nodes, degree 2d = 6, p = 3.
    // Base expander has N nodes and N*d edges; subdividing adds N*d*(p-1)
    // nodes, so total nodes = N + N*d*(p-1). Choose N so totals are close
    // to n.
    let p = 3;
    let d = 3;
    let base_n = (n as f64 / (1.0 + d as f64 * (p as f64 - 1.0))).round() as usize;
    let graph_b = TopoSpec::SubdividedExpander {
        base_nodes: base_n.max(4),
        d,
        p,
        seed: opts.seed,
    };
    vec![
        ("a", "A: clustered random".to_string(), graph_a),
        ("b", format!("B: subdivided expander (p={p})"), graph_b),
    ]
}

fn theorem1_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for (tag, _, topo) in theorem1_graphs(opts) {
        let meta = topo.metadata().expect("theorem1 graphs have metadata");
        let links = meta
            .links
            .expect("theorem1 graphs have closed-form link counts");
        cells.push(
            SweepCell::new(
                format!("{tag}/tput"),
                CellSpec::Throughput {
                    topo: topo.clone(),
                    tm: TmSpec::AllToAll,
                    tm_seed: opts.seed,
                },
            )
            .label("nodes", meta.switches.to_string())
            .label("links", links.to_string()),
        );
        cells.push(SweepCell::new(
            format!("{tag}/cut"),
            CellSpec::CutEstimate {
                topo,
                tm: TmSpec::AllToAll,
                tm_seed: opts.seed,
            },
        ));
    }
    cells
}

fn theorem1_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Theorem 1 demo: sparsest cut can rank networks opposite to throughput",
        &[
            "graph",
            "nodes",
            "links",
            "A2A throughput",
            "sparse cut",
            "cut/throughput",
        ],
    );
    for (tag, label, _) in theorem1_graphs(opts) {
        let o = set.outcome(&format!("{tag}/tput"));
        let throughput = o.values.num("lower");
        let cut = set.num(&format!("{tag}/cut"), "best_sparsity");
        table.row_strings(vec![
            label,
            o.cell.get_label("nodes").expect("labeled").to_string(),
            o.cell.get_label("links").expect("labeled").to_string(),
            f3(throughput),
            f3(cut),
            f3(cut / throughput),
        ]);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "theorem1_demo".into(),
            table,
        }],
        notes: "Expected shape (paper, Theorem 1): graph B's cut/throughput ratio is much larger than\n\
                graph A's — B \"looks\" better through the cut lens while delivering lower throughput per\n\
                unit of cut, because its flows traverse p links each."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Failure sweep: degradation curves under deterministic fault injection.
// ---------------------------------------------------------------------------

/// Link-failure fractions of the degradation curve. `0.0` anchors every
/// family at relative throughput exactly 1.
fn failures_fracs(full: bool) -> Vec<f64> {
    if full {
        vec![0.0, 0.05, 0.1, 0.2, 0.3]
    } else {
        vec![0.0, 0.1, 0.2]
    }
}

/// Independent failure draws averaged per cell (mean ± error bars).
const FAILURE_DRAWS: u64 = 5;

fn failures_build(opts: &SweepOptions) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for family in ALL_FAMILIES {
        // Fixed equipment per family: the same representative instance the
        // other figure sweeps use. Labels come from the spec's metadata —
        // expansion stays construction-free; faults are drawn inside the
        // cell, at solve time.
        let topo = TopoSpec::Representative {
            family,
            seed: opts.seed,
        };
        let params = topo
            .metadata()
            .expect("representatives have metadata")
            .params;
        let degradation = |link_fail_frac: f64, switch_failures: usize| CellSpec::Degradation {
            topo: topo.clone(),
            tm: TmSpec::AllToAll,
            tm_seed: opts.seed,
            link_fail_frac,
            switch_failures,
            failure_seeds: FAILURE_DRAWS,
            seed: opts.seed.wrapping_add(90),
        };
        for frac in failures_fracs(opts.full) {
            cells.push(
                SweepCell::new(
                    format!("{}/links={frac:.2}", family.name()),
                    degradation(frac, 0),
                )
                .label("family", family.name())
                .label("params", params.clone()),
            );
        }
        cells.push(
            SweepCell::new(format!("{}/switches=1", family.name()), degradation(0.0, 1))
                .label("family", family.name())
                .label("params", params.clone()),
        );
    }
    cells
}

/// One degradation table entry, status-aware: failed cells render as a
/// marked entry instead of panicking the renderer.
fn failures_entry(set: &CellSet, id: &str) -> String {
    let Some(o) = set.try_outcome(id) else {
        return "-".into();
    };
    if o.is_failed() {
        return "FAILED".into();
    }
    match (o.values.get("rel_mean"), o.values.get("rel_ci95")) {
        (Some(mean), Some(ci)) => {
            let mut entry = format!("{mean:.3}±{ci:.3}");
            if o.values.get("dropped_mean").unwrap_or(0.0) > 0.0 {
                // Some demand pairs were disconnected and dropped: the mean
                // covers the surviving pairs only.
                entry.push('*');
            }
            entry
        }
        _ => "-".into(),
    }
}

fn failures_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let fracs = failures_fracs(opts.full);
    let mut header: Vec<String> = vec!["topology".into(), "params".into()];
    for frac in &fracs {
        header.push(format!("links -{:.0}%", frac * 100.0));
    }
    header.push("switches -1".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Failure sweep: relative throughput (faulted / fault-free, mean ± ci95 over {FAILURE_DRAWS} draws)"
        ),
        &header_refs,
    );
    for family in ALL_FAMILIES {
        let anchor = format!("{}/links={:.2}", family.name(), fracs[0]);
        let params = set
            .try_outcome(&anchor)
            .and_then(|o| o.cell.get_label("params"))
            .unwrap_or("-")
            .to_string();
        let mut row = vec![family.name().to_string(), params];
        for frac in &fracs {
            row.push(failures_entry(
                set,
                &format!("{}/links={frac:.2}", family.name()),
            ));
        }
        row.push(failures_entry(
            set,
            &format!("{}/switches=1", family.name()),
        ));
        table.row_strings(row);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "failures_degradation".into(),
            table,
        }],
        notes: "Expected shape: the 0% column is exactly 1 (the baseline is its own ratio); throughput\n\
                degrades gracefully — roughly proportionally to the removed capacity — rather than\n\
                collapsing, echoing the random-graph robustness argument of the paper. Entries marked *\n\
                dropped disconnected demand pairs before solving (degraded, not failed); FAILED marks\n\
                cells whose computation panicked twice and was isolated (also flagged by `sweep diff`)."
            .into(),
    }
}

// ---------------------------------------------------------------------------
// Design search: hill-climb topology parameters for throughput per cost.
// ---------------------------------------------------------------------------

/// The three searchable starting designs. Each is deliberately started *off*
/// its optimum (an over- or under-provisioned link budget) so the climb has
/// somewhere to go; equipment stays fixed along every move (see
/// `CellSpec::Search`).
fn search_starts(opts: &SweepOptions) -> Vec<(&'static str, TopoSpec)> {
    if opts.full {
        vec![
            (
                "jellyfish",
                TopoSpec::Jellyfish {
                    switches: 40,
                    degree: 4,
                    servers: 6,
                    seed: opts.seed,
                },
            ),
            (
                "longhop",
                TopoSpec::LongHop {
                    dim: 5,
                    degree: 10,
                    servers: 2,
                },
            ),
            (
                "hyperx",
                TopoSpec::HyperX {
                    radix: 16,
                    min_servers: 128,
                    bisection: 0.3,
                },
            ),
        ]
    } else {
        vec![
            (
                "jellyfish",
                TopoSpec::Jellyfish {
                    switches: 16,
                    degree: 4,
                    servers: 4,
                    seed: opts.seed,
                },
            ),
            (
                "longhop",
                TopoSpec::LongHop {
                    dim: 4,
                    degree: 8,
                    servers: 2,
                },
            ),
            (
                "hyperx",
                TopoSpec::HyperX {
                    radix: 10,
                    min_servers: 48,
                    bisection: 0.3,
                },
            ),
        ]
    }
}

fn search_build(opts: &SweepOptions) -> Vec<SweepCell> {
    search_starts(opts)
        .into_iter()
        .map(|(name, start)| {
            let params = start
                .metadata()
                .expect("search starts have metadata")
                .params;
            SweepCell::new(
                format!("search/{name}"),
                CellSpec::Search {
                    start,
                    tm: TmSpec::AllToAll,
                    tm_seed: opts.seed,
                    max_steps: if opts.full { 6 } else { 4 },
                },
            )
            .label("family", name)
            .label("start_params", params)
        })
        .collect()
}

fn search_render(opts: &SweepOptions, set: &CellSet) -> RenderOutput {
    let mut table = Table::new(
        "Design search: throughput per unit cost (cost = links + 4/switch), fixed equipment",
        &[
            "design",
            "start",
            "final",
            "start obj",
            "final obj",
            "gain",
            "steps",
            "evals",
        ],
    );
    for (name, _) in search_starts(opts) {
        let id = format!("search/{name}");
        let Some(o) = set.try_outcome(&id) else {
            continue;
        };
        if o.is_failed() {
            table.row_strings(vec![name.to_string(), "FAILED".into()]);
            continue;
        }
        let start_obj = o.values.num("start_objective");
        let final_obj = o.values.num("final_objective");
        let gain = if start_obj > 0.0 {
            format!("{:+.1}%", (final_obj / start_obj - 1.0) * 100.0)
        } else {
            "-".into()
        };
        table.row_strings(vec![
            name.to_string(),
            o.values.text("step_0_params").unwrap_or("-").to_string(),
            o.values.text("final_params").unwrap_or("-").to_string(),
            f3(start_obj),
            f3(final_obj),
            gain,
            format!("{}", o.values.num("steps_accepted") as u64),
            format!("{}", o.values.num("evals") as u64),
        ]);
    }
    RenderOutput {
        preamble: Vec::new(),
        tables: vec![NamedTable {
            name: "search_results".into(),
            table,
        }],
        notes:
            "Expected shape: each climb ends at a design whose throughput-per-cost is at least\n\
                its start's (a zero-step climb means the start was already locally optimal). The\n\
                Jellyfish and Long Hop climbs trade server/network ports and long-hop generators\n\
                against link cost; with --warm every candidate solve is seeded from the\n\
                incumbent's MWU lengths (same moves unless the warm gate resets a solve)."
                .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SweepOptions {
        SweepOptions::new(false, 1)
    }

    #[test]
    fn every_scenario_expands_to_unique_cell_ids() {
        for scenario in registry() {
            let cells = (scenario.build)(&opts());
            assert!(!cells.is_empty(), "{} expands to no cells", scenario.name);
            let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(
                before,
                ids.len(),
                "{} has duplicate cell ids",
                scenario.name
            );
        }
    }

    #[test]
    fn fig02_grid_shape() {
        let cells = fig02_build(&opts());
        // 4 hypercubes + 4 RRGs + 3 fat trees, 6 series each.
        assert_eq!(cells.len(), 11 * 6);
    }

    #[test]
    fn failures_grid_shape() {
        let cells = failures_build(&opts());
        // One cell per link-failure fraction plus one switch-failure cell,
        // for every family.
        assert_eq!(
            cells.len(),
            ALL_FAMILIES.len() * (failures_fracs(false).len() + 1)
        );
        assert!(cells
            .iter()
            .all(|c| matches!(c.spec, CellSpec::Degradation { .. })));
        // The curve is anchored at zero failures.
        assert!(cells.iter().any(|c| c.id.ends_with("links=0.00")));
    }

    #[test]
    fn cut_battery_caps_switch_count() {
        for r in cut_battery(&opts(), 70) {
            assert!(r.switches <= 70, "{} exceeds the cap", r.id);
        }
    }
}
