//! `sweep verify` — re-check the certificates stored in an artifact.
//!
//! The core verifier ([`topobench::sweep::verify_artifact_cells`]) is
//! scenario-agnostic: it needs the cell specs the artifact's ids refer to.
//! This module supplies them by re-expanding the recorded scenario from the
//! registry with the run parameters stored in the artifact (`full`, `seed`,
//! `filter`), exactly like the original run did — so verification rebuilds
//! each instance from its spec and never trusts the artifact's numbers.

use std::collections::HashMap;
use std::path::Path;
use topobench::sweep::json::Json;
use topobench::sweep::{verify_artifact_cells, CellSpec, SweepOptions, VerifyReport};

/// Re-expands the scenario recorded in an artifact and verifies every cell.
/// Errors are unusable inputs (IO, not an artifact, unknown scenario);
/// per-cell problems land in the report.
pub fn verify_artifact_file(path: &Path) -> Result<VerifyReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))?;
    let name = doc
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{} records no scenario name", path.display()))?;
    let full = doc
        .get("full")
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{} records no 'full' flag", path.display()))?;
    let seed: u64 = doc
        .get("seed")
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{} records no usable seed", path.display()))?;
    let scenario = crate::find_scenario(name)
        .ok_or_else(|| format!("{}: scenario '{name}' is not registered", path.display()))?;

    // Rebuild the grid with the recorded run parameters. The filter does not
    // change any cell's spec, so expanding the unfiltered grid always yields
    // a superset of the artifact's cells — which is all the verifier needs.
    let mut sopts = SweepOptions::new(full, seed);
    sopts.certify = true;
    let specs: HashMap<String, CellSpec> = (scenario.build)(&sopts)
        .into_iter()
        .map(|c| (c.id, c.spec))
        .collect();
    verify_artifact_cells(&text, &specs, &sopts.eval_config())
}

/// One artifact's verification outcome in a directory sweep: the file name
/// plus either its report or the reason it could not be verified at all.
pub type NamedReport = (String, Result<VerifyReport, String>);

/// Verifies every `*.json` artifact in a directory (sorted by name).
/// Returns one [`NamedReport`] per file; an empty directory is an error.
pub fn verify_artifact_dir(dir: &Path) -> Result<Vec<NamedReport>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{} contains no *.json artifacts", dir.display()));
    }
    Ok(paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let report = verify_artifact_file(&p);
            (name, report)
        })
        .collect())
}
