//! The unified sweep driver: run any registered scenario (or all of them)
//! through the engine, with parallel cell execution and the content-keyed
//! result cache.
//!
//! ```text
//! sweep --list                         # scenario index
//! sweep --scenario fig02               # one scenario, reduced scale
//! sweep --scenario all --full --csv    # every scenario at paper scale
//! sweep --scenario fig02 --jobs 2 --expect-cache-hot
//! ```
//!
//! Unlike the per-figure binaries, `sweep` always writes (and validates) the
//! JSON artifact `results/<scenario>.json` and prints a cache/solver summary
//! per scenario. `--expect-cache-hot` turns a warm cache into an assertion:
//! the run fails unless every cell came from the cache with zero solver
//! invocations — CI uses this to prove the cache works end to end.

use experiments::{find_scenario, registry, run_and_emit, ExtraFlag, RunOptions};

const EXTRA_FLAGS: [ExtraFlag; 3] = [
    ExtraFlag {
        name: "--list",
        takes_value: false,
        help: "print the scenario index and exit",
    },
    ExtraFlag {
        name: "--scenario",
        takes_value: true,
        help: "scenario name to run (or 'all')",
    },
    ExtraFlag {
        name: "--expect-cache-hot",
        takes_value: false,
        help: "fail unless every cell is served from the cache (zero solver calls)",
    },
];

fn print_index() {
    println!("Registered scenarios (run with --scenario <name>):\n");
    for s in registry() {
        println!("  {:<14} {}", s.name, s.title);
    }
    println!("\nCells are cached under results/cache/; artifacts go to results/<name>.json.");
}

fn main() {
    let (opts, extras) = RunOptions::from_args_with(&EXTRA_FLAGS);
    let flag = |name: &str| extras.iter().find(|(n, _)| n == name);
    if flag("--list").is_some() {
        print_index();
        return;
    }
    let Some((_, target)) = flag("--scenario") else {
        print_index();
        eprintln!("\nerror: --scenario <name> (or --list) is required");
        std::process::exit(2);
    };
    let expect_cache_hot = flag("--expect-cache-hot").is_some();

    let scenarios = if target == "all" {
        registry()
    } else {
        match find_scenario(target) {
            Some(s) => vec![s],
            None => {
                eprintln!("error: unknown scenario '{target}' (see --list)");
                std::process::exit(2);
            }
        }
    };

    let mut cache_cold = false;
    for scenario in &scenarios {
        let (report, render) = run_and_emit(scenario, &opts);
        // The per-figure binaries only write the artifact with --csv; the
        // sweep driver always writes (and validates) it — except on filtered
        // runs, which would overwrite the complete artifact with a subset.
        if !opts.csv && opts.filter.is_none() {
            experiments::write_and_validate_artifact(
                scenario,
                &opts.sweep_options(),
                &report,
                &render,
            );
        }
        println!(
            "\n[sweep] {}: {} cells ({} unique), {} cache hits, {} solver calls",
            scenario.name,
            report.outcomes.len(),
            report.unique_cells,
            report.cache_hits,
            report.solver_calls
        );
        if report.cache_hits < report.unique_cells || report.solver_calls > 0 {
            cache_cold = true;
        }
    }
    if expect_cache_hot && cache_cold {
        eprintln!("error: --expect-cache-hot but at least one cell was computed fresh");
        std::process::exit(1);
    }
}
