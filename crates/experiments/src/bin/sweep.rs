//! The unified sweep driver: run any registered scenario (or all of them)
//! through the engine, with parallel cell execution and the content-keyed
//! result cache — plus artifact diffing for before/after regression checks.
//!
//! ```text
//! sweep --list                         # scenario index
//! sweep --scenario fig02               # one scenario, reduced scale
//! sweep --scenario all --full --csv    # every scenario at paper scale
//! sweep --scenario fig02 --jobs 2 --expect-cache-hot
//! sweep --scenario all --write-golden  # refresh results/golden/
//!
//! sweep diff results/golden/fig02.json results/fig02.json
//! sweep diff --all results/golden/ results/
//! sweep diff --tolerance 1e-9 old.json new.json
//!
//! sweep --scenario fig02 --certify     # attach optimality certificates
//! sweep verify results/fig02.json      # re-check the stored certificates
//! sweep verify --all results/golden/
//! ```
//!
//! Unlike the per-figure binaries, `sweep` always writes (and validates) the
//! JSON artifact `results/<scenario>.json` (filtered runs:
//! `results/<scenario>.partial.json`, marked `"partial": true`) and prints a
//! cache/solver/build summary per scenario. `--expect-cache-hot` turns a
//! warm cache into an assertion: the run fails unless every cell came from
//! the cache with zero solver invocations **and zero topology
//! constructions** — CI uses this to prove that both the cache and the
//! construction-free metadata layer work end to end.
//!
//! `sweep diff` compares two artifacts (or, with `--all`, two artifact
//! directories) cell by cell: values must match bit for bit (or within
//! `--tolerance`), and added/removed cells, label changes and schema changes
//! are reported. Exit status: 0 clean, 1 regressions, 2 usage/IO errors.
//!
//! `sweep verify` independently re-checks the optimality certificates stored
//! by a `--certify` run: each certified cell's instance is rebuilt from its
//! spec and the evidence re-verified bit for bit (same exit convention).

use experiments::{find_scenario, registry, run_and_emit, ExtraFlag, RunOptions};
use topobench::sweep::{diff_dirs, diff_files, DiffOptions};

const EXTRA_FLAGS: [ExtraFlag; 4] = [
    ExtraFlag {
        name: "--list",
        takes_value: false,
        help: "print the scenario index and exit",
    },
    ExtraFlag {
        name: "--scenario",
        takes_value: true,
        help: "scenario name to run (or 'all')",
    },
    ExtraFlag {
        name: "--expect-cache-hot",
        takes_value: false,
        help: "fail unless every cell is served from the cache (zero solver calls, zero builds)",
    },
    ExtraFlag {
        name: "--write-golden",
        takes_value: false,
        help: "also copy each complete artifact to results/golden/<name>.json",
    },
];

fn print_index() {
    println!("Registered scenarios (run with --scenario <name>):\n");
    for s in registry() {
        println!("  {:<14} {}", s.name, s.title);
    }
    println!("\nCells are cached under results/cache/; artifacts go to results/<name>.json.");
    println!("Compare artifacts with: sweep diff [--all] [--tolerance X] <old> <new>");
}

fn run_diff(args: &[String]) -> i32 {
    let mut all = false;
    let mut tolerance = 0.0f64;
    let mut paths: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--tolerance" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("error: --tolerance requires a value");
                    return 2;
                };
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => tolerance = t,
                    _ => {
                        eprintln!("error: --tolerance requires a non-negative number, got '{v}'");
                        return 2;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "Usage: sweep diff [--all] [--tolerance X] <old> <new>\n\n\
                     Compares two topobench-sweep/v1 artifacts cell by cell (bit-exact by\n\
                     default). With --all, <old> and <new> are directories and every *.json\n\
                     artifact present in both is compared; artifacts missing from <new> are\n\
                     regressions. Exit status: 0 clean, 1 regressions, 2 usage/IO errors."
                );
                return 0;
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown argument: {flag}");
                return 2;
            }
            path => paths.push(path),
        }
        i += 1;
    }
    let [old, new] = paths.as_slice() else {
        eprintln!("error: sweep diff requires exactly two paths (old, new); see sweep diff --help");
        return 2;
    };
    let opts = DiffOptions { tolerance };
    if all {
        match diff_dirs(old.as_ref(), new.as_ref(), &opts) {
            Ok(diff) => {
                print!("{}", diff.render());
                if diff.is_clean() {
                    println!("[sweep diff] OK: {} artifact(s) compared", diff.diffs.len());
                    0
                } else {
                    eprintln!("[sweep diff] FAILED: {} regression(s)", diff.regressions());
                    1
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        }
    } else {
        match diff_files(old.as_ref(), new.as_ref(), &opts) {
            Ok(diff) => {
                print!("{}", diff.render());
                if diff.is_clean() {
                    0
                } else {
                    eprintln!("[sweep diff] FAILED: {} regression(s)", diff.regressions());
                    1
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        }
    }
}

fn run_verify(args: &[String]) -> i32 {
    let mut all = false;
    let mut paths: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--all" => all = true,
            "--help" | "-h" => {
                println!(
                    "Usage: sweep verify [--all] <artifact|dir>\n\n\
                     Re-checks the optimality certificates stored in a topobench-sweep/v1\n\
                     artifact (produce one with --certify): each certified cell's instance is\n\
                     rebuilt from its spec and the stored evidence is re-verified against it,\n\
                     bit for bit. Failed and budget-exhausted cells are reported as\n\
                     unverifiable, never certified. With --all, every *.json artifact in the\n\
                     directory is verified and at least one certificate must be present\n\
                     overall (an accidentally uncertified tree must not read as clean).\n\
                     Exit status: 0 verified clean, 1 bad certificate (or nothing certified\n\
                     with --all), 2 usage/IO errors."
                );
                return 0;
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown argument: {flag}");
                return 2;
            }
            path => paths.push(path),
        }
    }
    let [path] = paths.as_slice() else {
        eprintln!("error: sweep verify requires exactly one path; see sweep verify --help");
        return 2;
    };
    if all {
        let results = match experiments::verify::verify_artifact_dir(path.as_ref()) {
            Ok(results) => results,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let mut certified = 0usize;
        let mut bad = 0usize;
        let mut io_errors = 0usize;
        for (name, result) in &results {
            match result {
                Ok(report) => {
                    print!("{}", report.render());
                    certified += report.certified;
                    bad += report.bad.len();
                }
                Err(e) => {
                    eprintln!("error: {name}: {e}");
                    io_errors += 1;
                }
            }
        }
        if io_errors > 0 {
            return 2;
        }
        if bad > 0 {
            eprintln!("[sweep verify] FAILED: {bad} bad certificate(s)");
            return 1;
        }
        if certified == 0 {
            // A tree with zero certificates verifies nothing; succeeding here
            // would let an accidentally uncertified golden refresh pass CI.
            eprintln!(
                "[sweep verify] FAILED: no certificates found in {path} \
                 (regenerate the artifacts with --certify)"
            );
            return 1;
        }
        println!(
            "[sweep verify] OK: {certified} certificate(s) verified across {} artifact(s)",
            results.len()
        );
        0
    } else {
        match experiments::verify::verify_artifact_file(path.as_ref()) {
            Ok(report) => {
                print!("{}", report.render());
                if report.is_clean() {
                    0
                } else {
                    eprintln!(
                        "[sweep verify] FAILED: {} bad certificate(s)",
                        report.bad.len()
                    );
                    1
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        }
    }
}

fn main() {
    // `sweep diff` / `sweep verify` are subcommands with their own argument
    // grammar; dispatch before the shared strict option parser sees the args.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("diff") {
        std::process::exit(run_diff(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("verify") {
        std::process::exit(run_verify(&raw[1..]));
    }

    let (opts, extras) = RunOptions::from_args_with(&EXTRA_FLAGS);
    let flag = |name: &str| extras.iter().find(|(n, _)| n == name);
    if flag("--list").is_some() {
        print_index();
        return;
    }
    let Some((_, target)) = flag("--scenario") else {
        print_index();
        eprintln!("\nerror: --scenario <name> (or --list) is required");
        std::process::exit(2);
    };
    let expect_cache_hot = flag("--expect-cache-hot").is_some();
    let write_golden = flag("--write-golden").is_some();
    if write_golden && opts.filter.is_some() {
        eprintln!("error: --write-golden cannot be combined with --filter (partial artifacts are not golden)");
        std::process::exit(2);
    }
    if write_golden && opts.solver_jobs.unwrap_or(1) > 1 {
        // Golden artifacts pin the serial solver trajectory; a batched run
        // (flag or a stray TB_SOLVER_JOBS in the environment) would silently
        // commit different — equally valid, but non-canonical — values.
        eprintln!(
            "error: --write-golden requires the serial solver trajectory \
             (drop --solver-jobs / unset TB_SOLVER_JOBS)"
        );
        std::process::exit(2);
    }
    if write_golden && opts.warm {
        // Same reasoning as --solver-jobs: warm chains take a different
        // (gate-guarded) trajectory than the canonical cold one.
        eprintln!("error: --write-golden requires cold solves (drop --warm)");
        std::process::exit(2);
    }

    let scenarios = if target == "all" {
        registry()
    } else {
        match find_scenario(target) {
            Some(s) => vec![s],
            None => {
                eprintln!("error: unknown scenario '{target}' (see --list)");
                std::process::exit(2);
            }
        }
    };

    let mut cache_cold = false;
    for scenario in &scenarios {
        let (report, render, written) = run_and_emit(scenario, &opts);
        // The per-figure binaries only write the artifact with --csv; the
        // sweep driver always writes (and validates) it. Filtered runs land
        // in results/<name>.partial.json via the artifact writer.
        let artifact_path = written.unwrap_or_else(|| {
            experiments::write_and_validate_artifact(
                scenario,
                &opts.sweep_options(),
                &report,
                &render,
            )
        });
        if write_golden {
            let golden_dir = std::path::PathBuf::from("results").join("golden");
            std::fs::create_dir_all(&golden_dir).expect("failed to create results/golden");
            let golden_path = golden_dir.join(format!("{}.json", scenario.name));
            std::fs::copy(&artifact_path, &golden_path).expect("failed to copy golden artifact");
            println!("(golden: {})", golden_path.display());
        }
        println!(
            "\n[sweep] {}: {} cells ({} unique), {} cache hits, {} solver calls, {} topology builds",
            scenario.name,
            report.outcomes.len(),
            report.unique_cells,
            report.cache_hits,
            report.solver_calls,
            report.topo_builds
        );
        if report.failed_cells > 0 {
            // Failed cells are isolated, not fatal: the artifact records them
            // with "status": "failed" and `sweep diff` flags the change.
            eprintln!(
                "[sweep] warning: {}: {} cell(s) failed (marked in the artifact)",
                scenario.name, report.failed_cells
            );
        }
        if report.cache_hits < report.unique_cells
            || report.solver_calls > 0
            || report.topo_builds > 0
        {
            cache_cold = true;
        }
    }
    if expect_cache_hot && cache_cold {
        eprintln!(
            "error: --expect-cache-hot but at least one cell was computed fresh \
             (or a topology was constructed)"
        );
        std::process::exit(1);
    }
}
