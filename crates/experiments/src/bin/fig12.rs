//! Figure 12: absolute throughput under the tunable skewed TM for a hypercube,
//! a fat tree, and Jellyfish networks built with the same equipment as each,
//! as the percentage of large flows grows. Shows the fat-tree anomaly in
//! absolute terms.

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::{fattree::fat_tree, hypercube::hypercube, jellyfish::same_equipment, Topology};
use topobench::{evaluate_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figure 12: absolute throughput vs percentage of large flows (weight 10, longest matching)",
        &["network", "%large", "abs-throughput"],
    );
    let cube = if opts.full {
        hypercube(7, 4)
    } else {
        hypercube(6, 3)
    };
    let ft = if opts.full { fat_tree(10) } else { fat_tree(8) };
    let jelly_cube = same_equipment(&cube, opts.seed.wrapping_add(11));
    let jelly_ft = same_equipment(&ft, opts.seed.wrapping_add(12));
    let networks: Vec<(&str, &Topology)> = vec![
        ("Hypercube", &cube),
        ("Fat tree", &ft),
        ("Jellyfish (same equip. as hypercube)", &jelly_cube),
        ("Jellyfish (same equip. as fat tree)", &jelly_ft),
    ];
    let percents: Vec<f64> = if opts.full {
        vec![1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0]
    } else {
        vec![1.0, 10.0, 100.0]
    };
    for (name, topo) in networks {
        for &p in &percents {
            let spec = TmSpec::SkewedLongestMatching {
                fraction: p / 100.0,
                weight: 10.0,
            };
            let tm = spec.generate(topo, opts.seed);
            let v = evaluate_throughput(topo, &tm, &cfg).value();
            table.row_strings(vec![name.to_string(), format!("{p:.0}"), f3(v)]);
        }
    }
    emit(&table, "fig12_skewed_absolute", &opts);
    println!(
        "\nExpected shape (paper): the fat tree's absolute throughput dips at small percentages of\n\
         large flows and recovers at 100% (where rescaling makes the TM uniform again); the\n\
         hypercube and both Jellyfish networks stay comparatively flat."
    );
}
