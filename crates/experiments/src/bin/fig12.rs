//! Figure 12: absolute throughput under the tunable skewed TM for a hypercube, a fat tree and same-equipment Jellyfish networks.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig12` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig12` is equivalent.

fn main() {
    experiments::scenario_main("fig12");
}
