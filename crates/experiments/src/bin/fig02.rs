//! Figure 2: throughput resulting from several traffic matrices in three
//! topologies (hypercube, random regular graph, fat tree) as the degree /
//! switch radix grows.
//!
//! Series: All-to-all, Random Matching with 10 / 2 / 1 servers per switch,
//! Kodialam TM, Longest Matching, and the Theorem-2 lower bound `T_A2A / 2`.

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::{fattree::fat_tree, hypercube::hypercube, jellyfish::jellyfish, Topology};
use topobench::{evaluate_throughput, EvalConfig, TmSpec};

fn with_servers(topo: &Topology, per_switch: usize) -> Topology {
    // Replace the server attachment (used to vary the RM(k) concentration on
    // the same switch graph, exactly like the paper's Fig 2 series).
    let servers: Vec<usize> = topo
        .servers
        .iter()
        .map(|&s| if s > 0 { per_switch } else { 0 })
        .collect();
    Topology::new(
        topo.name.clone(),
        topo.params.clone(),
        topo.graph.clone(),
        servers,
    )
}

fn evaluate_series(topo: &Topology, cfg: &EvalConfig, seed: u64) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let a2a = evaluate_throughput(topo, &TmSpec::AllToAll.generate(topo, seed), cfg).value();
    out.push(("A2A".to_string(), a2a));
    for k in [10usize, 2, 1] {
        let t = with_servers(topo, k);
        let tm = TmSpec::RandomMatching {
            servers_per_switch: k,
        }
        .generate(&t, seed);
        let v = evaluate_throughput(&t, &tm, cfg).value();
        out.push((format!("RM({k})"), v));
    }
    let kod = evaluate_throughput(topo, &TmSpec::Kodialam.generate(topo, seed), cfg).value();
    out.push(("Kodialam".to_string(), kod));
    let lm = evaluate_throughput(topo, &TmSpec::LongestMatching.generate(topo, seed), cfg).value();
    out.push(("LongestMatching".to_string(), lm));
    out.push(("LowerBound(A2A/2)".to_string(), a2a / 2.0));
    out
}

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let header = [
        "topology",
        "size-param",
        "A2A",
        "RM(10)",
        "RM(2)",
        "RM(1)",
        "Kodialam",
        "LM",
        "LowerBound",
    ];
    let mut table = Table::new(
        "Figure 2: absolute throughput of TM families vs topology degree",
        &header,
    );

    let hyper_degrees: Vec<usize> = if opts.full {
        (3..=9).collect()
    } else {
        (3..=6).collect()
    };
    for d in hyper_degrees {
        let topo = hypercube(d, 1);
        let series = evaluate_series(&topo, &cfg, opts.seed);
        let mut row = vec!["hypercube".to_string(), format!("d={d}")];
        row.extend(series.iter().map(|(_, v)| f3(*v)));
        table.row_strings(row);
    }

    let rrg_degrees: Vec<usize> = if opts.full {
        (3..=9).collect()
    } else {
        (3..=6).collect()
    };
    for d in rrg_degrees {
        // Same switch count as the matching hypercube for a familiar scale.
        let n = 1usize << if opts.full { 7 } else { 5 };
        let topo = jellyfish(n, d, 1, opts.seed);
        let series = evaluate_series(&topo, &cfg, opts.seed);
        let mut row = vec!["random-regular".to_string(), format!("r={d}")];
        row.extend(series.iter().map(|(_, v)| f3(*v)));
        table.row_strings(row);
    }

    let fat_ks: Vec<usize> = if opts.full {
        vec![4, 6, 8, 10, 12]
    } else {
        vec![4, 6, 8]
    };
    for k in fat_ks {
        let topo = fat_tree(k);
        let series = evaluate_series(&topo, &cfg, opts.seed);
        let mut row = vec!["fat-tree".to_string(), format!("k={k}")];
        row.extend(series.iter().map(|(_, v)| f3(*v)));
        table.row_strings(row);
    }

    emit(&table, "fig02_tm_families", &opts);
    println!(
        "\nExpected shape (paper): A2A >= RM(10) >= RM(2) >= RM(1) >= Kodialam ~= LM >= lower bound;\n\
         in hypercubes LM sits essentially on the lower bound, in fat trees LM equals A2A."
    );
}
