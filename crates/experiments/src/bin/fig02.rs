//! Figure 2: throughput of several traffic-matrix families in three topologies as the degree / switch radix grows.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig02` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig02` is equivalent.

fn main() {
    experiments::scenario_main("fig02");
}
