//! Theorem 1 demonstration (§II-B / Appendix A): two graph families where the
//! sparsest-cut metric and worst-case throughput order *differently*.
//!
//! * Graph A — clustered random graph (two clusters, beta ≈ alpha / log n
//!   cross-cluster degree): low cut, but throughput of the same order.
//! * Graph B — a 2d-regular expander with every edge subdivided into a path of
//!   length p: higher cut than A, but asymptotically *lower* throughput
//!   because every unit of flow consumes p links of capacity.
//!
//! Choosing networks by sparsest cut would prefer B; measuring throughput
//! correctly prefers A.

use experiments::{emit, f3, RunOptions, Table};
use tb_cuts::estimate_sparsest_cut;
use tb_topology::expander::{clustered_random, subdivided_expander};
use tb_topology::Topology;
use topobench::{evaluate_throughput, TmSpec};

fn measure(topo: &Topology, opts: &RunOptions) -> (f64, f64) {
    let cfg = opts.eval_config();
    let tm = TmSpec::AllToAll.generate(topo, opts.seed);
    let throughput = evaluate_throughput(topo, &tm, &cfg).value();
    let cut = estimate_sparsest_cut(&topo.graph, &tm).best_sparsity;
    (throughput, cut)
}

fn main() {
    let opts = RunOptions::from_args();
    let n: usize = if opts.full { 128 } else { 48 };
    // Graph A: degree 2d = 6 with beta ~ alpha / log2(n).
    let alpha = 5;
    let beta = 1;
    let graph_a = clustered_random(n, alpha, beta, opts.seed);
    // Graph B: same node budget: N = n / p base nodes, degree 2d = 6, p = 3.
    let p = 3;
    let d = 3;
    // Base expander has N nodes and N*d edges; subdividing adds N*d*(p-1)
    // nodes, so total nodes = N + N*d*(p-1). Choose N so totals are close to n.
    let base_n = (n as f64 / (1.0 + d as f64 * (p as f64 - 1.0))).round() as usize;
    let base_n = if (base_n * 2 * d) % 2 == 1 {
        base_n + 1
    } else {
        base_n.max(4)
    };
    let graph_b = subdivided_expander(base_n, d, p, opts.seed);

    let (ta, ca) = measure(&graph_a, &opts);
    let (tb, cb) = measure(&graph_b, &opts);

    let mut table = Table::new(
        "Theorem 1 demo: sparsest cut can rank networks opposite to throughput",
        &[
            "graph",
            "nodes",
            "links",
            "A2A throughput",
            "sparse cut",
            "cut/throughput",
        ],
    );
    table.row_strings(vec![
        "A: clustered random".into(),
        graph_a.num_switches().to_string(),
        graph_a.num_links().to_string(),
        f3(ta),
        f3(ca),
        f3(ca / ta),
    ]);
    table.row_strings(vec![
        format!("B: subdivided expander (p={p})"),
        graph_b.num_switches().to_string(),
        graph_b.num_links().to_string(),
        f3(tb),
        f3(cb),
        f3(cb / tb),
    ]);
    emit(&table, "theorem1_demo", &opts);
    println!(
        "\nExpected shape (paper, Theorem 1): graph B's cut/throughput ratio is much larger than\n\
         graph A's — B \"looks\" better through the cut lens while delivering lower throughput per\n\
         unit of cut, because its flows traverse p links each."
    );
}
