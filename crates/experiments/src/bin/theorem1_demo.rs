//! Theorem 1 demonstration: two graph families where sparsest cut and worst-case throughput order differently.
//!
//! Thin wrapper: the cell grid and rendering live in the `theorem1_demo` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario theorem1_demo` is equivalent.

fn main() {
    experiments::scenario_main("theorem1_demo");
}
