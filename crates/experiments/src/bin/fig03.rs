//! Figure 3: worst-case throughput vs the sparsest cut found by the estimator battery, plus the SIII-B flattened-butterfly case study.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig03` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig03` is equivalent.

fn main() {
    experiments::scenario_main("fig03");
}
