//! Figure 3 (a, b): worst-case throughput vs the sparsest cut found by the
//! estimator battery, across all topology families and the natural-network
//! stand-ins, under the longest-matching TM. Also reports the §III-B
//! flattened-butterfly case study (throughput strictly below the sparsest
//! cut on a 25-switch network).

use experiments::{emit, f3, RunOptions, Table};
use tb_cuts::estimate_sparsest_cut;
use tb_topology::{
    families::ALL_FAMILIES, flattened_butterfly::flattened_butterfly, natural::natural_networks,
};
use topobench::{evaluate_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figure 3: throughput vs sparse cut (longest-matching TM)",
        &[
            "network",
            "params",
            "switches",
            "sparse-cut",
            "throughput",
            "cut/throughput",
        ],
    );

    let mut networks = Vec::new();
    for family in ALL_FAMILIES {
        for topo in family.instances(opts.scale(), opts.seed) {
            // The cut estimators include an O(n^2) two-node sweep per network;
            // keep the scatter to moderately sized instances like the paper.
            if topo.num_switches() <= if opts.full { 200 } else { 90 } {
                networks.push(topo);
            }
        }
    }
    let natural_count = if opts.full { 40 } else { 12 };
    networks.extend(natural_networks(natural_count, opts.seed));

    for topo in &networks {
        let tm = TmSpec::LongestMatching.generate(topo, opts.seed);
        let throughput = evaluate_throughput(topo, &tm, &cfg).value();
        let report = estimate_sparsest_cut(&topo.graph, &tm);
        let ratio = if throughput > 0.0 {
            report.best_sparsity / throughput
        } else {
            f64::NAN
        };
        table.row_strings(vec![
            topo.name.clone(),
            topo.params.clone(),
            topo.num_switches().to_string(),
            f3(report.best_sparsity),
            f3(throughput),
            f3(ratio),
        ]);
    }
    emit(&table, "fig03_cut_vs_throughput", &opts);

    // §III-B case study: 5-ary 3-stage flattened butterfly (25 switches,
    // 125 servers): throughput < sparsest cut even at this small size.
    let fbfly = flattened_butterfly(5, 3);
    let tm = TmSpec::LongestMatching.generate(&fbfly, opts.seed);
    let throughput = evaluate_throughput(&fbfly, &tm, &cfg);
    let report = estimate_sparsest_cut(&fbfly.graph, &tm);
    let mut case = Table::new(
        "SIII-B case study: 5-ary 3-stage flattened butterfly",
        &["metric", "value"],
    );
    case.row_strings(vec!["switches".into(), fbfly.num_switches().to_string()]);
    case.row_strings(vec!["servers".into(), fbfly.num_servers().to_string()]);
    case.row_strings(vec!["sparse cut".into(), f3(report.best_sparsity)]);
    case.row_strings(vec!["throughput (lower)".into(), f3(throughput.lower)]);
    case.row_strings(vec!["throughput (upper)".into(), f3(throughput.upper)]);
    emit(&case, "fig03_fbfly_case", &opts);
    println!(
        "\nExpected shape (paper): every point satisfies throughput <= cut; for many networks the\n\
         cut overestimates throughput (up to ~3x), and even the 25-switch flattened butterfly has\n\
         throughput strictly below its sparsest cut (0.565 vs 0.6 in the paper's units)."
    );
}
