//! Figures 10 and 11: relative throughput under non-uniform (skewed) longest
//! matching TMs, as the percentage of "large" flows (weight 10) grows.
//! The paper's finding: all families degrade gracefully except fat trees,
//! which dip sharply when only a few flows are large.

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::families::ALL_FAMILIES;
use topobench::{relative_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figures 10/11: relative throughput vs percentage of large flows (weight 10, longest matching)",
        &["topology", "params", "%large", "rel-throughput", "ci95"],
    );
    let percents: Vec<f64> = if opts.full {
        vec![1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0]
    } else {
        vec![5.0, 25.0, 100.0]
    };
    for family in ALL_FAMILIES {
        let topo = family.representative(opts.seed);
        for &p in &percents {
            let spec = TmSpec::SkewedLongestMatching {
                fraction: p / 100.0,
                weight: 10.0,
            };
            let r = relative_throughput(&topo, &spec, &cfg);
            table.row_strings(vec![
                family.name().to_string(),
                topo.params.clone(),
                format!("{p:.0}"),
                f3(r.relative.mean),
                f3(r.relative.ci95),
            ]);
        }
    }
    emit(&table, "fig10_11_skewed", &opts);
    println!(
        "\nExpected shape (paper): every family except the fat tree keeps a roughly flat relative\n\
         throughput as the fraction of large flows grows; the fat tree dips noticeably when only\n\
         a few flows are large because its ToR uplinks carry only locally originated traffic."
    );
}
