//! Figures 10 and 11: relative throughput under non-uniform (skewed) longest-matching TMs.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig10_11` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig10_11` is equivalent.

fn main() {
    experiments::scenario_main("fig10_11");
}
