//! Figure 4: throughput under different TMs, normalized so the Theorem-2
//! lower bound (`T_A2A / 2`) equals 1, for a representative instance of each
//! of the ten topology families. In these units A2A is exactly 2, and the
//! paper observes `A2A >= RM(5) >= RM(1) >= LM >= 1` for every family.

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::families::ALL_FAMILIES;
use topobench::{evaluate_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figure 4: throughput normalized to the theoretical lower bound (T_A2A/2 = 1)",
        &["topology", "params", "A2A", "RM(5)", "RM(1)", "LM"],
    );

    for family in ALL_FAMILIES {
        let topo = family.representative(opts.seed);
        let a2a =
            evaluate_throughput(&topo, &TmSpec::AllToAll.generate(&topo, opts.seed), &cfg).value();
        let bound = a2a / 2.0;
        let mut normalized = Vec::new();
        normalized.push(a2a / bound); // = 2 by construction
        for spec in [
            TmSpec::RandomMatching {
                servers_per_switch: 5,
            },
            TmSpec::RandomMatching {
                servers_per_switch: 1,
            },
            TmSpec::LongestMatching,
        ] {
            let v = evaluate_throughput(&topo, &spec.generate(&topo, opts.seed), &cfg).value();
            normalized.push(v / bound);
        }
        table.row_strings(vec![
            family.name().to_string(),
            topo.params.clone(),
            f3(normalized[0]),
            f3(normalized[1]),
            f3(normalized[2]),
            f3(normalized[3]),
        ]);
    }
    emit(&table, "fig04_normalized_tms", &opts);
    println!(
        "\nExpected shape (paper): every row satisfies 2 = A2A >= RM(5) >= RM(1) >= LM >= 1\n\
         (up to solver tolerance); LM reaches ~1 for BCube, Hypercube, HyperX and Dragonfly,\n\
         while in fat trees LM stays at the A2A value because the lower bound is loose there."
    );
}
