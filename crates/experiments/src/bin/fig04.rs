//! Figure 4: throughput under different TMs normalized so the Theorem-2 lower bound equals 1, per topology-family representative.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig04` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig04` is equivalent.

fn main() {
    experiments::scenario_main("fig04");
}
