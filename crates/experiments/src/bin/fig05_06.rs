//! Figures 5 and 6 + Table I: relative throughput (topology vs same-equipment
//! random graph) as a function of the number of servers, for all ten topology
//! families under three TMs: all-to-all, random matching (1 server per
//! switch), and longest matching. Table I is the last (largest) point of each
//! family's curve.

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::families::ALL_FAMILIES;
use topobench::{relative_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let specs = [
        TmSpec::AllToAll,
        TmSpec::RandomMatching {
            servers_per_switch: 1,
        },
        TmSpec::LongestMatching,
    ];

    let mut table = Table::new(
        "Figures 5/6: relative throughput vs number of servers",
        &[
            "topology",
            "params",
            "servers",
            "TM",
            "rel-throughput",
            "ci95",
        ],
    );
    // Table I: relative throughput of the largest instance per family.
    let mut table1 = Table::new(
        "Table I: relative throughput at the largest size tested",
        &["topology", "A2A", "RM(1)", "LM"],
    );

    for family in ALL_FAMILIES {
        let instances = family.instances(opts.scale(), opts.seed);
        let mut largest_row: Vec<String> = vec![family.name().to_string()];
        for spec in &specs {
            let mut last = f64::NAN;
            for topo in &instances {
                let r = relative_throughput(topo, spec, &cfg);
                table.row_strings(vec![
                    family.name().to_string(),
                    topo.params.clone(),
                    topo.num_servers().to_string(),
                    spec.label(),
                    f3(r.relative.mean),
                    f3(r.relative.ci95),
                ]);
                last = r.relative.mean;
            }
            largest_row.push(format!("{:.0}%", last * 100.0));
        }
        table1.row_strings(largest_row);
    }

    emit(&table, "fig05_06_relative_throughput", &opts);
    emit(&table1, "table01_largest_size", &opts);
    println!(
        "\nExpected shape (paper): Jellyfish sits at 1.0 by definition; most structured\n\
         topologies degrade relative to the random graph as size grows (Table I: BCube ~51%,\n\
         Hypercube ~51%, Flattened BF ~47% under LM at the largest sizes), while fat trees do\n\
         comparatively better under LM (~89%) than under A2A (~65%)."
    );
}
