//! Figures 5 and 6 + Table I: relative throughput vs number of servers for all ten topology families under three TMs.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig05_06` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig05_06` is equivalent.

fn main() {
    experiments::scenario_main("fig05_06");
}
