//! Figure 8: Long Hop networks' relative throughput under the longest-matching
//! TM for dimensions 5, 6 and 7 (8 with `--full`). The paper's finding: Long
//! Hop networks are good, but no better than same-equipment random graphs
//! (relative throughput approaches but does not exceed 1).

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::longhop::long_hop;
use topobench::{relative_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figure 8: Long Hop relative throughput under longest matching",
        &["dimension", "degree", "servers", "rel-throughput", "ci95"],
    );
    let dims: Vec<usize> = if opts.full {
        vec![5, 6, 7, 8]
    } else {
        vec![5, 6, 7]
    };
    for d in dims {
        // Degree and concentration grow mildly with dimension, mirroring the
        // equipment assumptions of the instance ladder.
        for extra in [2usize, 3, 4] {
            let topo = long_hop(d, d + extra, (d + extra) / 3);
            let r = relative_throughput(&topo, &TmSpec::LongestMatching, &cfg);
            table.row_strings(vec![
                d.to_string(),
                (d + extra).to_string(),
                topo.num_servers().to_string(),
                f3(r.relative.mean),
                f3(r.relative.ci95),
            ]);
        }
    }
    emit(&table, "fig08_longhop", &opts);
    println!(
        "\nExpected shape (paper): relative throughput below 1 at small sizes and approaching 1\n\
         as dimension/size grows — Long Hop networks are no better than random graphs."
    );
}
