//! Figure 8: Long Hop networks' relative throughput under the longest-matching TM.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig08` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig08` is equivalent.

fn main() {
    experiments::scenario_main("fig08");
}
