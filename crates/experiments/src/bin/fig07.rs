//! Figure 7: HyperX relative throughput under longest matching for designs targeting several bisection ratios.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig07` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig07` is equivalent.

fn main() {
    experiments::scenario_main("fig07");
}
