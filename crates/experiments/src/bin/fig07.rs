//! Figure 7: HyperX relative throughput under the longest-matching TM for
//! designs targeting bisection ratios 0.2, 0.4 and 0.5, as the requested
//! server count grows. Illustrates that a high design-time bisection does not
//! guarantee high achieved throughput.

use experiments::{emit, f3, RunOptions, Table};
use tb_topology::hyperx::{build_design, design_search};
use topobench::{relative_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figure 7: HyperX relative throughput (longest matching) vs servers, by target bisection",
        &[
            "bisection",
            "servers-target",
            "design",
            "servers",
            "switches",
            "rel-throughput",
            "ci95",
        ],
    );

    let targets: Vec<usize> = if opts.full {
        vec![128, 216, 324, 512, 648, 864, 1024]
    } else {
        vec![64, 128, 216, 324]
    };
    for &beta in &[0.2f64, 0.4, 0.5] {
        for &servers in &targets {
            let Some(design) = design_search(24, servers, beta) else {
                continue;
            };
            let topo = build_design(&design);
            let r = relative_throughput(&topo, &TmSpec::LongestMatching, &cfg);
            table.row_strings(vec![
                format!("{beta:.1}"),
                servers.to_string(),
                format!(
                    "L={} S={} K={} T={}",
                    design.dims, design.s, design.k, design.t
                ),
                topo.num_servers().to_string(),
                topo.num_switches().to_string(),
                f3(r.relative.mean),
                f3(r.relative.ci95),
            ]);
        }
    }
    emit(&table, "fig07_hyperx", &opts);
    println!(
        "\nExpected shape (paper): relative throughput varies widely (roughly 0.4-0.9) and\n\
         non-monotonically with the requested size for every bisection target — high bisection\n\
         does not imply high worst-case throughput."
    );
}
