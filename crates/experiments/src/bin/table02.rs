//! Table II: how often the estimated sparsest cut matches throughput, and which estimator found it.
//!
//! Thin wrapper: the cell grid and rendering live in the `table02` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario table02` is equivalent.

fn main() {
    experiments::scenario_main("table02");
}
