//! Table II: for every topology family (and the natural-network stand-ins),
//! how often the estimated sparsest cut matches the computed throughput, and
//! which estimator found the sparsest cut.

use experiments::{emit, RunOptions, Table};
use tb_cuts::{estimate_sparsest_cut, Estimator};
use tb_topology::{families::ALL_FAMILIES, natural::natural_networks, Topology};
use topobench::{evaluate_throughput, TmSpec};

#[derive(Default, Clone)]
struct Row {
    total: usize,
    matches: usize,
    by_estimator: [usize; 5],
}

fn estimator_index(e: Estimator) -> usize {
    match e {
        Estimator::BruteForce => 0,
        Estimator::OneNode => 1,
        Estimator::TwoNode => 2,
        Estimator::ExpandingRegion => 3,
        Estimator::Eigenvector => 4,
    }
}

fn account(row: &mut Row, topo: &Topology, cfg: &topobench::EvalConfig, seed: u64) {
    let tm = TmSpec::LongestMatching.generate(topo, seed);
    let throughput = evaluate_throughput(topo, &tm, cfg);
    let report = estimate_sparsest_cut(&topo.graph, &tm);
    row.total += 1;
    // "cut equals throughput" within the solver's bracketing tolerance plus 2%.
    if report.best_sparsity <= throughput.upper * 1.02 + 1e-9 {
        row.matches += 1;
    }
    for est in report.found_by(1e-6) {
        row.by_estimator[estimator_index(est)] += 1;
    }
}

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Table II: estimated sparsest cuts — do they match throughput, and which estimators found them?",
        &[
            "topology family", "networks", "cut=throughput", "Brute force", "1-node", "2-node",
            "Expanding regions", "Eigenvector",
        ],
    );

    let size_cap = if opts.full { 200 } else { 70 };
    let mut grand = Row::default();
    for family in ALL_FAMILIES {
        let mut row = Row::default();
        for topo in family.instances(opts.scale(), opts.seed) {
            if topo.num_switches() > size_cap {
                continue;
            }
            account(&mut row, &topo, &cfg, opts.seed);
        }
        grand.total += row.total;
        grand.matches += row.matches;
        for i in 0..5 {
            grand.by_estimator[i] += row.by_estimator[i];
        }
        table.row_strings(vec![
            family.name().to_string(),
            row.total.to_string(),
            row.matches.to_string(),
            row.by_estimator[0].to_string(),
            row.by_estimator[1].to_string(),
            row.by_estimator[2].to_string(),
            row.by_estimator[3].to_string(),
            row.by_estimator[4].to_string(),
        ]);
    }
    // Natural networks.
    let mut nat = Row::default();
    for topo in natural_networks(if opts.full { 40 } else { 12 }, opts.seed) {
        account(&mut nat, &topo, &cfg, opts.seed);
    }
    table.row_strings(vec![
        "Natural networks".to_string(),
        nat.total.to_string(),
        nat.matches.to_string(),
        nat.by_estimator[0].to_string(),
        nat.by_estimator[1].to_string(),
        nat.by_estimator[2].to_string(),
        nat.by_estimator[3].to_string(),
        nat.by_estimator[4].to_string(),
    ]);
    grand.total += nat.total;
    grand.matches += nat.matches;
    for i in 0..5 {
        grand.by_estimator[i] += nat.by_estimator[i];
    }
    table.row_strings(vec![
        "Total".to_string(),
        grand.total.to_string(),
        grand.matches.to_string(),
        grand.by_estimator[0].to_string(),
        grand.by_estimator[1].to_string(),
        grand.by_estimator[2].to_string(),
        grand.by_estimator[3].to_string(),
        grand.by_estimator[4].to_string(),
    ]);
    emit(&table, "table02_cut_estimators", &opts);
    println!(
        "\nExpected shape (paper): the estimated cut matches throughput in only a minority of\n\
         computer networks (throughput < cut elsewhere); the eigenvector sweep finds the winning\n\
         cut most often, with one/two-node cuts mattering mainly for the natural networks, and\n\
         fat trees matched by every estimator."
    );
}
