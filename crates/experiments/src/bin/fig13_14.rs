//! Figures 13 and 14: every topology family under the two synthetic Facebook rack-level TMs, sampled vs shuffled placement.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig13_14` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig13_14` is equivalent.

fn main() {
    experiments::scenario_main("fig13_14");
}
