//! Figure 9: Slim Fly relative throughput and relative average path length
//! under the longest-matching TM. The paper's point: Slim Fly's very short
//! paths (~0.85-0.9 of the random graph's) do not translate into higher
//! throughput; relative throughput is ~1 at small sizes and drops with scale.

use experiments::{emit, f3, RunOptions, Table};
use tb_graph::shortest_path::average_path_length;
use tb_topology::jellyfish::same_equipment;
use tb_topology::slimfly::{canonical_servers_per_router, slim_fly};
use topobench::{relative_throughput, TmSpec};

fn main() {
    let opts = RunOptions::from_args();
    let cfg = opts.eval_config();
    let mut table = Table::new(
        "Figure 9: Slim Fly relative throughput and relative path length (longest matching)",
        &[
            "q",
            "switches",
            "servers",
            "rel-throughput",
            "ci95",
            "rel-path-length",
        ],
    );
    let qs: Vec<usize> = if opts.full {
        vec![5, 13, 17]
    } else {
        vec![5, 13]
    };
    for q in qs {
        let topo = slim_fly(q, canonical_servers_per_router(q));
        let r = relative_throughput(&topo, &TmSpec::LongestMatching, &cfg);
        // Relative path length vs one same-equipment random graph.
        let rnd = same_equipment(&topo, opts.seed.wrapping_add(77));
        let apl_topo = average_path_length(&topo.graph).unwrap_or(f64::NAN);
        let apl_rnd = average_path_length(&rnd.graph).unwrap_or(f64::NAN);
        table.row_strings(vec![
            q.to_string(),
            topo.num_switches().to_string(),
            topo.num_servers().to_string(),
            f3(r.relative.mean),
            f3(r.relative.ci95),
            f3(apl_topo / apl_rnd),
        ]);
    }
    emit(&table, "fig09_slimfly", &opts);
    println!(
        "\nExpected shape (paper): relative path length ~0.85-0.9 (Slim Fly's paths are shorter\n\
         than the random graph's) while relative throughput is ~1 at small scale and declines\n\
         toward ~0.8 at the largest size under longest matching."
    );
}
