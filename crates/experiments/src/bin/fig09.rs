//! Figure 9: Slim Fly relative throughput and relative average path length under the longest-matching TM.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig09` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig09` is equivalent.

fn main() {
    experiments::scenario_main("fig09");
}
