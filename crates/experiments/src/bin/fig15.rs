//! Figure 15: replication of the Yuan et al. fat-tree vs Jellyfish comparison,
//! showing how two methodological choices change the conclusion:
//!
//! * **Comparison 1** — Yuan et al.'s method: split every all-to-all flow into
//!   subflows over K paths (LLSKR-style) and estimate throughput by counting
//!   and inverting the maximum number of intersecting subflows. Fat tree and
//!   Jellyfish look nearly identical.
//! * **Comparison 2** — exact (LP-based) throughput under the *same* path
//!   restriction: Jellyfish pulls ahead of the fat tree.
//! * **Comparison 3** — additionally equalize equipment (80 switches and 128
//!   servers in both): the gap grows further.

use experiments::{emit, f3, RunOptions, Table};
use tb_flow::restricted::{k_shortest_path_sets, PathRestrictedSolver, SubflowCountingEstimator};
use tb_topology::{fattree::fat_tree, jellyfish::jellyfish, Topology};
use tb_traffic::TrafficMatrix;
use topobench::TmSpec;

const K_PATHS: usize = 8;

fn a2a(topo: &Topology, seed: u64) -> TrafficMatrix {
    TmSpec::AllToAll.generate(topo, seed)
}

/// Builds the Jellyfish instance Yuan et al. used: the fat tree's 80 switches,
/// each with radix 8 (6 network ports + 2 servers), giving 160 servers.
fn jellyfish_yuan(seed: u64) -> Topology {
    jellyfish(80, 6, 2, seed)
}

/// Builds the equal-equipment Jellyfish: 80 switches and 128 servers.
fn jellyfish_equal(seed: u64) -> Topology {
    let base = jellyfish(80, 6, 0, seed);
    // Spread 128 servers as evenly as possible over the 80 switches.
    let mut servers = vec![1usize; 80];
    for s in servers.iter_mut().take(128 - 80) {
        *s += 1;
    }
    Topology::new("Jellyfish", "N=80, r=6, 128 servers", base.graph, servers)
}

fn evaluate(topo: &Topology, seed: u64) -> (f64, f64) {
    let tm = a2a(topo, seed);
    let paths = k_shortest_path_sets(&topo.graph, &tm, K_PATHS);
    // The counting estimator reports average per-flow throughput over
    // switch-level flows; convert to per-server units so the two networks
    // (which have different ToR counts) are comparable, as in the original
    // server-level measurement.
    let counting = SubflowCountingEstimator::new().estimate(&paths) * paths.len() as f64
        / topo.num_servers() as f64;
    let lp = PathRestrictedSolver::new().solve(&topo.graph, &paths);
    (counting, lp.value())
}

fn main() {
    let opts = RunOptions::from_args();
    let seed = opts.seed;
    let ft = fat_tree(8); // 80 switches, 128 servers
    let jf_yuan = jellyfish_yuan(seed);
    let jf_equal = jellyfish_equal(seed);

    println!(
        "fat tree: {} switches / {} servers; Jellyfish (Yuan): {} switches / {} servers; \
         Jellyfish (equalized): {} switches / {} servers",
        ft.num_switches(),
        ft.num_servers(),
        jf_yuan.num_switches(),
        jf_yuan.num_servers(),
        jf_equal.num_switches(),
        jf_equal.num_servers()
    );

    let (ft_count, ft_lp) = evaluate(&ft, seed);
    let (jf_count, jf_lp) = evaluate(&jf_yuan, seed);
    let (_, jf_eq_lp) = evaluate(&jf_equal, seed);

    let mut table = Table::new(
        "Figure 15: fat tree vs Jellyfish under three methodologies (A2A traffic)",
        &["comparison", "fat tree", "Jellyfish", "Jellyfish/FatTree"],
    );
    table.row_strings(vec![
        "1: subflow counting (Yuan et al.)".into(),
        f3(ft_count),
        f3(jf_count),
        f3(jf_count / ft_count),
    ]);
    table.row_strings(vec![
        "2: LP throughput, same paths".into(),
        f3(ft_lp),
        f3(jf_lp),
        f3(jf_lp / ft_lp),
    ]);
    table.row_strings(vec![
        "3: LP throughput, equal equipment".into(),
        f3(ft_lp),
        f3(jf_eq_lp),
        f3(jf_eq_lp / ft_lp),
    ]);
    emit(&table, "fig15_yuan", &opts);
    println!(
        "\nExpected shape (paper): the subflow-counting heuristic (Comparison 1) misjudges the two\n\
         networks as roughly comparable; switching to exact LP throughput under the same path\n\
         restriction (Comparison 2) reveals a clear Jellyfish advantage, and equalizing equipment\n\
         (Comparison 3) widens it further — the ordering C1 < C2 < C3 in the Jellyfish/FatTree\n\
         column is the reproduction target."
    );
}
