//! Figure 15: the Yuan et al. fat-tree vs Jellyfish comparison under three methodologies.
//!
//! Thin wrapper: the cell grid and rendering live in the `fig15` scenario
//! registration (`experiments::registry`); this binary runs it through the
//! sweep engine. `sweep --scenario fig15` is equivalent.

fn main() {
    experiments::scenario_main("fig15");
}
