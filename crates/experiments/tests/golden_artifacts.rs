//! Golden-artifact regression suite: every registered scenario is
//! regenerated from scratch (reduced scale, seed 1, no cache) and compared
//! cell-by-cell against the committed artifact under `results/golden/`
//! using the `sweep diff` engine. Every value must match **bit for bit** —
//! this is the process-level reproducibility guard (the class of bug it
//! catches: per-process randomized `HashSet` iteration leaking into graph
//! generation, as once happened to fig03/table02).
//!
//! Refresh after an intentional change with:
//!
//! ```text
//! cargo run --release -p tb_experiments --bin sweep -- \
//!     --scenario all --no-cache --write-golden
//! ```

use std::path::PathBuf;
use topobench::sweep::{
    artifact_json, diff_artifacts, run_scenario, validate_artifact, DiffOptions, SweepOptions,
};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str) {
    let scenario = experiments::find_scenario(name).expect("scenario registered");
    let mut opts = SweepOptions::new(false, 1);
    opts.use_cache = false; // hermetic: never trust (or touch) results/cache
    let (report, render) = run_scenario(&scenario, &opts);
    let fresh = artifact_json(scenario.name, scenario.title, &opts, &report, &render).to_string();
    validate_artifact(&fresh).expect("regenerated artifact must validate");

    let path = golden_path(name);
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden artifact {} ({e}); refresh with \
             `cargo run --release -p tb_experiments --bin sweep -- --scenario all --no-cache --write-golden`",
            path.display()
        )
    });
    let diff = diff_artifacts(&golden, &fresh, &DiffOptions::default())
        .expect("golden and regenerated artifacts must both parse");
    assert!(diff.compared > 0, "{name}: nothing compared");
    assert_eq!(
        diff.bit_identical, diff.compared,
        "{name}: not bit-identical to golden"
    );
    assert!(
        diff.is_clean(),
        "{name} drifted from its golden artifact:\n{}",
        diff.render()
    );
}

macro_rules! golden {
    ($test:ident, $name:literal) => {
        #[test]
        fn $test() {
            check_golden($name);
        }
    };
}

golden!(golden_fig02, "fig02");
golden!(golden_fig03, "fig03");
golden!(golden_fig04, "fig04");
golden!(golden_fig05_06, "fig05_06");
golden!(golden_fig07, "fig07");
golden!(golden_fig08, "fig08");
golden!(golden_fig09, "fig09");
golden!(golden_fig10_11, "fig10_11");
golden!(golden_fig12, "fig12");
golden!(golden_fig13_14, "fig13_14");
golden!(golden_fig15, "fig15");
golden!(golden_table02, "table02");
golden!(golden_theorem1_demo, "theorem1_demo");
golden!(golden_failures, "failures");

/// The registry and this suite must stay in sync: a newly added scenario
/// without a golden artifact fails here rather than silently going
/// unguarded.
#[test]
fn every_scenario_has_a_golden_artifact() {
    for scenario in experiments::registry() {
        assert!(
            golden_path(scenario.name).is_file(),
            "no golden artifact for scenario '{}' — refresh results/golden/",
            scenario.name
        );
    }
}
