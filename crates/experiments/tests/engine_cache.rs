//! The cache contract, proven end to end: a warm re-run of a scenario
//! performs **zero** solver invocations **and zero topology constructions**
//! (expansion, execution and rendering all run on construction-free
//! metadata) and returns bit-identical results.
//!
//! This lives in its own integration-test binary (with a single test) so the
//! process-wide solver-invocation and topology-construction counters are not
//! perturbed by concurrent tests.

use experiments::find_scenario;
use topobench::sweep::{artifact_json, run_scenario, validate_artifact, SweepOptions};

#[test]
fn warm_cache_rerun_is_solver_free_and_bit_identical() {
    let cache_dir = std::env::temp_dir().join(format!("tb-engine-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut opts = SweepOptions::new(false, 1);
    opts.cache_dir = cache_dir.clone();
    let scenario = find_scenario("theorem1_demo").unwrap();

    // Cold run: every cell computed, cache populated.
    let (cold, cold_render) = run_scenario(&scenario, &opts);
    assert_eq!(cold.cache_hits, 0);
    assert!(
        cold.solver_calls > 0,
        "cold run must actually invoke the solver"
    );
    assert!(
        cold.topo_builds > 0,
        "cold run must actually construct topologies"
    );
    assert!(cold.outcomes.iter().all(|o| !o.cached));

    // Warm run: all cells served from cache, zero solver invocations and
    // zero topology constructions end to end (expansion and rendering run
    // on the construction-free metadata layer).
    let (warm, warm_render) = run_scenario(&scenario, &opts);
    assert_eq!(warm.cache_hits, warm.unique_cells);
    assert_eq!(
        warm.solver_calls, 0,
        "cache-hot run must not invoke any solver"
    );
    assert_eq!(
        warm.topo_builds, 0,
        "cache-hot run must not construct any topology"
    );
    assert!(warm.outcomes.iter().all(|o| o.cached));
    assert_eq!(cold.outcomes.len(), warm.outcomes.len());
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert!(
            c.values.bit_identical(&w.values),
            "cached cell {} drifted",
            c.cell.id
        );
    }

    // Rendering from cached cells is identical to rendering fresh ones.
    for (c, w) in cold_render.tables.iter().zip(&warm_render.tables) {
        assert_eq!(c.table.rows(), w.table.rows());
    }

    // The artifact of the warm run validates and records the cache hits.
    let doc = artifact_json(scenario.name, scenario.title, &opts, &warm, &warm_render);
    validate_artifact(&doc.to_string()).expect("artifact must validate");
    let text = doc.to_string();
    assert!(text.contains("\"cached\":true"));

    // Expansion alone is construction-free for every registered scenario at
    // both ladder scales — the invariant the zero-build warm path rests on.
    let builds_before = tb_topology::constructions();
    for scenario in experiments::registry() {
        for full in [false, true] {
            let mut expand_opts = SweepOptions::new(full, 1);
            expand_opts.use_cache = false;
            let cells = (scenario.build)(&expand_opts);
            assert!(!cells.is_empty(), "{} expands to no cells", scenario.name);
        }
    }
    assert_eq!(
        tb_topology::constructions() - builds_before,
        0,
        "scenario expansion must not construct topologies"
    );

    // `--no-cache` semantics: the same run with the cache disabled computes.
    let mut no_cache = opts.clone();
    no_cache.use_cache = false;
    let (fresh, _) = run_scenario(&scenario, &no_cache);
    assert_eq!(fresh.cache_hits, 0);
    assert!(fresh.solver_calls > 0);
    for (c, f) in cold.outcomes.iter().zip(&fresh.outcomes) {
        assert!(c.values.bit_identical(&f.values));
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
}
