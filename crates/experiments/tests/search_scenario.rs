//! The `search` scenario's cache contract, proven end to end: a cache-hot
//! re-run performs **zero** solver invocations and **zero** topology
//! constructions (the hill climb's design evaluations are all behind the
//! cell cache, and expansion + rendering run on construction-free metadata),
//! and returns bit-identical results.
//!
//! This lives in its own integration-test binary (with a single test) so the
//! process-wide solver-invocation and topology-construction counters are not
//! perturbed by concurrent tests.

use experiments::find_scenario;
use topobench::sweep::{artifact_json, run_scenario, validate_artifact, SweepOptions};

#[test]
fn search_cache_rerun_is_solver_free_and_bit_identical() {
    let cache_dir = std::env::temp_dir().join(format!("tb-search-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut opts = SweepOptions::new(false, 1);
    opts.cache_dir = cache_dir.clone();
    let scenario = find_scenario("search").unwrap();

    // Cold run: the hill climbs actually evaluate designs.
    let (cold, cold_render) = run_scenario(&scenario, &opts);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.failed_cells, 0, "search cells must not fail");
    assert!(
        cold.solver_calls > 0,
        "cold search must actually invoke the solver"
    );
    assert!(
        cold.topo_builds > 0,
        "cold search must actually construct candidate designs"
    );
    // Every climb must report its trajectory: evaluations, accepted steps
    // and a final design distinct from or equal to the start, plus the
    // throughput-per-cost objective it settled on.
    for o in &cold.outcomes {
        assert!(
            o.values.num("evals") >= 1.0,
            "{}: no evaluations",
            o.cell.id
        );
        assert!(
            o.values.num("final_objective") >= o.values.num("start_objective"),
            "{}: hill climb went downhill",
            o.cell.id
        );
        assert!(
            o.values.text("final_spec").is_some(),
            "{}: no final design recorded",
            o.cell.id
        );
    }

    // Cache-hot re-run: zero solver calls, zero constructions, identical
    // bits — the build counter is asserted exactly because this binary holds
    // a single test.
    let (hot, hot_render) = run_scenario(&scenario, &opts);
    assert_eq!(hot.cache_hits, hot.unique_cells);
    assert_eq!(
        hot.solver_calls, 0,
        "cache-hot search must not invoke any solver"
    );
    assert_eq!(
        hot.topo_builds, 0,
        "cache-hot search must not construct any topology"
    );
    assert!(hot.outcomes.iter().all(|o| o.cached));
    assert_eq!(cold.outcomes.len(), hot.outcomes.len());
    for (c, h) in cold.outcomes.iter().zip(&hot.outcomes) {
        assert!(
            c.values.bit_identical(&h.values),
            "cached search cell {} drifted",
            c.cell.id
        );
    }
    for (c, h) in cold_render.tables.iter().zip(&hot_render.tables) {
        assert_eq!(c.table.rows(), h.table.rows());
    }

    // The artifact validates — this is what the committed golden pins.
    let doc = artifact_json(scenario.name, scenario.title, &opts, &hot, &hot_render);
    validate_artifact(&doc.to_string()).expect("search artifact must validate");

    let _ = std::fs::remove_dir_all(&cache_dir);
}
