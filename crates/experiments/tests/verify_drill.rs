//! End-to-end drill for the certificate pipeline: run a scenario through the
//! real `sweep` binary with `--certify`, re-check the artifact with
//! `sweep verify`, then flip a single bit of stored evidence and watch the
//! verifier reject it. This is the user-facing contract: exit 0 means every
//! stored certificate independently re-verified against a rebuilt instance,
//! and any mutation of the evidence — one bit is enough — means exit 1.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tb-verifydrill-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep(cwd: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(args)
        .current_dir(cwd)
        .env_remove("TB_SOLVER_JOBS")
        .output()
        .expect("sweep binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn certified_artifact_verifies_and_one_flipped_bit_fails() {
    let dir = temp_dir("roundtrip");

    // Produce a certified artifact with the real driver.
    let (code, _, err) = sweep(
        &dir,
        &["--scenario", "theorem1_demo", "--certify", "--jobs", "1"],
    );
    assert_eq!(code, 0, "certified run failed: {err}");
    let artifact = dir.join("results").join("theorem1_demo.json");
    let text = fs::read_to_string(&artifact).unwrap();
    assert!(
        text.contains("\"certificate\""),
        "--certify must store certificate blocks"
    );

    // The pristine artifact verifies clean, both singly and via --all.
    let (code, out, err) = sweep(&dir, &["verify", artifact.to_str().unwrap()]);
    assert_eq!(code, 0, "verify failed on a pristine artifact: {out}{err}");
    let results = dir.join("results");
    let (code, out, _) = sweep(&dir, &["verify", "--all", results.to_str().unwrap()]);
    assert_eq!(code, 0, "verify --all failed on a pristine tree: {out}");
    assert!(out.contains("certificate(s) verified"), "{out}");

    // Flip the lowest bit of the first stored flow value: exit 1.
    let tag = "\"flow\":[\"";
    let at = text.find(tag).expect("certificate stores flow bits") + tag.len();
    let hex = &text[at..at + 16];
    let flipped = format!("{:016x}", u64::from_str_radix(hex, 16).unwrap() ^ 1);
    fs::write(&artifact, text.replacen(hex, &flipped, 1)).unwrap();
    let (code, _, err) = sweep(&dir, &["verify", artifact.to_str().unwrap()]);
    assert_eq!(code, 1, "a flipped evidence bit must fail verification");
    assert!(err.contains("FAILED"), "{err}");
    let (code, _, _) = sweep(&dir, &["verify", "--all", results.to_str().unwrap()]);
    assert_eq!(code, 1, "verify --all must propagate the rejection");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn uncertified_tree_is_vacuous_under_verify_all() {
    let dir = temp_dir("vacuous");
    let (code, _, err) = sweep(&dir, &["--scenario", "theorem1_demo", "--jobs", "1"]);
    assert_eq!(code, 0, "plain run failed: {err}");
    let artifact = dir.join("results").join("theorem1_demo.json");
    assert!(
        !fs::read_to_string(&artifact)
            .unwrap()
            .contains("\"certificate\""),
        "plain runs must not store certificates"
    );

    // A single uncertified artifact verifies trivially clean (nothing to
    // check, nothing wrong) — but a whole tree with zero certificates is a
    // vacuous success and must fail, so an accidentally uncertified golden
    // refresh cannot pass CI.
    let (code, _, _) = sweep(&dir, &["verify", artifact.to_str().unwrap()]);
    assert_eq!(code, 0);
    let results = dir.join("results");
    let (code, _, err) = sweep(&dir, &["verify", "--all", results.to_str().unwrap()]);
    assert_eq!(code, 1, "zero certificates must not read as verified");
    assert!(err.contains("no certificates"), "{err}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_usage_errors_exit_2() {
    let dir = temp_dir("usage");
    let (code, _, _) = sweep(&dir, &["verify"]);
    assert_eq!(code, 2, "missing path is a usage error");
    let (code, _, _) = sweep(&dir, &["verify", "--frobnicate", "x.json"]);
    assert_eq!(code, 2, "unknown flag is a usage error");
    let (code, _, _) = sweep(&dir, &["verify", dir.join("absent.json").to_str().unwrap()]);
    assert_eq!(code, 2, "unreadable artifact is an IO error");
    let (code, _, _) = sweep(
        &dir,
        &["verify", "--all", dir.join("empty").to_str().unwrap()],
    );
    assert_eq!(code, 2, "missing directory is an IO error");
    let _ = fs::remove_dir_all(&dir);
}
