//! Engine-level regression tests: a golden rendered table pinned at the
//! default seed, and bit-identical results across serial and parallel
//! execution.

use experiments::find_scenario;
use topobench::sweep::{run_cells, run_scenario, CellSpec, SweepCell, SweepOptions, TopoSpec};
use topobench::TmSpec;

fn no_cache_opts() -> SweepOptions {
    let mut opts = SweepOptions::new(false, 1);
    opts.use_cache = false;
    opts
}

/// Golden output: the `theorem1_demo` table at reduced scale, seed 1, pinned
/// row by row. Any solver, seeding or rendering drift in the engine path
/// shows up here as a value change.
#[test]
fn theorem1_demo_table_is_golden() {
    let scenario = find_scenario("theorem1_demo").unwrap();
    let (_, render) = run_scenario(&scenario, &no_cache_opts());
    assert_eq!(render.tables.len(), 1);
    let table = &render.tables[0].table;
    let expected: [[&str; 6]; 2] = [
        [
            "A: clustered random",
            "48",
            "144",
            "1.937",
            "1.958",
            "1.011",
        ],
        [
            "B: subdivided expander (p=3)",
            "49",
            "63",
            "6.000",
            "6.000",
            "1.000",
        ],
    ];
    assert_eq!(table.num_rows(), expected.len());
    for (row, exp) in table.rows().iter().zip(expected) {
        let exp: Vec<String> = exp.iter().map(|s| s.to_string()).collect();
        assert_eq!(row, &exp);
    }
}

fn mixed_cells(seed: u64) -> Vec<SweepCell> {
    let cube = TopoSpec::Hypercube {
        dims: 4,
        servers: 1,
    };
    let mut cells = vec![
        SweepCell::new(
            "cube/A2A",
            CellSpec::Throughput {
                topo: cube.clone(),
                tm: TmSpec::AllToAll,
                tm_seed: seed,
            },
        ),
        SweepCell::new(
            "cube/LM",
            CellSpec::Throughput {
                topo: cube.clone(),
                tm: TmSpec::LongestMatching,
                tm_seed: seed,
            },
        ),
        SweepCell::new(
            "cube/cut",
            CellSpec::CutEstimate {
                topo: cube.clone(),
                tm: TmSpec::LongestMatching,
                tm_seed: seed,
            },
        ),
        // Exercises nested parallelism (random-graph sampling inside a cell).
        SweepCell::new(
            "jelly/rel",
            CellSpec::Relative {
                topo: TopoSpec::Jellyfish {
                    switches: 16,
                    degree: 4,
                    servers: 1,
                    seed,
                },
                tm: TmSpec::AllToAll,
            },
        ),
    ];
    for k in [1usize, 2] {
        cells.push(SweepCell::new(
            format!("cube/RM({k})"),
            CellSpec::Throughput {
                topo: TopoSpec::WithServers {
                    base: Box::new(cube.clone()),
                    servers_per_switch: k,
                },
                tm: TmSpec::RandomMatching {
                    servers_per_switch: k,
                },
                tm_seed: seed,
            },
        ));
    }
    cells
}

/// The tentpole determinism guarantee: a fully serial run (one workspace,
/// one thread) and a pooled parallel run produce bit-identical metrics for
/// every cell, in the same order.
#[test]
fn parallel_and_serial_sweeps_are_bit_identical() {
    let mut serial_opts = no_cache_opts();
    serial_opts.jobs = Some(1);
    let parallel_opts = no_cache_opts();

    let serial = run_cells(&serial_opts, mixed_cells(1));
    let parallel = run_cells(&parallel_opts, mixed_cells(1));
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.cell.id, p.cell.id);
        assert!(
            s.values.bit_identical(&p.values),
            "cell {} differs between serial and parallel runs: {:?} vs {:?}",
            s.cell.id,
            s.values,
            p.values
        );
    }

    // And a repeated parallel run is bit-identical too (no hidden state).
    let again = run_cells(&parallel_opts, mixed_cells(1));
    for (a, b) in parallel.outcomes.iter().zip(&again.outcomes) {
        assert!(a.values.bit_identical(&b.values));
    }
}

/// Every registered scenario expands the same cell grid twice in a row
/// (expansion must be deterministic — ids and specs are cache keys).
#[test]
fn scenario_expansion_is_deterministic() {
    for scenario in experiments::registry() {
        let opts = no_cache_opts();
        let a = (scenario.build)(&opts);
        let b = (scenario.build)(&opts);
        assert_eq!(a.len(), b.len(), "{}", scenario.name);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "{}", scenario.name);
            assert_eq!(
                format!("{:?}", x.spec),
                format!("{:?}", y.spec),
                "{}",
                scenario.name
            );
        }
    }
}
