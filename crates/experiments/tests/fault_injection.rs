//! Fault-injection integration suite: the sweep engine must survive — and
//! mark, not mask — every failure mode the `failures` scenario can hit in
//! production: a panicking cell, a corrupted on-disk cache entry, and an
//! instance whose demands are disconnected by injected faults.
//!
//! The `Faulted` determinism tests pin the surviving graph to a fingerprint
//! constant, so re-running this binary under different `RAYON_NUM_THREADS`
//! (CI runs widths 1, 2 and 8) proves failure draws are process- and
//! thread-count-independent, not merely stable within one process.

use std::fs;
use std::path::PathBuf;
use topobench::sweep::json::Json;
use topobench::sweep::{
    artifact_json, cell_key, fnv1a, run_cells, validate_artifact, CellSet, CellSpec, ResultCache,
    SweepCell, SweepOptions, TopoSpec,
};
use topobench::TmSpec;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tb-faultinj-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A `Faulted` spec over a hypercube whose heavy switch/link losses leave
/// alive-but-disconnected servers, so the baseline solve must drop demands.
fn disconnected_spec() -> TopoSpec {
    TopoSpec::Faulted {
        base: Box::new(TopoSpec::Hypercube {
            dims: 3,
            servers: 1,
        }),
        link_failures: 8,
        switch_failures: 2,
        seed: 5,
    }
}

/// Acceptance drill for the failure-sweep subsystem: one full `failures`
/// run completes and its artifact validates even when (a) one cell panics
/// permanently, (b) one cached entry is corrupted on disk, and (c) one
/// instance is disconnected — affected cells are marked by status, every
/// other cell is bit-identical to the clean run.
#[test]
fn failure_sweep_survives_panic_corruption_and_disconnection() {
    let scenario = experiments::find_scenario("failures").expect("failures scenario registered");
    let dir = temp_dir("sweep");
    let mut opts = SweepOptions::new(false, 1);
    opts.cache_dir.clone_from(&dir);

    // Clean reference run (cold cache).
    let cells = (scenario.build)(&opts);
    let clean = run_cells(&opts, cells.clone());
    assert_eq!(clean.failed_cells, 0, "clean run must not fail any cell");

    // (b) Corrupt one warm cache entry in place.
    let cfg = opts.eval_config();
    let victim_path = ResultCache::new(&dir).path_for(&cell_key(&cells[0], &cfg));
    assert!(victim_path.exists(), "clean run must populate the cache");
    fs::write(&victim_path, "{truncated garbage").unwrap();

    // (a) A permanently panicking probe and (c) a degradation cell whose
    // baseline instance is disconnected by its own fault injection.
    let mut perturbed = cells.clone();
    perturbed.push(SweepCell::new(
        "probe/panic",
        CellSpec::PanicProbe { fail_attempts: 2 },
    ));
    perturbed.push(SweepCell::new(
        "probe/disconnected",
        CellSpec::Degradation {
            topo: disconnected_spec(),
            tm: TmSpec::AllToAll,
            tm_seed: 1,
            link_fail_frac: 0.0,
            switch_failures: 0,
            failure_seeds: 1,
            seed: 7,
        },
    ));
    let report = run_cells(&opts, perturbed);

    // The sweep completed; exactly the panic probe failed.
    assert_eq!(report.failed_cells, 1);
    let by_id = |id: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.cell.id == id)
            .unwrap_or_else(|| panic!("missing cell '{id}'"))
    };
    let dead = by_id("probe/panic");
    assert!(dead.is_failed());
    assert!(dead.error.as_deref().unwrap().contains("induced failure"));

    // (c) The disconnected instance is absorbed and marked by status text.
    let disc = by_id("probe/disconnected");
    assert!(!disc.is_failed(), "disconnection must degrade, not fail");
    let status = disc.values.text("baseline_status").unwrap();
    assert!(
        status.starts_with("dropped-"),
        "expected dropped-demands status, got '{status}'"
    );

    // (b) The corrupt entry was quarantined (bytes kept as .bad) and the
    // cell re-solved — a fresh healthy entry now sits at the original path.
    assert!(
        victim_path.with_extension("bad").exists(),
        "corrupt entry must be quarantined, not deleted"
    );
    assert!(
        victim_path.exists(),
        "re-solve must re-store a healthy entry"
    );

    // Every original cell is bit-identical to the clean run.
    for (a, b) in clean.outcomes.iter().zip(&report.outcomes) {
        assert_eq!(a.cell.id, b.cell.id);
        assert!(
            a.values.bit_identical(&b.values),
            "cell '{}' drifted under fault injection",
            a.cell.id
        );
    }

    // The artifact still writes and validates, with only the probe marked.
    let render = (scenario.render)(&opts, &CellSet::new(&report.outcomes));
    let doc = artifact_json(scenario.name, scenario.title, &opts, &report, &render).to_string();
    validate_artifact(&doc).expect("artifact with a failed cell must validate");
    assert_eq!(doc.matches("\"status\":\"failed\"").count(), 1);

    let _ = fs::remove_dir_all(&dir);
}

/// Forced-budget-exhaustion drill for the certificate layer: a solve whose
/// phase budget runs out still emits a certificate (the bounds it proves are
/// real), but `sweep verify` must classify the cell as *unverifiable* — the
/// bounds meet no accuracy contract — never as certified, and never silently
/// skip it. A converged solve of the same instance is the control.
#[test]
fn budget_exhausted_certificates_are_unverifiable_never_certified() {
    use topobench::eval::evaluate_throughput_certified_with;
    use topobench::flow::{SolveStatus, SolverWorkspace};
    use topobench::sweep::{verify_cell, CellCertificate, CellVerdict};

    let spec = CellSpec::Throughput {
        topo: TopoSpec::Hypercube {
            dims: 4,
            servers: 1,
        },
        tm: TmSpec::AllToAll,
        tm_seed: 1,
    };
    let CellSpec::Throughput { topo, tm, tm_seed } = &spec else {
        unreachable!()
    };
    let built = topo.build().unwrap();
    let matrix = tm.generate(&built, *tm_seed);

    let opts = SweepOptions::new(false, 1);
    let mut starved = opts.eval_config();
    // Force the FPTAS (no exact short-circuit) and strangle its budget: one
    // phase at a tight epsilon cannot saturate the MWU on an all-to-all TM,
    // and the sub-ulp gap target is unreachable — the solve must stop on the
    // phase cap with the bound gap wide open.
    starved.exact_switch_limit = 0;
    starved.solver.max_phases = 1;
    starved.solver.check_interval = 1;
    starved.solver.epsilon = 0.01;
    starved.solver.target_gap = 1e-9;
    let mut ws = SolverWorkspace::new();
    let (bounds, status, cert) =
        evaluate_throughput_certified_with(&built, &matrix, &starved, &mut ws);
    assert_eq!(status, SolveStatus::BudgetExhausted, "budget must run out");

    // Serialize the cell the way the artifact writer would.
    let cc = CellCertificate {
        cert,
        status: status.label(),
    };
    let cell = Json::obj(vec![
        ("id", Json::str("probe/budget")),
        (
            "values",
            Json::obj(vec![
                (
                    "lower",
                    Json::obj(vec![("bits", Json::f64_bits(bounds.lower))]),
                ),
                (
                    "upper",
                    Json::obj(vec![("bits", Json::f64_bits(bounds.upper))]),
                ),
            ]),
        ),
        ("certificate", cc.to_json()),
    ]);
    let verdict = verify_cell(&cell, Some(&spec), &starved);
    let CellVerdict::Unverifiable(why) = verdict else {
        panic!("budget-exhausted cell must be unverifiable, got {verdict:?}");
    };
    assert!(why.contains("budget"), "{why}");

    // Control: the same instance with a sane budget certifies cleanly.
    let sane = opts.eval_config();
    let (bounds, status, cert) =
        evaluate_throughput_certified_with(&built, &matrix, &sane, &mut ws);
    assert_eq!(status, SolveStatus::Converged);
    let cc = CellCertificate {
        cert,
        status: status.label(),
    };
    let cell = Json::obj(vec![
        ("id", Json::str("probe/budget")),
        (
            "values",
            Json::obj(vec![
                (
                    "lower",
                    Json::obj(vec![("bits", Json::f64_bits(bounds.lower))]),
                ),
                (
                    "upper",
                    Json::obj(vec![("bits", Json::f64_bits(bounds.upper))]),
                ),
            ]),
        ),
        ("certificate", cc.to_json()),
    ]);
    assert_eq!(
        verify_cell(&cell, Some(&spec), &sane),
        CellVerdict::Certified
    );
}

/// Canonical fingerprint of a built topology: surviving edge list + server
/// placement, hashed. Bit-identical graphs ⇒ equal fingerprints.
fn graph_fingerprint(spec: &TopoSpec) -> u64 {
    let topo = spec.build().expect("spec must build");
    let mut text = String::new();
    for e in topo.graph.edges() {
        text.push_str(&format!("{},{};", e.u, e.v));
    }
    text.push('|');
    for s in &topo.servers {
        text.push_str(&format!("{s},"));
    }
    fnv1a(&text)
}

/// `Faulted` failure draws are a pure function of the spec: repeat builds
/// are bit-identical, and the pinned constants make re-runs of this binary
/// under `RAYON_NUM_THREADS` 1/2/8 (and on other machines) prove
/// process-level determinism rather than in-process stability.
#[test]
fn faulted_build_fingerprint_is_pinned() {
    let spec = TopoSpec::Faulted {
        base: Box::new(TopoSpec::Hypercube {
            dims: 4,
            servers: 2,
        }),
        link_failures: 5,
        switch_failures: 1,
        seed: 42,
    };
    let reference = graph_fingerprint(&spec);
    for _ in 0..3 {
        assert_eq!(graph_fingerprint(&spec), reference, "repeat build drifted");
    }
    assert_eq!(
        reference, 0x7710_E5B4_1B48_623A,
        "faulted hypercube drifted"
    );
    assert_eq!(
        graph_fingerprint(&disconnected_spec()),
        0x2BBB_4EFE_1AB6_C63B,
        "disconnected probe spec drifted"
    );
}

/// Degradation cells (whose faulted builds happen inside worker threads)
/// are bit-identical between fully serial and pool-parallel execution.
#[test]
fn degradation_cells_are_bit_identical_serial_vs_parallel() {
    let cells: Vec<SweepCell> = (0..4)
        .map(|i| {
            SweepCell::new(
                format!("deg/{i}"),
                CellSpec::Degradation {
                    topo: TopoSpec::Hypercube {
                        dims: 3,
                        servers: 1,
                    },
                    tm: TmSpec::AllToAll,
                    tm_seed: 1,
                    link_fail_frac: 0.15,
                    switch_failures: 1,
                    failure_seeds: 3,
                    seed: 9 + i,
                },
            )
        })
        .collect();
    let mut serial = SweepOptions::new(false, 1);
    serial.use_cache = false;
    serial.jobs = Some(1);
    let mut parallel = serial.clone();
    parallel.jobs = None;
    let a = run_cells(&serial, cells.clone());
    let b = run_cells(&parallel, cells);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert!(
            x.values.bit_identical(&y.values),
            "cell '{}' differs between serial and parallel execution",
            x.cell.id
        );
    }
}
