//! # tb-lp
//!
//! A small, self-contained linear-programming solver.
//!
//! The paper computes throughput with Gurobi; this repository replaces it with
//! two components: a combinatorial FPTAS (in `tb-flow`) for large instances and
//! this exact **two-phase revised primal simplex** (sparse columns, product-form
//! inverse) used to validate the FPTAS in tests, to solve the Kodialam
//! traffic-matrix LP on small networks, to certify bench shapes against the
//! true LP optimum, and for the sparsest-cut LP relaxation experiments.
//!
//! The solver handles problems of the form
//!
//! ```text
//!   maximize    c' x
//!   subject to  a_i' x  {<=, =, >=}  b_i     (i = 1..m)
//!               x >= 0
//! ```
//!
//! It is a sparse revised-simplex implementation with Bland's anti-cycling
//! rule engaged after a run of degenerate pivots, periodic eta-file
//! refactorization, optional warm starts ([`solve_with_hint`]), and dual
//! values on every solution; it handles instances with tens of thousands of
//! variables and a few thousand constraints.

mod simplex;

pub use simplex::{
    solve, solve_with_hint, Constraint, ConstraintOp, LinearProgram, LpError, LpResult, Solution,
};
