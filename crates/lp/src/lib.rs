//! # tb-lp
//!
//! A small, self-contained linear-programming solver.
//!
//! The paper computes throughput with Gurobi; this repository replaces it with
//! two components: a combinatorial FPTAS (in `tb-flow`) for large instances and
//! this exact dense **two-phase primal simplex** for small instances, used to
//! validate the FPTAS in tests, to solve the Kodialam traffic-matrix LP on
//! small networks, and for the sparsest-cut LP relaxation experiments.
//!
//! The solver handles problems of the form
//!
//! ```text
//!   maximize    c' x
//!   subject to  a_i' x  {<=, =, >=}  b_i     (i = 1..m)
//!               x >= 0
//! ```
//!
//! It is a dense tableau implementation with Bland's anti-cycling rule engaged
//! after a run of degenerate pivots, intended for instances with up to a few
//! thousand variables and constraints.

mod simplex;

pub use simplex::{solve, Constraint, ConstraintOp, LinearProgram, LpError, LpResult, Solution};
