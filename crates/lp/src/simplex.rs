//! Sparse two-phase revised primal simplex with a product-form inverse.
//!
//! The constraint matrix is stored column-wise in sparse form and the basis
//! inverse is maintained as an eta file (product-form inverse, PFI): each
//! pivot appends one elementary eta matrix, and the file is rebuilt from
//! scratch every [`REFACTOR_EVERY`] pivots to bound both fill-in and numeric
//! drift. `FTRAN`/`BTRAN` apply the file forward/transposed-backward, so the
//! per-iteration cost scales with the number of nonzeros rather than with
//! `rows × cols` as in the dense tableau this module replaces.

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a' x <= b`
    Le,
    /// `a' x = b`
    Eq,
    /// `a' x >= b`
    Ge,
}

/// A single linear constraint `sum_j coeffs[j].1 * x[coeffs[j].0]  op  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficients as (variable index, coefficient) pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: maximize `objective' x` subject to `constraints`, `x >= 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (length `num_vars`), to be maximized.
    pub objective: Vec<f64>,
    /// Constraint list.
    pub constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an LP with `num_vars` variables and a zero objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars);
        self.objective[var] = coeff;
    }

    /// Adds a constraint. Coefficients with duplicate variable indices are
    /// summed.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) {
        for &(v, _) in &coeffs {
            assert!(
                v < self.num_vars,
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
    }
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value (of the maximization).
    pub objective: f64,
    /// Values of the decision variables.
    pub values: Vec<f64>,
    /// Dual values (shadow prices), one per input constraint in input order.
    ///
    /// Sign convention for the maximization: a binding `<=` constraint has a
    /// non-negative dual, a binding `>=` constraint a non-positive one, and
    /// strong duality gives `sum_i duals[i] * rhs[i] == objective`. Rows that
    /// were normalized internally (negative right-hand sides) are reported in
    /// the caller's original orientation.
    pub duals: Vec<f64>,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Result alias for LP solves.
pub type LpResult = Result<Solution, LpError>;

const EPS: f64 = 1e-9;
/// Rebuild the eta file from the basis every this many pivots.
const REFACTOR_EVERY: usize = 64;
/// Switch from Dantzig to Bland pricing after this many degenerate pivots.
const BLAND_TRIGGER: usize = 50;
/// Minimum pivot magnitude accepted when forcing a basic artificial out.
const ART_PIVOT_TOL: f64 = 1e-7;

/// One elementary pivot matrix. Applying it to `v` replaces
/// `v[row] <- diag * v[row]` and adds `others[i] * v_row_old` elsewhere.
struct Eta {
    row: usize,
    diag: f64,
    others: Vec<(usize, f64)>,
}

/// `v <- B^{-1} v` via the eta file, tracking the nonzero pattern in `nz`
/// (`nz` may retain indices whose value cancelled back to exactly zero; an
/// index appears at most once while its value is nonzero).
fn ftran(etas: &[Eta], v: &mut [f64], nz: &mut Vec<usize>) {
    for e in etas {
        let vr = v[e.row];
        if vr == 0.0 {
            continue;
        }
        v[e.row] = e.diag * vr;
        for &(i, x) in &e.others {
            if v[i] == 0.0 {
                nz.push(i);
            }
            v[i] += x * vr;
        }
    }
}

/// `v <- B^{-T} v` via the eta file (transposed etas, reverse order).
fn btran(etas: &[Eta], v: &mut [f64]) {
    for e in etas.iter().rev() {
        let mut s = e.diag * v[e.row];
        for &(i, x) in &e.others {
            s += x * v[i];
        }
        v[e.row] = s;
    }
}

const NONE: usize = usize::MAX;

/// The LP in standard form: `A x = b`, `b >= 0`, `x >= 0`, columns stored
/// sparsely. Slack and artificial columns are singletons and kept implicit.
struct StdLp {
    n: usize,
    m: usize,
    /// CSC storage of the structural columns, with the sign of normalized
    /// (rhs-negated) rows baked in and duplicate entries merged.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
    rhs: Vec<f64>,
    /// Per slack column: (row, ±1).
    slack: Vec<(usize, f64)>,
    /// Per artificial column: its row.
    art: Vec<usize>,
    /// Rows whose sign was flipped during normalization (dual sign restore).
    row_negated: Vec<bool>,
    slack_base: usize,
    art_base: usize,
    total_cols: usize,
    objective: Vec<f64>,
}

impl StdLp {
    fn build(lp: &LinearProgram) -> StdLp {
        let n = lp.num_vars;
        let m = lp.constraints.len();

        // Normalize rows to rhs >= 0, flipping the operator where needed.
        let mut row_negated = vec![false; m];
        let mut ops = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (r, c) in lp.constraints.iter().enumerate() {
            let (op, b) = if c.rhs < 0.0 {
                row_negated[r] = true;
                let flipped = match c.op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
                (flipped, -c.rhs)
            } else {
                (c.op, c.rhs)
            };
            ops.push(op);
            rhs.push(b);
        }

        // Column-major structural matrix. Duplicate (row, var) coefficients
        // are summed, matching the dense implementation's semantics.
        let mut col_nnz = vec![0usize; n];
        for c in &lp.constraints {
            for &(v, _) in &c.coeffs {
                col_nnz[v] += 1;
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for j in 0..n {
            col_ptr[j + 1] = col_ptr[j] + col_nnz[j];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (r, c) in lp.constraints.iter().enumerate() {
            let sign = if row_negated[r] { -1.0 } else { 1.0 };
            for &(v, coef) in &c.coeffs {
                let k = cursor[v];
                row_idx[k] = r;
                vals[k] = coef * sign;
                cursor[v] += 1;
            }
        }
        // Merge duplicates so each row index appears once per column (the
        // nonzero tracking in FTRAN relies on that).
        let mut write = 0usize;
        let mut new_ptr = vec![0usize; n + 1];
        for j in 0..n {
            let start = write;
            let mut entries: Vec<(usize, f64)> = (col_ptr[j]..col_ptr[j + 1])
                .map(|k| (row_idx[k], vals[k]))
                .collect();
            entries.sort_unstable_by_key(|&(r, _)| r);
            for (r, v) in entries {
                if write > start && row_idx[write - 1] == r {
                    vals[write - 1] += v;
                } else {
                    row_idx[write] = r;
                    vals[write] = v;
                    write += 1;
                }
            }
            new_ptr[j + 1] = write;
        }
        row_idx.truncate(write);
        vals.truncate(write);

        let mut slack = Vec::new();
        let mut art = Vec::new();
        for (r, op) in ops.iter().enumerate() {
            match op {
                ConstraintOp::Le => slack.push((r, 1.0)),
                ConstraintOp::Ge => {
                    slack.push((r, -1.0));
                    art.push(r);
                }
                ConstraintOp::Eq => art.push(r),
            }
        }
        let slack_base = n;
        let art_base = n + slack.len();
        let total_cols = art_base + art.len();
        StdLp {
            n,
            m,
            col_ptr: new_ptr,
            row_idx,
            vals,
            rhs,
            slack,
            art,
            row_negated,
            slack_base,
            art_base,
            total_cols,
            objective: lp.objective.clone(),
        }
    }

    /// Scatters column `j` into the dense scratch `w`, recording nonzeros.
    fn scatter_col(&self, j: usize, w: &mut [f64], nz: &mut Vec<usize>) {
        if j < self.n {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                if self.vals[k] != 0.0 {
                    w[self.row_idx[k]] = self.vals[k];
                    nz.push(self.row_idx[k]);
                }
            }
        } else if j < self.art_base {
            let (r, s) = self.slack[j - self.slack_base];
            w[r] = s;
            nz.push(r);
        } else {
            let r = self.art[j - self.art_base];
            w[r] = 1.0;
            nz.push(r);
        }
    }

    /// `y · A_j` for pricing.
    fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            let mut s = 0.0;
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                s += y[self.row_idx[k]] * self.vals[k];
            }
            s
        } else if j < self.art_base {
            let (r, sign) = self.slack[j - self.slack_base];
            y[r] * sign
        } else {
            y[self.art[j - self.art_base]]
        }
    }

    fn col_nnz(&self, j: usize) -> usize {
        if j < self.n {
            self.col_ptr[j + 1] - self.col_ptr[j]
        } else {
            1
        }
    }
}

/// Builds the eta matrix for a pivot on `w[pivot_row]`, consuming (zeroing)
/// the scratch vector and its nonzero list so both can be reused.
fn build_eta(w: &mut [f64], nz: &mut Vec<usize>, pivot_row: usize) -> Eta {
    let piv = w[pivot_row];
    debug_assert!(piv != 0.0);
    let inv = 1.0 / piv;
    let mut others = Vec::with_capacity(nz.len().saturating_sub(1));
    for &i in nz.iter() {
        let v = w[i];
        w[i] = 0.0;
        if i == pivot_row || v == 0.0 {
            continue;
        }
        others.push((i, -v * inv));
    }
    nz.clear();
    Eta {
        row: pivot_row,
        diag: inv,
        others,
    }
}

/// Revised-simplex state: the basis, its values, and the eta file.
struct Solver<'a> {
    std: &'a StdLp,
    /// Column basic at each basis position.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Values of the basic variables, by basis position; kept >= 0.
    xb: Vec<f64>,
    etas: Vec<Eta>,
    pivots_since_refactor: usize,
    /// Dense scratch vector (length m), zero between uses.
    scratch: Vec<f64>,
}

impl<'a> Solver<'a> {
    /// All-logical start: slacks basic on `<=` rows, artificials elsewhere.
    fn initial(std: &'a StdLp) -> Solver<'a> {
        let m = std.m;
        let mut basis = vec![NONE; m];
        let mut in_basis = vec![false; std.total_cols];
        for (k, &(r, sign)) in std.slack.iter().enumerate() {
            if sign > 0.0 {
                basis[r] = std.slack_base + k;
            }
        }
        for (k, &r) in std.art.iter().enumerate() {
            basis[r] = std.art_base + k;
        }
        for &b in &basis {
            in_basis[b] = true;
        }
        Solver {
            std,
            basis,
            in_basis,
            xb: std.rhs.clone(),
            etas: Vec::new(),
            pivots_since_refactor: 0,
            scratch: vec![0.0; m],
        }
    }

    /// Rebuilds the eta file from the current basis by sparse Gauss-Jordan
    /// elimination (columns in ascending-nonzero order to limit fill-in) and
    /// recomputes the basic values from the original right-hand side. Basis
    /// positions are relabelled by their elimination pivot row, a pure
    /// permutation of the same basic set.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let std = self.std;
        let m = std.m;
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&r| std.col_nnz(self.basis[r]));

        let mut etas = Vec::with_capacity(m);
        let mut new_basis = vec![NONE; m];
        let mut assigned = vec![false; m];
        let mut nz = Vec::new();
        for &pos in &order {
            let j = self.basis[pos];
            nz.clear();
            std.scatter_col(j, &mut self.scratch, &mut nz);
            ftran(&etas, &mut self.scratch, &mut nz);
            // Pivot on the largest remaining entry for stability.
            let mut best = 0.0f64;
            let mut pr = NONE;
            for &i in &nz {
                let a = self.scratch[i].abs();
                if !assigned[i] && a > best {
                    best = a;
                    pr = i;
                }
            }
            if pr == NONE || best < 1e-10 {
                // The basis went numerically singular.
                for &i in &nz {
                    self.scratch[i] = 0.0;
                }
                return Err(LpError::IterationLimit);
            }
            etas.push(build_eta(&mut self.scratch, &mut nz, pr));
            new_basis[pr] = j;
            assigned[pr] = true;
        }

        self.basis = new_basis;
        self.etas = etas;
        self.pivots_since_refactor = 0;
        // Fresh basic values: xb = B^{-1} b, clamped to the positive orthant.
        nz.clear();
        for r in 0..m {
            if std.rhs[r] != 0.0 {
                self.scratch[r] = std.rhs[r];
                nz.push(r);
            }
        }
        ftran(&self.etas, &mut self.scratch, &mut nz);
        nz.sort_unstable();
        nz.dedup();
        for x in self.xb.iter_mut() {
            *x = 0.0;
        }
        for &i in &nz {
            self.xb[i] = self.scratch[i].max(0.0);
            self.scratch[i] = 0.0;
        }
        Ok(())
    }

    /// Dual prices `y = B^{-T} c_B` for the given full-length cost vector.
    fn prices(&self, c: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.std.m];
        for r in 0..self.std.m {
            y[r] = c[self.basis[r]];
        }
        btran(&self.etas, &mut y);
        y
    }

    /// Picks an entering column with positive reduced cost, or `None` at
    /// optimality. `allow_art` admits artificial columns (phase 1 only).
    fn price(&self, y: &[f64], c: &[f64], allow_art: bool, use_bland: bool) -> Option<usize> {
        let limit = if allow_art {
            self.std.total_cols
        } else {
            self.std.art_base
        };
        let mut best_j = None;
        let mut best_d = EPS;
        for (j, &cj) in c.iter().enumerate().take(limit) {
            if self.in_basis[j] {
                continue;
            }
            let d = cj - self.std.dot_col(j, y);
            if use_bland {
                if d > EPS {
                    return Some(j);
                }
            } else if d > best_d {
                best_d = d;
                best_j = Some(j);
            }
        }
        best_j
    }

    /// Runs primal simplex iterations until the reduced costs admit no
    /// entering column. `allow_art` is true only in phase 1; in phase 2 any
    /// basic artificial touched by an entering column is forced out through a
    /// degenerate pivot so it can never drift off zero.
    fn optimize(&mut self, c: &[f64], allow_art: bool, max_iters: usize) -> Result<(), LpError> {
        let std = self.std;
        let mut degenerate_run = 0usize;
        let mut nz: Vec<usize> = Vec::new();
        for _ in 0..max_iters {
            if self.pivots_since_refactor >= REFACTOR_EVERY {
                self.refactorize()?;
            }
            let y = self.prices(c);
            let enter = match self.price(&y, c, allow_art, degenerate_run > BLAND_TRIGGER) {
                Some(j) => j,
                None => return Ok(()),
            };
            // w = B^{-1} A_enter.
            nz.clear();
            std.scatter_col(enter, &mut self.scratch, &mut nz);
            ftran(&self.etas, &mut self.scratch, &mut nz);
            // FTRAN may re-add a cancelled index; the xb update below must
            // see each row exactly once.
            nz.sort_unstable();
            nz.dedup();

            // Ratio test (smallest-basic-index tie-break, as in the dense
            // implementation), plus the phase-2 artificial guard.
            let mut leave = NONE;
            let mut best_ratio = f64::INFINITY;
            let mut art_leave = NONE;
            for &r in &nz {
                let wr = self.scratch[r];
                if wr == 0.0 {
                    continue;
                }
                let basic = self.basis[r];
                if !allow_art && basic >= std.art_base && wr.abs() > ART_PIVOT_TOL {
                    if art_leave == NONE || basic < self.basis[art_leave] {
                        art_leave = r;
                    }
                    continue;
                }
                if wr > EPS {
                    let ratio = self.xb[r] / wr;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && (leave == NONE || basic < self.basis[leave]))
                    {
                        best_ratio = ratio;
                        leave = r;
                    }
                }
            }
            let leave = if art_leave != NONE { art_leave } else { leave };
            if leave == NONE {
                for &i in &nz {
                    self.scratch[i] = 0.0;
                }
                return Err(LpError::Unbounded);
            }

            let wr = self.scratch[leave];
            let theta = (self.xb[leave] / wr).max(0.0);
            if theta < EPS {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }
            // Step the basic values along the direction, then absorb the
            // pivot column into a fresh eta (consuming the scratch vector).
            for &i in &nz {
                if i != leave && self.scratch[i] != 0.0 {
                    let v = self.xb[i] - theta * self.scratch[i];
                    self.xb[i] = if v < 0.0 { 0.0 } else { v };
                }
            }
            self.xb[leave] = theta;
            let eta = build_eta(&mut self.scratch, &mut nz, leave);
            self.etas.push(eta);
            self.pivots_since_refactor += 1;
            self.in_basis[self.basis[leave]] = false;
            self.in_basis[enter] = true;
            self.basis[leave] = enter;
        }
        Err(LpError::IterationLimit)
    }

    /// Total value currently sitting on basic artificial variables.
    fn artificial_mass(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.std.m {
            if self.basis[r] >= self.std.art_base {
                s += self.xb[r];
            }
        }
        s
    }

    fn has_basic_artificial(&self) -> bool {
        self.basis.iter().any(|&b| b >= self.std.art_base)
    }
}

/// Extracts the primal/dual solution from an optimal phase-2 state.
fn extract(lp: &LinearProgram, std: &StdLp, solver: &Solver<'_>) -> Solution {
    let mut values = vec![0.0; std.n];
    for r in 0..std.m {
        if solver.basis[r] < std.n {
            values[solver.basis[r]] = solver.xb[r];
        }
    }
    let objective = lp.objective.iter().zip(&values).map(|(c, x)| c * x).sum();

    // Duals of the normalized rows, restored to the caller's orientation.
    let mut c2 = vec![0.0; std.total_cols];
    c2[..std.n].copy_from_slice(&std.objective);
    let y = solver.prices(&c2);
    let duals = (0..std.m)
        .map(|r| if std.row_negated[r] { -y[r] } else { y[r] })
        .collect();
    Solution {
        objective,
        values,
        duals,
    }
}

fn run(lp: &LinearProgram, hint: Option<&[f64]>) -> LpResult {
    let std = StdLp::build(lp);
    let max_iters = 50 * (std.m + std.total_cols) + 5000;

    let mut solver = hint
        .and_then(|h| crash_basis(&std, h))
        .unwrap_or_else(|| Solver::initial(&std));

    // Phase 1: drive the artificial mass to zero (maximize its negation).
    if solver.has_basic_artificial() && solver.artificial_mass() > 1e-9 {
        let mut c1 = vec![0.0; std.total_cols];
        for slot in &mut c1[std.art_base..] {
            *slot = -1.0;
        }
        solver.optimize(&c1, true, max_iters)?;
        if solver.artificial_mass() > 1e-6 {
            return Err(LpError::Infeasible);
        }
    }

    // Phase 2: the real objective; artificials may neither enter nor move.
    let mut c2 = vec![0.0; std.total_cols];
    c2[..std.n].copy_from_slice(&std.objective);
    solver.optimize(&c2, false, max_iters)?;

    Ok(extract(lp, &std, &solver))
}

/// Builds a starting basis from a caller-supplied guess of the variable
/// values (e.g. an FPTAS flow): structural columns are admitted greedily in
/// descending hint order, remaining rows are covered by their logical column.
/// The crash is kept only when the implied basic point is feasible
/// (non-negative); otherwise the caller falls back to the all-logical start,
/// so a bad hint costs one failed attempt and changes nothing else.
fn crash_basis<'a>(std: &'a StdLp, hint: &[f64]) -> Option<Solver<'a>> {
    if hint.len() != std.n || std.m == 0 {
        return None;
    }
    let mut candidates: Vec<usize> = (0..std.n)
        .filter(|&j| hint[j].is_finite() && hint[j] > EPS)
        .collect();
    candidates.sort_by(|&a, &b| {
        hint[b]
            .partial_cmp(&hint[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let m = std.m;
    let mut etas: Vec<Eta> = Vec::new();
    let mut assigned = vec![false; m];
    let mut basis = vec![NONE; m];
    let mut scratch = vec![0.0; m];
    let mut nz = Vec::new();
    let mut placed = 0usize;
    // Greedy structural placement with a conservative pivot threshold: a
    // marginal pivot here buys a badly conditioned start.
    for &j in &candidates {
        if placed == m {
            break;
        }
        nz.clear();
        std.scatter_col(j, &mut scratch, &mut nz);
        ftran(&etas, &mut scratch, &mut nz);
        let mut best = 0.0f64;
        let mut pr = NONE;
        for &i in &nz {
            let a = scratch[i].abs();
            if !assigned[i] && a > best {
                best = a;
                pr = i;
            }
        }
        if pr == NONE || best < 0.01 {
            for &i in &nz {
                scratch[i] = 0.0;
            }
            continue;
        }
        etas.push(build_eta(&mut scratch, &mut nz, pr));
        assigned[pr] = true;
        basis[pr] = j;
        placed += 1;
    }
    // Cover leftover rows with their slack, then artificial, column. The
    // FTRAN check keeps the basis exactly nonsingular even when structural
    // etas already touched the row.
    let logicals = std
        .slack
        .iter()
        .enumerate()
        .map(|(k, &(r, _))| (std.slack_base + k, r))
        .chain(
            std.art
                .iter()
                .enumerate()
                .map(|(k, &r)| (std.art_base + k, r)),
        );
    for (col, r) in logicals {
        if assigned[r] {
            continue;
        }
        nz.clear();
        std.scatter_col(col, &mut scratch, &mut nz);
        ftran(&etas, &mut scratch, &mut nz);
        if scratch[r].abs() > 0.01 {
            etas.push(build_eta(&mut scratch, &mut nz, r));
            assigned[r] = true;
            basis[r] = col;
        } else {
            for &i in &nz {
                scratch[i] = 0.0;
            }
        }
    }
    if assigned.iter().any(|&a| !a) {
        return None;
    }

    // The crash point must be primal feasible or the start is useless.
    nz.clear();
    for (r, (slot, &rhs)) in scratch.iter_mut().zip(&std.rhs).enumerate().take(m) {
        if rhs != 0.0 {
            *slot = rhs;
            nz.push(r);
        }
    }
    ftran(&etas, &mut scratch, &mut nz);
    nz.sort_unstable();
    nz.dedup();
    let mut xb = vec![0.0; m];
    let mut feasible = true;
    for &i in &nz {
        if scratch[i] < -1e-7 {
            feasible = false;
        }
        xb[i] = scratch[i].max(0.0);
        scratch[i] = 0.0;
    }
    if !feasible {
        return None;
    }
    let mut in_basis = vec![false; std.total_cols];
    for &b in &basis {
        in_basis[b] = true;
    }
    Some(Solver {
        std,
        basis,
        in_basis,
        xb,
        etas,
        pivots_since_refactor: 0,
        scratch,
    })
}

/// Solves the linear program with the two-phase revised simplex method.
pub fn solve(lp: &LinearProgram) -> LpResult {
    run(lp, None)
}

/// Like [`solve`], but warm-starts from `hint`, a guess of the optimal
/// variable values (length `num_vars`, e.g. a rescaled FPTAS flow). The hint
/// seeds a crash basis; if the implied starting point is infeasible the
/// solver silently falls back to the cold start, so the result is identical
/// either way — only the iteration count changes.
pub fn solve_with_hint(lp: &LinearProgram, hint: &[f64]) -> LpResult {
    run(lp, Some(hint))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_two_var_max() {
        // max 3x + 2y ; x + y <= 4; x + 3y <= 6; x,y >= 0 -> x=4, y=0, obj=12
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 12.0);
        assert_close(s.values[0], 4.0);
        assert_close(s.values[1], 0.0);
    }

    #[test]
    fn classic_product_mix() {
        // max 5x + 4y; 6x + 4y <= 24; x + 2y <= 6 -> x=3, y=1.5, obj=21
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.add_constraint(vec![(0, 6.0), (1, 4.0)], ConstraintOp::Le, 24.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Le, 6.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 21.0);
        assert_close(s.values[0], 3.0);
        assert_close(s.values[1], 1.5);
    }

    #[test]
    fn equality_constraint() {
        // max x + y; x + y = 5; x <= 3 -> obj = 5
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 5.0);
        assert!(s.values[0] <= 3.0 + 1e-9);
    }

    #[test]
    fn ge_constraints_and_minimization_style() {
        // "minimize 2x + 3y s.t. x + y >= 10, x >= 2" expressed as maximizing
        // the negation.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -2.0);
        lp.set_objective(1, -3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 10.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, -20.0);
        assert_close(s.values[0], 10.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 5.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -1 with x,y>=0 means y >= x + 1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, -1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 10.0);
        let s = solve(&lp).unwrap();
        // best is x=3, y=4 -> obj = -1
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A problem known to cause cycling without anti-cycling rules
        // (Beale's example, stated as maximization).
        let mut lp = LinearProgram::new(4);
        lp.set_objective(0, 0.75);
        lp.set_objective(1, -150.0);
        lp.set_objective(2, 0.02);
        lp.set_objective(3, -6.0);
        lp.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(vec![(2, 1.0)], ConstraintOp::Le, 1.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn max_flow_as_lp() {
        // Max s-t flow on a small directed graph encoded as an LP.
        // s=0, t=3. arcs: (0,1,c=2),(0,2,c=2),(1,3,c=1),(2,3,c=3),(1,2,c=1)
        // max flow = 4 (paths 0-1-3: 1, 0-1-2-3: 1, 0-2-3: 2).
        // variables: f per arc (5 vars). maximize f(0,1)+f(0,2)
        // conservation at 1: f01 = f13 + f12 ; at 2: f02 + f12 = f23
        let mut lp = LinearProgram::new(5);
        // order: f01, f02, f13, f23, f12
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        for (i, cap) in [(0usize, 2.0), (1, 2.0), (2, 1.0), (3, 3.0), (4, 1.0)] {
            lp.add_constraint(vec![(i, 1.0)], ConstraintOp::Le, cap);
        }
        lp.add_constraint(vec![(0, 1.0), (2, -1.0), (4, -1.0)], ConstraintOp::Eq, 0.0);
        lp.add_constraint(vec![(1, 1.0), (4, 1.0), (3, -1.0)], ConstraintOp::Eq, 0.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], ConstraintOp::Eq, 4.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn zero_rhs_equalities() {
        // max x s.t. x - y = 0, y <= 7
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 0.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 7.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_product_mix() {
        // Duals of the classic product mix solve 6a + b = 5, 4a + 2b = 4
        // -> a = 0.75, b = 0.5, and y'b = 24*0.75 + 6*0.5 = 21 = objective.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.add_constraint(vec![(0, 6.0), (1, 4.0)], ConstraintOp::Le, 24.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Le, 6.0);
        let s = solve(&lp).unwrap();
        assert_close(s.duals[0], 0.75);
        assert_close(s.duals[1], 0.5);
        let dual_obj: f64 = s.duals[0] * 24.0 + s.duals[1] * 6.0;
        assert_close(dual_obj, s.objective);
    }

    #[test]
    fn duals_on_negated_rows_keep_the_callers_orientation() {
        // Same instance as negative_rhs_normalization: strong duality must
        // hold against the ORIGINAL right-hand sides (including the -1), and
        // the `<=` row's dual stays nonnegative in the caller's orientation.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, -1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 10.0);
        let s = solve(&lp).unwrap();
        let dual_obj: f64 = -s.duals[0] + s.duals[1] * 3.0 + s.duals[2] * 10.0;
        assert_close(dual_obj, s.objective);
        assert!(s.duals[0] >= -1e-9, "Le dual must be nonnegative");
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.add_constraint(vec![(0, 6.0), (1, 4.0)], ConstraintOp::Le, 24.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Le, 6.0);
        let cold = solve(&lp).unwrap();
        // A hint at the optimum, a feasible-but-wrong hint, and garbage must
        // all land on the same optimum.
        for hint in [
            vec![3.0, 1.5],
            vec![0.1, 0.1],
            vec![1e9, 1e9],
            vec![f64::NAN, -1.0],
        ] {
            let warm = solve_with_hint(&lp, &hint).unwrap();
            assert_close(warm.objective, cold.objective);
        }
        // Wrong-length hints fall back to the cold start.
        let warm = solve_with_hint(&lp, &[1.0]).unwrap();
        assert_close(warm.objective, cold.objective);
    }

    #[test]
    fn warm_start_on_equality_rows() {
        // Max-flow LP again, warm-started from its known optimal flow.
        let mut lp = LinearProgram::new(5);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        for (i, cap) in [(0usize, 2.0), (1, 2.0), (2, 1.0), (3, 3.0), (4, 1.0)] {
            lp.add_constraint(vec![(i, 1.0)], ConstraintOp::Le, cap);
        }
        lp.add_constraint(vec![(0, 1.0), (2, -1.0), (4, -1.0)], ConstraintOp::Eq, 0.0);
        lp.add_constraint(vec![(1, 1.0), (4, 1.0), (3, -1.0)], ConstraintOp::Eq, 0.0);
        let s = solve_with_hint(&lp, &[2.0, 2.0, 1.0, 3.0, 1.0]).unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn larger_sparse_instance_forces_refactorization() {
        // A transportation-style LP big enough to force several eta-file
        // rebuilds: 40 supplies x 40 sinks on a sparse bipartite pattern,
        // maximize total shipped. Supply i reaches sinks i, i+1, i+2 (mod 40)
        // with unit caps on both sides -> a perfect matching ships 40.
        let n_side = 40usize;
        let mut lp = LinearProgram::new(n_side * 3);
        let var = |i: usize, k: usize| i * 3 + k;
        for i in 0..n_side {
            for k in 0..3 {
                lp.set_objective(var(i, k), 1.0);
            }
            let coeffs = (0..3).map(|k| (var(i, k), 1.0)).collect();
            lp.add_constraint(coeffs, ConstraintOp::Le, 1.0);
        }
        for j in 0..n_side {
            // Sink j receives from supplies j, j-1, j-2 (mod n).
            let coeffs = (0..3)
                .map(|k| (var((j + n_side - k) % n_side, k), 1.0))
                .collect();
            lp.add_constraint(coeffs, ConstraintOp::Le, 1.0);
        }
        let s = solve(&lp).unwrap();
        assert_close(s.objective, n_side as f64);
        // Strong duality across all 80 unit-rhs rows.
        let dual_obj: f64 = s.duals.iter().sum();
        assert_close(dual_obj, s.objective);
    }
}
