//! Dense two-phase primal simplex.

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a' x <= b`
    Le,
    /// `a' x = b`
    Eq,
    /// `a' x >= b`
    Ge,
}

/// A single linear constraint `sum_j coeffs[j].1 * x[coeffs[j].0]  op  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficients as (variable index, coefficient) pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: maximize `objective' x` subject to `constraints`, `x >= 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (length `num_vars`), to be maximized.
    pub objective: Vec<f64>,
    /// Constraint list.
    pub constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an LP with `num_vars` variables and a zero objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars);
        self.objective[var] = coeff;
    }

    /// Adds a constraint. Coefficients with duplicate variable indices are
    /// summed.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) {
        for &(v, _) in &coeffs {
            assert!(
                v < self.num_vars,
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
    }
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value (of the maximization).
    pub objective: f64,
    /// Values of the decision variables.
    pub values: Vec<f64>,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Result alias for LP solves.
pub type LpResult = Result<Solution, LpError>;

const EPS: f64 = 1e-9;

struct Tableau {
    /// rows x cols dense matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length cols; last entry is the negated
    /// objective value.
    obj: Vec<f64>,
    /// Basis: for each row, the index of its basic column.
    basis: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for x in self.a[row].iter_mut() {
            *x *= inv;
        }
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() > EPS {
                for c in 0..self.cols {
                    self.a[r][c] -= factor * self.a[row][c];
                }
                self.a[r][col] = 0.0;
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for c in 0..self.cols {
                self.obj[c] -= factor * self.a[row][c];
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs the simplex method on the current objective row. `allowed_cols`
    /// limits which columns may enter the basis (used to keep artificial
    /// variables out in phase 2).
    fn optimize(&mut self, allowed: usize, max_iters: usize) -> Result<(), LpError> {
        let mut degenerate_run = 0usize;
        for _iter in 0..max_iters {
            // Entering column: Dantzig rule (most positive reduced cost for a
            // maximization tableau where obj holds c_j - z_j), switching to
            // Bland's rule after a run of degenerate pivots.
            let use_bland = degenerate_run > 50;
            let mut enter = None;
            if use_bland {
                for c in 0..allowed {
                    if self.obj[c] > EPS {
                        enter = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = EPS;
                for c in 0..allowed {
                    if self.obj[c] > best {
                        best = self.obj[c];
                        enter = Some(c);
                    }
                }
            }
            let enter = match enter {
                Some(c) => c,
                None => return Ok(()),
            };
            // Leaving row: minimum ratio test.
            let mut leave = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.a[r][enter];
                if a > EPS {
                    let ratio = self.a[r][self.cols - 1] / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_none_or(|lr: usize| self.basis[r] < self.basis[lr]))
                    {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let leave = match leave {
                Some(r) => r,
                None => return Err(LpError::Unbounded),
            };
            if best_ratio < EPS {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }
            self.pivot(leave, enter);
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves the linear program with the two-phase primal simplex method.
pub fn solve(lp: &LinearProgram) -> LpResult {
    let n = lp.num_vars;
    let m = lp.constraints.len();

    // Count auxiliary variables: one slack/surplus per inequality, one
    // artificial per >= or = constraint (and per <= with negative rhs after
    // normalization).
    // First normalize constraints so rhs >= 0.
    let mut rows: Vec<(Vec<f64>, ConstraintOp, f64)> = Vec::with_capacity(m);
    for c in &lp.constraints {
        let mut dense = vec![0.0; n];
        for &(v, coef) in &c.coeffs {
            dense[v] += coef;
        }
        let (dense, op, rhs) = if c.rhs < 0.0 {
            let flipped_op = match c.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
            (
                dense.iter().map(|x| -x).collect::<Vec<_>>(),
                flipped_op,
                -c.rhs,
            )
        } else {
            (dense, c.op, c.rhs)
        };
        rows.push((dense, op, rhs));
    }

    let num_slack = rows
        .iter()
        .filter(|(_, op, _)| *op != ConstraintOp::Eq)
        .count();
    let num_art = rows
        .iter()
        .filter(|(_, op, _)| *op != ConstraintOp::Le)
        .count();
    let cols = n + num_slack + num_art + 1;
    let slack_base = n;
    let art_base = n + num_slack;

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = 0usize;
    let mut art_idx = 0usize;
    for (r, (dense, op, rhs)) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(dense);
        a[r][cols - 1] = *rhs;
        match op {
            ConstraintOp::Le => {
                a[r][slack_base + slack_idx] = 1.0;
                basis[r] = slack_base + slack_idx;
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                a[r][slack_base + slack_idx] = -1.0;
                slack_idx += 1;
                a[r][art_base + art_idx] = 1.0;
                basis[r] = art_base + art_idx;
                art_idx += 1;
            }
            ConstraintOp::Eq => {
                a[r][art_base + art_idx] = 1.0;
                basis[r] = art_base + art_idx;
                art_idx += 1;
            }
        }
    }

    let max_iters = 50 * (m + cols) + 5000;

    // Phase 1: minimize the sum of artificial variables, i.e. maximize the
    // negated sum. Build the phase-1 objective row as c_j - z_j.
    let mut tab = Tableau {
        a,
        obj: vec![0.0; cols],
        basis,
        rows: m,
        cols,
    };

    if num_art > 0 {
        // phase-1 cost: -1 for artificials, 0 otherwise (maximization).
        // reduced costs: c_j - sum over basic rows of c_B * a_rj.
        let mut obj = vec![0.0; cols];
        for slot in &mut obj[art_base..art_base + num_art] {
            *slot = -1.0;
        }
        // Price out the basic artificial columns.
        for r in 0..m {
            if tab.basis[r] >= art_base {
                for (slot, a) in obj.iter_mut().zip(&tab.a[r]) {
                    *slot += a;
                }
            }
        }
        // The artificial columns themselves end with reduced cost 0 in the
        // rows where they are basic; ensure exactly that.
        tab.obj = obj;
        tab.optimize(cols - 1, max_iters)?;
        // The objective row's RHS entry holds the negated objective value, so
        // the achieved maximum of -(sum of artificials) is -obj[rhs]; any
        // strictly negative optimum means some artificial stayed positive.
        let phase1_value = -tab.obj[cols - 1];
        if phase1_value < -1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining artificial variables out of the basis.
        for r in 0..m {
            if tab.basis[r] >= art_base {
                // Find a non-artificial column with a nonzero coefficient.
                let mut found = None;
                for c in 0..art_base {
                    if tab.a[r][c].abs() > 1e-7 {
                        found = Some(c);
                        break;
                    }
                }
                if let Some(c) = found {
                    tab.pivot(r, c);
                }
                // If none found the row is redundant; leave the artificial at
                // value ~0, it cannot re-enter because phase 2 restricts
                // entering columns to non-artificials.
            }
        }
    }

    // Phase 2: maximize the real objective.
    let mut obj = vec![0.0; cols];
    obj[..n].copy_from_slice(&lp.objective);
    // Price out basic columns: obj = c - c_B * B^{-1} A.
    for r in 0..m {
        let b = tab.basis[r];
        let cb = if b < n { lp.objective[b] } else { 0.0 };
        if cb != 0.0 {
            for (slot, a) in obj.iter_mut().zip(&tab.a[r]) {
                *slot -= cb * a;
            }
        }
    }
    tab.obj = obj;
    tab.optimize(art_base, max_iters)?;

    let mut values = vec![0.0; n];
    for r in 0..m {
        if tab.basis[r] < n {
            values[tab.basis[r]] = tab.a[r][cols - 1];
        }
    }
    let objective = lp.objective.iter().zip(&values).map(|(c, x)| c * x).sum();
    Ok(Solution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_two_var_max() {
        // max 3x + 2y ; x + y <= 4; x + 3y <= 6; x,y >= 0 -> x=4, y=0, obj=12
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], ConstraintOp::Le, 6.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 12.0);
        assert_close(s.values[0], 4.0);
        assert_close(s.values[1], 0.0);
    }

    #[test]
    fn classic_product_mix() {
        // max 5x + 4y; 6x + 4y <= 24; x + 2y <= 6 -> x=3, y=1.5, obj=21
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 5.0);
        lp.set_objective(1, 4.0);
        lp.add_constraint(vec![(0, 6.0), (1, 4.0)], ConstraintOp::Le, 24.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintOp::Le, 6.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 21.0);
        assert_close(s.values[0], 3.0);
        assert_close(s.values[1], 1.5);
    }

    #[test]
    fn equality_constraint() {
        // max x + y; x + y = 5; x <= 3 -> obj = 5
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 5.0);
        assert!(s.values[0] <= 3.0 + 1e-9);
    }

    #[test]
    fn ge_constraints_and_minimization_style() {
        // "minimize 2x + 3y s.t. x + y >= 10, x >= 2" expressed as maximizing
        // the negation.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -2.0);
        lp.set_objective(1, -3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 10.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, -20.0);
        assert_close(s.values[0], 10.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 5.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -1 with x,y>=0 means y >= x + 1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Le, -1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 10.0);
        let s = solve(&lp).unwrap();
        // best is x=3, y=4 -> obj = -1
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A problem known to cause cycling without anti-cycling rules
        // (Beale's example, stated as maximization).
        let mut lp = LinearProgram::new(4);
        lp.set_objective(0, 0.75);
        lp.set_objective(1, -150.0);
        lp.set_objective(2, 0.02);
        lp.set_objective(3, -6.0);
        lp.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(vec![(2, 1.0)], ConstraintOp::Le, 1.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn max_flow_as_lp() {
        // Max s-t flow on a small directed graph encoded as an LP.
        // s=0, t=3. arcs: (0,1,c=2),(0,2,c=2),(1,3,c=1),(2,3,c=3),(1,2,c=1)
        // max flow = 4 (paths 0-1-3: 1, 0-1-2-3: 1, 0-2-3: 2).
        // variables: f per arc (5 vars). maximize f(0,1)+f(0,2)
        // conservation at 1: f01 = f13 + f12 ; at 2: f02 + f12 = f23
        let mut lp = LinearProgram::new(5);
        // order: f01, f02, f13, f23, f12
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        for (i, cap) in [(0usize, 2.0), (1, 2.0), (2, 1.0), (3, 3.0), (4, 1.0)] {
            lp.add_constraint(vec![(i, 1.0)], ConstraintOp::Le, cap);
        }
        lp.add_constraint(vec![(0, 1.0), (2, -1.0), (4, -1.0)], ConstraintOp::Eq, 0.0);
        lp.add_constraint(vec![(1, 1.0), (4, 1.0), (3, -1.0)], ConstraintOp::Eq, 0.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], ConstraintOp::Eq, 4.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn zero_rhs_equalities() {
        // max x s.t. x - y = 0, y <= 7
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 0.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 7.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 7.0);
    }
}
