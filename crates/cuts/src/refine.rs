//! Local-search refinement of cuts (Kernighan–Lin style single-node moves).
//!
//! The Appendix-C estimator battery reproduces the paper's heuristics exactly;
//! this module adds an optional post-processing step: starting from any cut,
//! greedily move single nodes across the partition while the sparsity
//! improves. Refinement can only lower (improve) the sparsity estimate, so it
//! tightens the upper bound on throughput without changing the battery's
//! semantics. It is exposed separately so Table II can still be reproduced
//! with the paper's original estimators.

use crate::sparsity::CutEvaluator;
use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// Refines `cut` by repeatedly moving the single node whose move most
/// improves the sparsity, until no single-node move helps or `max_passes`
/// whole-graph passes have run. Returns the refined cut and its sparsity.
pub fn refine_cut(
    graph: &Graph,
    tm: &TrafficMatrix,
    cut: &[bool],
    max_passes: usize,
) -> (Vec<bool>, f64) {
    let ev = CutEvaluator::new(graph, tm);
    let n = graph.num_nodes();
    assert_eq!(cut.len(), n);
    let mut current = cut.to_vec();
    let mut best_sparsity = ev.sparsity(&current);
    for _pass in 0..max_passes {
        let mut improved = false;
        for u in 0..n {
            current[u] = !current[u];
            if !ev.is_proper(&current) {
                current[u] = !current[u];
                continue;
            }
            let s = ev.sparsity(&current);
            if s + 1e-12 < best_sparsity {
                best_sparsity = s;
                improved = true;
            } else {
                current[u] = !current[u];
            }
        }
        if !improved {
            break;
        }
    }
    (current, best_sparsity)
}

/// Runs the full estimator battery and then refines the winning cut; returns
/// `(sparsity_before, sparsity_after, refined_cut)`.
pub fn estimate_and_refine(
    graph: &Graph,
    tm: &TrafficMatrix,
    max_passes: usize,
) -> (f64, f64, Vec<bool>) {
    let report = crate::estimators::estimate_sparsest_cut(graph, tm);
    let (refined, after) = refine_cut(graph, tm, &report.best_cut, max_passes);
    (report.best_sparsity, after, refined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_traffic::synthetic::all_to_all;

    fn barbell() -> Graph {
        let mut g = Graph::new(10);
        for base in [0usize, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    g.add_unit_edge(base + i, base + j);
                }
            }
        }
        g.add_unit_edge(0, 5);
        g
    }

    #[test]
    fn refinement_never_worsens_the_cut() {
        let g = barbell();
        let tm = all_to_all(&[1usize; 10]);
        let ev = CutEvaluator::new(&g, &tm);
        // Start from a bad cut: a single node.
        let mut start = vec![false; 10];
        start[3] = true;
        let before = ev.sparsity(&start);
        let (refined, after) = refine_cut(&g, &tm, &start, 20);
        assert!(after <= before + 1e-12);
        assert!(refined.iter().any(|&b| b) && !refined.iter().all(|&b| b));
    }

    #[test]
    fn refinement_finds_the_bridge_from_a_lopsided_start() {
        let g = barbell();
        let tm = all_to_all(&[1usize; 10]);
        // Start with one clique plus one node of the other: the greedy move
        // should push that node back across the bridge.
        let mut start = vec![false; 10];
        start[..6].fill(true);

        let (_, after) = refine_cut(&g, &tm, &start, 20);
        // Optimal bridge cut: capacity 1, crossing demand 25/10 = 2.5.
        assert!((after - 0.4).abs() < 1e-9, "got {after}");
    }

    #[test]
    fn estimate_and_refine_is_at_least_as_good_as_the_battery() {
        let g = tb_graph::random::random_regular_graph(20, 3, 4);
        let tm = all_to_all(&[1usize; 20]);
        let (before, after, cut) = estimate_and_refine(&g, &tm, 10);
        assert!(after <= before + 1e-12);
        assert_eq!(cut.len(), 20);
    }

    #[test]
    fn refined_cut_still_upper_bounds_throughput() {
        use tb_flow::{FleischerConfig, FleischerSolver};
        let g = tb_graph::random::random_regular_graph(16, 3, 8);
        let servers = vec![1usize; 16];
        let tm = tb_traffic::synthetic::longest_matching(&g, &servers, true);
        let (_, after, _) = estimate_and_refine(&g, &tm, 10);
        let t = FleischerSolver::new(FleischerConfig::default()).solve(&g, &tm);
        assert!(
            after >= t.lower * 0.99 - 1e-9,
            "cut {after} vs throughput {}",
            t.lower
        );
    }
}
