//! Sparsity of a cut with respect to a traffic matrix, and bisection
//! bandwidth.

use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// Precomputed cut evaluator: evaluates the sparsity of arbitrary cuts of one
/// (graph, TM) pair without rescanning the TM's demand list from scratch.
#[derive(Debug, Clone)]
pub struct CutEvaluator<'a> {
    graph: &'a Graph,
    demands: Vec<(usize, usize, f64)>,
}

impl<'a> CutEvaluator<'a> {
    /// Creates an evaluator for the given graph and TM.
    pub fn new(graph: &'a Graph, tm: &TrafficMatrix) -> Self {
        assert_eq!(graph.num_nodes(), tm.num_switches());
        let demands = tm
            .demands()
            .iter()
            .map(|d| (d.src, d.dst, d.amount))
            .collect();
        CutEvaluator { graph, demands }
    }

    /// The graph under evaluation.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Capacity crossing the cut (each undirected link counted once — the
    /// per-direction capacity available to flow crossing the cut one way).
    pub fn cut_capacity(&self, in_set: &[bool]) -> f64 {
        self.graph.cut_capacity(in_set)
    }

    /// Demand crossing the cut in the more loaded direction.
    pub fn crossing_demand(&self, in_set: &[bool]) -> f64 {
        let mut fwd = 0.0;
        let mut rev = 0.0;
        for &(src, dst, amount) in &self.demands {
            match (in_set[src], in_set[dst]) {
                (true, false) => fwd += amount,
                (false, true) => rev += amount,
                _ => {}
            }
        }
        fwd.max(rev)
    }

    /// Sparsity of the cut: crossing capacity / crossing demand. Returns
    /// `f64::INFINITY` when no demand crosses (such cuts never constrain
    /// throughput).
    pub fn sparsity(&self, in_set: &[bool]) -> f64 {
        let demand = self.crossing_demand(in_set);
        if demand <= 0.0 {
            f64::INFINITY
        } else {
            self.cut_capacity(in_set) / demand
        }
    }

    /// True if the cut is a valid bipartition (neither side empty).
    pub fn is_proper(&self, in_set: &[bool]) -> bool {
        let k = in_set.iter().filter(|&&b| b).count();
        k > 0 && k < in_set.len()
    }
}

/// Sparsity of a single cut (convenience wrapper around [`CutEvaluator`]).
pub fn cut_sparsity(graph: &Graph, tm: &TrafficMatrix, in_set: &[bool]) -> f64 {
    CutEvaluator::new(graph, tm).sparsity(in_set)
}

/// Bisection bandwidth with respect to a TM: the minimum sparsity over cuts
/// that split the switches into two (near-)equal halves.
///
/// Exact (brute force) for graphs of at most `brute_force_limit` nodes;
/// otherwise a heuristic search over eigenvector-sweep balanced cuts and
/// random balanced partitions is used.
pub fn bisection_bandwidth(graph: &Graph, tm: &TrafficMatrix, brute_force_limit: usize) -> f64 {
    let n = graph.num_nodes();
    let ev = CutEvaluator::new(graph, tm);
    let half = n / 2;
    let mut best = f64::INFINITY;
    if n <= brute_force_limit && n <= 24 {
        // Enumerate all subsets of size floor(n/2) that contain node 0 (to
        // halve the symmetry).
        let mut indices: Vec<usize> = (0..half).collect();
        loop {
            let mut in_set = vec![false; n];
            for &i in &indices {
                in_set[i] = true;
            }
            if in_set[0] {
                let s = ev.sparsity(&in_set);
                best = best.min(s);
            }
            // next combination
            let mut i = half;
            loop {
                if i == 0 {
                    return best;
                }
                i -= 1;
                if indices[i] != i + n - half {
                    indices[i] += 1;
                    for j in i + 1..half {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
    // Heuristic: eigenvector sweep balanced cut plus deterministic rotations.
    let spec = tb_graph::spectral::second_smallest_normalized_laplacian(graph, 300);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        spec.eigenvector[a]
            .partial_cmp(&spec.eigenvector[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut in_set = vec![false; n];
    for &u in order.iter().take(half) {
        in_set[u] = true;
    }
    best = best.min(ev.sparsity(&in_set));
    // A few deterministic alternative balanced cuts (index parity, blocks).
    let mut alt = vec![false; n];
    for (u, a) in alt.iter_mut().enumerate() {
        *a = u % 2 == 0;
    }
    best = best.min(ev.sparsity(&alt));
    let mut block = vec![false; n];
    for (u, b) in block.iter_mut().enumerate() {
        *b = u < half;
    }
    best = best.min(ev.sparsity(&block));
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_traffic::synthetic::all_to_all;
    use tb_traffic::{Demand, TrafficMatrix};

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn sparsity_of_a_path_cut() {
        // Path 0-1-2-3 with demand 1 from 0 to 3: cutting the middle link has
        // capacity 1, demand 1 -> sparsity 1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 3, 1.0)]);
        let s = cut_sparsity(&g, &tm, &[true, true, false, false]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_with_no_crossing_demand_is_infinite() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let tm = TrafficMatrix::new(4, vec![demand(0, 1, 1.0)]);
        let s = cut_sparsity(&g, &tm, &[true, true, false, false]);
        assert!(s.is_infinite());
    }

    #[test]
    fn crossing_demand_takes_heavier_direction() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let tm = TrafficMatrix::new(2, vec![demand(0, 1, 3.0), demand(1, 0, 1.0)]);
        let ev = CutEvaluator::new(&g, &tm);
        assert_eq!(ev.crossing_demand(&[true, false]), 3.0);
        assert!((ev.sparsity(&[true, false]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bisection_of_barbell_finds_the_bridge() {
        // Two K4s joined by one link; A2A demand. The bisection must cut the
        // bridge: capacity 1.
        let mut g = Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    g.add_unit_edge(base + i, base + j);
                }
            }
        }
        g.add_unit_edge(0, 4);
        let tm = all_to_all(&[1usize; 8]);
        let bb = bisection_bandwidth(&g, &tm, 24);
        // crossing demand for the A2A TM: 4*4/8 = 2 in each direction.
        assert!((bb - 1.0 / 2.0).abs() < 1e-9, "got {bb}");
    }

    #[test]
    fn bisection_heuristic_on_larger_graph_is_finite() {
        let g = tb_graph::random::random_regular_graph(40, 4, 3);
        let tm = all_to_all(&vec![1usize; 40]);
        let bb = bisection_bandwidth(&g, &tm, 10);
        assert!(bb.is_finite());
        assert!(bb > 0.0);
    }

    #[test]
    fn proper_cut_detection() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let tm = TrafficMatrix::new(3, vec![demand(0, 2, 1.0)]);
        let ev = CutEvaluator::new(&g, &tm);
        assert!(!ev.is_proper(&[false, false, false]));
        assert!(!ev.is_proper(&[true, true, true]));
        assert!(ev.is_proper(&[true, false, false]));
    }
}
