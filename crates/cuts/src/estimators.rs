//! The battery of sparsest-cut estimators from Appendix C of the paper, and
//! the combined estimate (the best cut found by any of them).

use crate::sparsity::CutEvaluator;
use serde::{Deserialize, Serialize};
use tb_graph::shortest_path::bfs_distances;
use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// Which heuristic produced a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Estimator {
    /// Exhaustive enumeration (complete only for small graphs, otherwise
    /// capped at a cut budget).
    BruteForce,
    /// Cuts isolating a single node.
    OneNode,
    /// Cuts isolating a pair of nodes.
    TwoNode,
    /// BFS balls of growing radius around each node.
    ExpandingRegion,
    /// Sweep cuts of the normalized-Laplacian second eigenvector.
    Eigenvector,
}

/// All estimators, in the order they are reported in Table II.
pub const ALL_ESTIMATORS: [Estimator; 5] = [
    Estimator::BruteForce,
    Estimator::OneNode,
    Estimator::TwoNode,
    Estimator::ExpandingRegion,
    Estimator::Eigenvector,
];

impl Estimator {
    /// Display name used in Table II.
    pub fn name(&self) -> &'static str {
        match self {
            Estimator::BruteForce => "Brute force",
            Estimator::OneNode => "1-node",
            Estimator::TwoNode => "2-node",
            Estimator::ExpandingRegion => "Expanding regions",
            Estimator::Eigenvector => "Eigenvector",
        }
    }
}

/// The best cut found by one estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CutEstimate {
    /// Which estimator produced it.
    pub estimator: Estimator,
    /// Sparsity of the best cut found (`f64::INFINITY` if the estimator found
    /// no cut with crossing demand).
    pub sparsity: f64,
    /// Membership vector of the best cut (true = in the set).
    pub cut: Vec<bool>,
}

/// The combined report: the best cut over all estimators, plus each
/// estimator's individual best (Table II needs to know which estimators found
/// the overall winner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CutReport {
    /// Sparsity of the sparsest cut found by any estimator.
    pub best_sparsity: f64,
    /// The cut achieving it.
    pub best_cut: Vec<bool>,
    /// Per-estimator results.
    pub estimates: Vec<CutEstimate>,
}

impl CutReport {
    /// The estimators whose best cut matches the overall best (within a
    /// relative tolerance), i.e. the "found the sparse cut" column of
    /// Table II.
    pub fn found_by(&self, tolerance: f64) -> Vec<Estimator> {
        self.estimates
            .iter()
            .filter(|e| {
                e.sparsity.is_finite()
                    && e.sparsity <= self.best_sparsity * (1.0 + tolerance) + 1e-12
            })
            .map(|e| e.estimator)
            .collect()
    }
}

/// Budget for the capped brute-force estimator (the paper caps it at 10,000
/// cuts on large networks).
pub const BRUTE_FORCE_CUT_BUDGET: usize = 10_000;

fn better(best: &mut (f64, Vec<bool>), sparsity: f64, cut: &[bool]) {
    if sparsity < best.0 {
        best.0 = sparsity;
        best.1 = cut.to_vec();
    }
}

fn brute_force(ev: &CutEvaluator, budget: usize) -> (f64, Vec<bool>) {
    let n = ev.graph().num_nodes();
    let mut best = (f64::INFINITY, vec![false; n]);
    if n < 2 {
        return best;
    }
    if n <= 20 {
        let limit: u64 = 1u64 << (n - 1); // fix node n-1 outside the set
        for mask in (1..limit).take(budget) {
            let mut cut = vec![false; n];
            for (u, c) in cut.iter_mut().enumerate().take(n - 1) {
                *c = (mask >> u) & 1 == 1;
            }
            let s = ev.sparsity(&cut);
            better(&mut best, s, &cut);
        }
    } else {
        // Capped exploration: enumerate low-index subsets up to the budget
        // (mirrors the paper's "limited brute-force computation ... capping
        // the computation at 10,000 cuts").
        let mut examined = 0usize;
        let mut mask: u64 = 1;
        while examined < budget {
            let mut cut = vec![false; n];
            for (u, c) in cut.iter_mut().enumerate().take(63.min(n)) {
                *c = (mask >> u) & 1 == 1;
            }
            if cut.iter().any(|&b| b) && !cut.iter().all(|&b| b) {
                let s = ev.sparsity(&cut);
                better(&mut best, s, &cut);
            }
            mask += 1;
            examined += 1;
        }
    }
    best
}

fn one_node_cuts(ev: &CutEvaluator) -> (f64, Vec<bool>) {
    let n = ev.graph().num_nodes();
    let mut best = (f64::INFINITY, vec![false; n]);
    let mut cut = vec![false; n];
    for u in 0..n {
        cut[u] = true;
        better(&mut best, ev.sparsity(&cut), &cut);
        cut[u] = false;
    }
    best
}

fn two_node_cuts(ev: &CutEvaluator) -> (f64, Vec<bool>) {
    let n = ev.graph().num_nodes();
    let mut best = (f64::INFINITY, vec![false; n]);
    let mut cut = vec![false; n];
    for u in 0..n {
        cut[u] = true;
        for v in u + 1..n {
            cut[v] = true;
            better(&mut best, ev.sparsity(&cut), &cut);
            cut[v] = false;
        }
        cut[u] = false;
    }
    best
}

fn expanding_region_cuts(ev: &CutEvaluator, graph: &Graph) -> (f64, Vec<bool>) {
    let n = graph.num_nodes();
    let mut best = (f64::INFINITY, vec![false; n]);
    for start in 0..n {
        let dist = bfs_distances(graph, start);
        let max_d = dist
            .iter()
            .filter(|&&d| d != tb_graph::shortest_path::UNREACHABLE)
            .copied()
            .max()
            .unwrap_or(0);
        for radius in 0..max_d {
            let cut: Vec<bool> = dist
                .iter()
                .map(|&d| d != tb_graph::shortest_path::UNREACHABLE && d <= radius)
                .collect();
            if ev.is_proper(&cut) {
                better(&mut best, ev.sparsity(&cut), &cut);
            }
        }
    }
    best
}

fn eigenvector_sweep(ev: &CutEvaluator, graph: &Graph) -> (f64, Vec<bool>) {
    let n = graph.num_nodes();
    let mut best = (f64::INFINITY, vec![false; n]);
    if n < 2 {
        return best;
    }
    let spec = tb_graph::spectral::second_smallest_normalized_laplacian(graph, 500);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| spec.eigenvector[a].total_cmp(&spec.eigenvector[b]));
    let mut cut = vec![false; n];
    for &u in order.iter().take(n - 1) {
        cut[u] = true;
        better(&mut best, ev.sparsity(&cut), &cut);
    }
    best
}

/// Runs every estimator and reports the sparsest cut any of them found
/// (the paper's "sparse cut", §III-B).
pub fn estimate_sparsest_cut(graph: &Graph, tm: &TrafficMatrix) -> CutReport {
    let ev = CutEvaluator::new(graph, tm);
    let mut estimates = Vec::with_capacity(ALL_ESTIMATORS.len());
    for est in ALL_ESTIMATORS {
        let (sparsity, cut) = match est {
            Estimator::BruteForce => brute_force(&ev, BRUTE_FORCE_CUT_BUDGET),
            Estimator::OneNode => one_node_cuts(&ev),
            Estimator::TwoNode => two_node_cuts(&ev),
            Estimator::ExpandingRegion => expanding_region_cuts(&ev, graph),
            Estimator::Eigenvector => eigenvector_sweep(&ev, graph),
        };
        estimates.push(CutEstimate {
            estimator: est,
            sparsity,
            cut,
        });
    }
    let best = estimates
        .iter()
        .min_by(|a, b| a.sparsity.total_cmp(&b.sparsity))
        .expect("at least one estimator");
    CutReport {
        best_sparsity: best.sparsity,
        best_cut: best.cut.clone(),
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_traffic::synthetic::all_to_all;
    use tb_traffic::{Demand, TrafficMatrix};

    fn demand(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn barbell_sparsest_cut_is_the_bridge() {
        let mut g = Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    g.add_unit_edge(base + i, base + j);
                }
            }
        }
        g.add_unit_edge(0, 4);
        let tm = all_to_all(&[1usize; 8]);
        let report = estimate_sparsest_cut(&g, &tm);
        // Bridge cut: capacity 1, crossing demand 16/8 = 2 -> sparsity 0.5.
        assert!(
            (report.best_sparsity - 0.5).abs() < 1e-9,
            "{}",
            report.best_sparsity
        );
        let found = report.found_by(1e-9);
        assert!(found.contains(&Estimator::BruteForce));
        assert!(found.contains(&Estimator::Eigenvector));
        assert!(!found.contains(&Estimator::OneNode));
    }

    #[test]
    fn one_node_cut_wins_on_a_star_with_pendant_demand() {
        // Star: node 0 center; demand only to/from leaf 1. The cut isolating
        // leaf 1 is the sparsest (capacity 1, demand 1).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let tm = TrafficMatrix::new(
            5,
            vec![
                demand(1, 2, 1.0),
                demand(2, 1, 1.0),
                demand(3, 4, 0.2),
                demand(4, 3, 0.2),
            ],
        );
        let report = estimate_sparsest_cut(&g, &tm);
        assert!((report.best_sparsity - 1.0).abs() < 1e-9);
        assert!(report.found_by(1e-9).contains(&Estimator::OneNode));
    }

    #[test]
    fn cut_upper_bounds_have_consistent_ordering() {
        // For any graph the combined estimate can only be <= each individual
        // estimator's value.
        let g = tb_graph::random::random_regular_graph(16, 3, 5);
        let tm = all_to_all(&[1usize; 16]);
        let report = estimate_sparsest_cut(&g, &tm);
        for e in &report.estimates {
            assert!(report.best_sparsity <= e.sparsity + 1e-12);
        }
        assert!(report.best_sparsity.is_finite());
    }

    #[test]
    fn found_by_contains_at_least_one_estimator() {
        let g = tb_graph::random::random_regular_graph(12, 3, 9);
        let tm = all_to_all(&[1usize; 12]);
        let report = estimate_sparsest_cut(&g, &tm);
        assert!(!report.found_by(1e-9).is_empty());
    }

    #[test]
    fn estimator_names_are_unique() {
        let mut names: Vec<&str> = ALL_ESTIMATORS.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_ESTIMATORS.len());
    }
}
