//! # tb-cuts
//!
//! Cut metrics and sparsest-cut estimators (§II-B, §III-B and Appendix C of
//! the paper).
//!
//! For a cut `(S, S̄)` and a traffic matrix `T`, the *sparsity* of the cut is
//! the capacity of the links crossing it divided by the demand that must cross
//! it; any cut's sparsity upper-bounds the concurrent throughput, and the
//! sparsest cut is the tightest such bound — but, as the paper shows, it can
//! still overestimate throughput by up to an `O(log n)` factor.
//!
//! Because finding the sparsest cut is NP-hard, the paper (Appendix C) uses a
//! battery of heuristics and takes the best cut any of them finds; this crate
//! reproduces that battery:
//!
//! * brute force (complete for ≤ ~20 nodes, capped at a cut budget otherwise),
//! * one-node and two-node cuts,
//! * expanding-region cuts (BFS balls around every node),
//! * an eigenvector sweep of the normalized-Laplacian second eigenvector,
//! * balanced bisections (for the bisection-bandwidth metric).

pub mod estimators;
pub mod refine;
pub mod sparsity;

pub use estimators::{estimate_sparsest_cut, CutEstimate, CutReport, Estimator, ALL_ESTIMATORS};
pub use refine::{estimate_and_refine, refine_cut};
pub use sparsity::{bisection_bandwidth, cut_sparsity, CutEvaluator};
