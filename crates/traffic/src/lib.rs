//! # tb-traffic
//!
//! Traffic-matrix (TM) generators and operators for topobench.
//!
//! A [`TrafficMatrix`] is a set of demands between *switches* (servers are
//! folded into the switch they attach to, see §II-A of the paper); the hose
//! model constrains each switch to send and receive at most as many units as
//! it has servers.
//!
//! Generators (§II-C, §IV):
//!
//! * [`synthetic::all_to_all`] — the complete TM `T_{A2A}`,
//! * [`synthetic::random_matching`] — `k` random server-level matchings
//!   ("Random Matching - k" in Fig 2),
//! * [`synthetic::longest_matching`] — the paper's near-worst-case heuristic:
//!   the max-weight matching of shortest-path lengths,
//! * [`synthetic::kodialam`] — the Kodialam et al. average-path-length
//!   maximizing TM used as a comparison point,
//! * [`synthetic::skewed`] — the non-uniform TM of Figs 10–12 (a fraction of
//!   flows get weight `w`),
//! * [`facebook`] — synthetic stand-ins for the two measured Facebook cluster
//!   TMs of Figs 13–14 (Hadoop-like TM-H, frontend-like TM-F),
//! * [`ops`] — shuffling, downsampling and mapping TMs onto topologies.

pub mod facebook;
pub mod matrix;
pub mod ops;
pub mod stencils;
pub mod synthetic;

pub use matrix::{Demand, TrafficMatrix};
