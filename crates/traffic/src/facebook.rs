//! Synthetic stand-ins for the measured Facebook cluster traffic matrices used
//! in §IV-B (Figs 13 and 14).
//!
//! Roy et al. (SIGCOMM 2015) published inter-rack traffic heatmaps for two
//! 64-rack clusters; the paper's authors recovered the weights from the
//! color-coded log-scale plots with an accuracy of one order of magnitude
//! (`10^i` buckets). The raw data is not public, so this module generates
//! matrices with the same structure:
//!
//! * **TM-H** (Hadoop cluster) — near-uniform all-to-all traffic: every rack
//!   pair's demand is drawn from a narrow log-range, so the matrix is almost
//!   flat.
//! * **TM-F** (frontend cluster) — strongly skewed: a minority of racks are
//!   cache racks generating/absorbing traffic two to three orders of magnitude
//!   heavier than the web racks; the rest are in between.
//!
//! Only relative weights matter (the throughput computation rescales the TM,
//! see §IV-B), and the experiments compare "sampled" vs "shuffled" placements,
//! which depends only on the skew structure — both properties are preserved by
//! the synthetic generator. This substitution is recorded in `DESIGN.md`.

use crate::matrix::{Demand, TrafficMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of racks in both measured clusters.
pub const FACEBOOK_RACKS: usize = 64;

/// Generates the Hadoop-cluster-like TM-H over `racks` racks: nearly uniform
/// weights drawn log-uniformly from one order of magnitude.
pub fn tm_h(racks: usize, seed: u64) -> TrafficMatrix {
    assert!(racks >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut demands = Vec::with_capacity(racks * racks);
    for src in 0..racks {
        for dst in 0..racks {
            if src == dst {
                continue;
            }
            // weights in [1e3, 1e4): one log-decade, near uniform.
            let exp = 3.0 + rng.gen::<f64>();
            demands.push(Demand {
                src,
                dst,
                amount: 10f64.powf(exp),
            });
        }
    }
    TrafficMatrix::new(racks, demands)
}

/// Rack roles in the frontend cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Cache,
    Web,
    Misc,
}

fn frontend_roles(racks: usize) -> Vec<Role> {
    // Roughly matching the published cluster: ~1/8 cache racks (heavy),
    // ~5/8 web racks (light), the rest miscellaneous.
    (0..racks)
        .map(|r| {
            if r % 8 == 0 {
                Role::Cache
            } else if r % 8 <= 5 {
                Role::Web
            } else {
                Role::Misc
            }
        })
        .collect()
}

/// Generates the frontend-cluster-like TM-F over `racks` racks: cache racks
/// exchange traffic two to three orders of magnitude heavier than web racks.
pub fn tm_f(racks: usize, seed: u64) -> TrafficMatrix {
    assert!(racks >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let roles = frontend_roles(racks);
    let mut demands = Vec::with_capacity(racks * racks);
    for src in 0..racks {
        for dst in 0..racks {
            if src == dst {
                continue;
            }
            // Base decade depends on the heavier endpoint's role.
            let decade = match (roles[src], roles[dst]) {
                (Role::Cache, Role::Cache) => 6.0,
                (Role::Cache, _) | (_, Role::Cache) => 5.0,
                (Role::Misc, _) | (_, Role::Misc) => 4.0,
                (Role::Web, Role::Web) => 3.0,
            };
            let exp = decade + rng.gen::<f64>();
            demands.push(Demand {
                src,
                dst,
                amount: 10f64.powf(exp),
            });
        }
    }
    TrafficMatrix::new(racks, demands)
}

/// Skew statistic used by tests and experiment logs: ratio of the mean demand
/// of the heaviest 10% of flows to the mean demand of the lightest 10%.
pub fn skew_ratio(tm: &TrafficMatrix) -> f64 {
    let mut amounts: Vec<f64> = tm.demands().iter().map(|d| d.amount).collect();
    amounts.sort_by(f64::total_cmp);
    let k = (amounts.len() / 10).max(1);
    let low: f64 = amounts.iter().take(k).sum::<f64>() / k as f64;
    let high: f64 = amounts.iter().rev().take(k).sum::<f64>() / k as f64;
    high / low
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tm_h_is_nearly_uniform() {
        let tm = tm_h(FACEBOOK_RACKS, 1);
        assert_eq!(tm.num_flows(), 64 * 63);
        assert!(
            skew_ratio(&tm) < 15.0,
            "TM-H should be near uniform: {}",
            skew_ratio(&tm)
        );
    }

    #[test]
    fn tm_f_is_strongly_skewed() {
        let tm = tm_f(FACEBOOK_RACKS, 1);
        assert_eq!(tm.num_flows(), 64 * 63);
        assert!(
            skew_ratio(&tm) > 100.0,
            "TM-F should be heavily skewed: {}",
            skew_ratio(&tm)
        );
    }

    #[test]
    fn tm_f_more_skewed_than_tm_h() {
        assert!(skew_ratio(&tm_f(64, 2)) > 5.0 * skew_ratio(&tm_h(64, 2)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(tm_f(32, 9).demands(), tm_f(32, 9).demands());
        assert_ne!(
            tm_f(32, 9).demands()[0].amount,
            tm_f(32, 10).demands()[0].amount
        );
    }

    #[test]
    fn smaller_rack_counts_supported() {
        let tm = tm_h(10, 3);
        assert_eq!(tm.num_flows(), 90);
    }
}
