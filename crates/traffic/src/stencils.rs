//! Classic HPC / data-center permutation traffic patterns ("stencils").
//!
//! The paper motivates the worst-case methodology by noting that known
//! worst-case patterns for specific topologies (Towles & Dally [43], Prisacari
//! et al. [34]) can be avoided by careful task placement, but a *mix* of
//! applications can still produce difficult TMs. These standard permutations
//! are the patterns that literature refers to; they are useful both as
//! realistic single-application workloads and as sanity checks for the
//! near-worst-case heuristic (none of them should be harder than the
//! longest-matching TM by more than the Theorem-2 factor of 2).
//!
//! All generators produce one flow per endpoint switch (demand = its server
//! count), indexing endpoints `0..k` in the order of [`endpoint_switches`].

use crate::matrix::{Demand, TrafficMatrix};

/// Switches that host at least one server, in increasing switch id order.
pub fn endpoint_switches(servers: &[usize]) -> Vec<usize> {
    (0..servers.len()).filter(|&u| servers[u] > 0).collect()
}

fn permutation_tm(servers: &[usize], map: impl Fn(usize, usize) -> usize) -> TrafficMatrix {
    let n = servers.len();
    let eps = endpoint_switches(servers);
    let k = eps.len();
    assert!(k > 1, "need at least two endpoint switches");
    let demands = eps.iter().enumerate().filter_map(|(i, &src)| {
        let j = map(i, k) % k;
        let dst = eps[j];
        (dst != src).then_some(Demand {
            src,
            dst,
            amount: servers[src] as f64,
        })
    });
    TrafficMatrix::new(n, demands)
}

/// Width of the bit-addressed endpoint prefix: `floor(log2 k)`. Bit-defined
/// permutations (complement, reversal, transpose) act on the first `2^bits`
/// endpoints; any endpoints beyond that power-of-two prefix stay idle, which
/// keeps the pattern a valid (partial) permutation for any endpoint count.
fn index_bits(k: usize) -> u32 {
    usize::BITS - 1 - k.leading_zeros()
}

/// Bit-complement permutation: endpoint `i` sends to `~i` (within the index
/// width). The classical worst case for meshes and tori.
pub fn bit_complement(servers: &[usize]) -> TrafficMatrix {
    permutation_tm(servers, |i, k| {
        let bits = index_bits(k);
        let mask = (1usize << bits) - 1;
        if i > mask {
            return i;
        }
        (!i) & mask
    })
}

/// Bit-reversal permutation: endpoint `i` sends to the endpoint whose index is
/// the bit-reversal of `i`. A standard adversarial pattern for butterflies.
pub fn bit_reversal(servers: &[usize]) -> TrafficMatrix {
    permutation_tm(servers, |i, k| {
        let bits = index_bits(k);
        if i >= (1usize << bits) {
            return i;
        }
        let mut r = 0usize;
        for b in 0..bits {
            if i & (1 << b) != 0 {
                r |= 1 << (bits - 1 - b);
            }
        }
        r
    })
}

/// Transpose permutation: the index is split into two halves that are swapped
/// (matrix-transpose communication).
pub fn transpose(servers: &[usize]) -> TrafficMatrix {
    permutation_tm(servers, |i, k| {
        let bits = index_bits(k);
        let half = bits / 2;
        if half == 0 || i >= (1usize << bits) {
            return i;
        }
        let low = i & ((1 << half) - 1);
        let high = i >> half;
        (low << (bits - half)) | high
    })
}

/// Tornado permutation: endpoint `i` sends to `(i + k/2 - 1) mod k` —
/// adversarial for rings and tori with minimal routing.
pub fn tornado(servers: &[usize]) -> TrafficMatrix {
    permutation_tm(servers, |i, k| (i + k / 2 - 1 + k) % k)
}

/// Neighbor shift: endpoint `i` sends to `(i + stride) mod k` — the nearest
/// neighbor exchange of stencil codes.
pub fn shift(servers: &[usize], stride: usize) -> TrafficMatrix {
    assert!(stride > 0, "stride must be positive");
    permutation_tm(servers, move |i, k| (i + stride) % k)
}

/// Hot-spot traffic: every endpoint sends to a single hot destination (the
/// endpoint with index `hot`), with the rest of their demand spread uniformly.
/// `hot_fraction` is the fraction of each endpoint's demand aimed at the hot
/// spot (the rest is all-to-all). The hot switch receives far more than its
/// hose allowance by design; normalize with
/// [`TrafficMatrix::normalized_to_hose`] before computing throughput.
pub fn hot_spot(servers: &[usize], hot: usize, hot_fraction: f64) -> TrafficMatrix {
    assert!((0.0..=1.0).contains(&hot_fraction));
    let n = servers.len();
    let eps = endpoint_switches(servers);
    let k = eps.len();
    assert!(k > 1);
    let hot_switch = eps[hot % k];
    let total: usize = servers.iter().sum();
    let mut demands = Vec::new();
    for &src in &eps {
        let budget = servers[src] as f64;
        if src != hot_switch && hot_fraction > 0.0 {
            demands.push(Demand {
                src,
                dst: hot_switch,
                amount: budget * hot_fraction,
            });
        }
        let uniform = budget * (1.0 - hot_fraction);
        if uniform > 0.0 {
            for &dst in &eps {
                if dst == src {
                    continue;
                }
                demands.push(Demand {
                    src,
                    dst,
                    amount: uniform * servers[dst] as f64 / total as f64,
                });
            }
        }
    }
    TrafficMatrix::new(n, demands)
}

/// All named single-permutation stencils, for sweep experiments.
pub fn all_permutation_stencils(servers: &[usize]) -> Vec<(&'static str, TrafficMatrix)> {
    vec![
        ("bit-complement", bit_complement(servers)),
        ("bit-reversal", bit_reversal(servers)),
        ("transpose", transpose(servers)),
        ("tornado", tornado(servers)),
        ("shift-1", shift(servers, 1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: usize) -> Vec<usize> {
        vec![1; n]
    }

    #[test]
    fn bit_patterns_on_non_power_of_two_stay_valid() {
        // 12 endpoints: only the first 8 take part in bit-defined patterns.
        let s = servers(12);
        for tm in [bit_complement(&s), bit_reversal(&s), transpose(&s)] {
            assert!(tm.is_hose_valid(&s, 1e-9));
            for d in tm.demands() {
                assert!(d.src < 8 && d.dst < 8);
            }
        }
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let s = servers(16);
        let tm = bit_complement(&s);
        assert_eq!(tm.num_flows(), 16);
        for d in tm.demands() {
            // complement of the complement is the original
            assert_eq!(tm.demand_between(d.dst, d.src), d.amount);
        }
        assert!(tm.is_hose_valid(&s, 1e-9));
    }

    #[test]
    fn bit_reversal_on_power_of_two() {
        let s = servers(8);
        let tm = bit_reversal(&s);
        // 0b001 -> 0b100: endpoint 1 sends to endpoint 4.
        assert_eq!(tm.demand_between(1, 4), 1.0);
        assert_eq!(tm.demand_between(3, 6), 1.0); // 0b011 -> 0b110
                                                  // palindromic indices (0, 2->0b010, 5, 7) have no self flow
        assert_eq!(tm.demand_between(2, 2), 0.0);
    }

    #[test]
    fn transpose_swaps_halves() {
        let s = servers(16);
        let tm = transpose(&s);
        // 4-bit index: i = hhll -> llhh. 0b0001 -> 0b0100.
        assert_eq!(tm.demand_between(1, 4), 1.0);
        assert_eq!(tm.demand_between(6, 9), 1.0); // 0b0110 -> 0b1001
    }

    #[test]
    fn tornado_shifts_by_almost_half() {
        let s = servers(10);
        let tm = tornado(&s);
        assert_eq!(tm.demand_between(0, 4), 1.0);
        assert_eq!(tm.demand_between(7, 1), 1.0);
        assert_eq!(tm.num_flows(), 10);
    }

    #[test]
    fn shift_wraps_around() {
        let s = servers(5);
        let tm = shift(&s, 2);
        assert_eq!(tm.demand_between(4, 1), 1.0);
        assert_eq!(tm.num_flows(), 5);
        assert!(tm.is_hose_valid(&s, 1e-9));
    }

    #[test]
    fn stencils_respect_server_counts_and_skip_empty_switches() {
        let s = vec![2, 0, 2, 0, 2, 0, 2, 0];
        let tm = shift(&s, 1);
        assert!(tm.is_hose_valid(&s, 1e-9));
        for d in tm.demands() {
            assert_eq!(d.amount, 2.0);
            assert_eq!(d.src % 2, 0);
            assert_eq!(d.dst % 2, 0);
        }
    }

    #[test]
    fn hot_spot_concentrates_traffic() {
        let s = servers(8);
        let tm = hot_spot(&s, 0, 0.8);
        let in_demand = tm.in_demand();
        let max_in = in_demand.iter().cloned().fold(0.0, f64::max);
        assert_eq!(in_demand[0], max_in);
        assert!(in_demand[0] > 3.0 * in_demand[1]);
        // Senders respect their budget; the receive side needs normalization.
        for (&o, &srv) in tm.out_demand().iter().zip(&s) {
            assert!(o <= srv as f64 + 1e-9);
        }
        let (norm, _) = tm.normalized_to_hose(&s);
        assert!(norm.is_hose_valid(&s, 1e-9));
    }

    #[test]
    fn hot_spot_zero_fraction_is_all_to_all_like() {
        let s = servers(6);
        let tm = hot_spot(&s, 2, 0.0);
        assert_eq!(tm.num_flows(), 30);
    }

    #[test]
    fn all_stencils_produce_valid_tms() {
        let s = servers(12);
        for (name, tm) in all_permutation_stencils(&s) {
            assert!(tm.num_flows() > 0, "{name}");
            assert!(tm.is_hose_valid(&s, 1e-9), "{name}");
        }
    }
}
