//! The [`TrafficMatrix`] type and hose-model utilities.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single traffic demand between two switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Source switch.
    pub src: usize,
    /// Destination switch.
    pub dst: usize,
    /// Requested amount (in server-units; a server sends at most 1 in total
    /// under the hose model).
    pub amount: f64,
}

/// A traffic matrix over the switches of a topology.
///
/// Stored sparsely as a demand list; demands with the same (src, dst) pair are
/// merged on construction. Self-demands (src == dst) are dropped because they
/// never traverse the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    demands: Vec<Demand>,
}

impl TrafficMatrix {
    /// Creates a TM over `n` switches from a demand list, merging duplicates
    /// and dropping self-demands and non-positive amounts.
    pub fn new(n: usize, demands: impl IntoIterator<Item = Demand>) -> Self {
        let mut merged: HashMap<(usize, usize), f64> = HashMap::new();
        for d in demands {
            assert!(d.src < n && d.dst < n, "demand endpoint out of range");
            if d.src == d.dst || d.amount <= 0.0 {
                continue;
            }
            *merged.entry((d.src, d.dst)).or_insert(0.0) += d.amount;
        }
        let mut demands: Vec<Demand> = merged
            .into_iter()
            .map(|((src, dst), amount)| Demand { src, dst, amount })
            .collect();
        demands.sort_by_key(|d| (d.src, d.dst));
        TrafficMatrix { n, demands }
    }

    /// An empty TM over `n` switches.
    pub fn empty(n: usize) -> Self {
        TrafficMatrix {
            n,
            demands: Vec::new(),
        }
    }

    /// Number of switches this TM is defined over.
    pub fn num_switches(&self) -> usize {
        self.n
    }

    /// The demand list (sorted by source then destination).
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Number of non-zero demands (flows).
    pub fn num_flows(&self) -> usize {
        self.demands.len()
    }

    /// Sum of all demands.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().map(|d| d.amount).sum()
    }

    /// A stable 64-bit content fingerprint (FNV-1a over the sorted demand
    /// list, endpoint ids and exact IEEE-754 amount bits). Two matrices share
    /// a fingerprint iff they are bit-identical, so sweep artifacts can
    /// record which exact TM a cached result was computed against.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.n as u64);
        for d in &self.demands {
            mix(d.src as u64);
            mix(d.dst as u64);
            mix(d.amount.to_bits());
        }
        hash
    }

    /// Total demand originating at each switch.
    pub fn out_demand(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        for d in &self.demands {
            out[d.src] += d.amount;
        }
        out
    }

    /// Total demand terminating at each switch.
    pub fn in_demand(&self) -> Vec<f64> {
        let mut inn = vec![0.0; self.n];
        for d in &self.demands {
            inn[d.dst] += d.amount;
        }
        inn
    }

    /// Returns a copy with every demand multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        assert!(factor > 0.0);
        TrafficMatrix {
            n: self.n,
            demands: self
                .demands
                .iter()
                .map(|d| Demand {
                    amount: d.amount * factor,
                    ..*d
                })
                .collect(),
        }
    }

    /// Checks whether the TM satisfies the hose model for the given per-switch
    /// server counts (each switch sends at most `servers[u]` and receives at
    /// most `servers[u]`, because each *server* sends/receives at most 1).
    pub fn is_hose_valid(&self, servers: &[usize], tolerance: f64) -> bool {
        assert_eq!(servers.len(), self.n);
        let out = self.out_demand();
        let inn = self.in_demand();
        (0..self.n).all(|u| {
            out[u] <= servers[u] as f64 + tolerance && inn[u] <= servers[u] as f64 + tolerance
        })
    }

    /// Scales the TM so that it exactly conforms to the hose model: after
    /// scaling, the most-loaded switch sends (or receives) exactly its server
    /// count. TMs that already fit are scaled *up* to saturation, which makes
    /// throughput values comparable across TM families (the paper normalizes
    /// all TMs to the hose model, §II-A).
    ///
    /// Returns the scaled TM and the factor applied. Panics if the TM is
    /// empty or no switch with demand has a server.
    pub fn normalized_to_hose(&self, servers: &[usize]) -> (TrafficMatrix, f64) {
        assert_eq!(servers.len(), self.n);
        assert!(!self.demands.is_empty(), "cannot normalize an empty TM");
        let out = self.out_demand();
        let inn = self.in_demand();
        let mut max_ratio: f64 = 0.0;
        for u in 0..self.n {
            let cap = servers[u] as f64;
            if out[u] > 0.0 {
                assert!(cap > 0.0, "switch {u} sends traffic but has no servers");
                max_ratio = max_ratio.max(out[u] / cap);
            }
            if inn[u] > 0.0 {
                assert!(cap > 0.0, "switch {u} receives traffic but has no servers");
                max_ratio = max_ratio.max(inn[u] / cap);
            }
        }
        assert!(max_ratio > 0.0);
        let factor = 1.0 / max_ratio;
        (self.scaled(factor), factor)
    }

    /// Looks up the demand between a pair of switches (0 if absent).
    pub fn demand_between(&self, src: usize, dst: usize) -> f64 {
        self.demands
            .iter()
            .find(|d| d.src == src && d.dst == dst)
            .map(|d| d.amount)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn merging_and_dropping() {
        let tm = TrafficMatrix::new(
            3,
            vec![d(0, 1, 1.0), d(0, 1, 2.0), d(1, 1, 5.0), d(2, 0, 0.0)],
        );
        assert_eq!(tm.num_flows(), 1);
        assert_eq!(tm.demand_between(0, 1), 3.0);
        assert_eq!(tm.total_demand(), 3.0);
    }

    #[test]
    fn out_and_in_demands() {
        let tm = TrafficMatrix::new(3, vec![d(0, 1, 1.0), d(0, 2, 2.0), d(1, 2, 3.0)]);
        assert_eq!(tm.out_demand(), vec![3.0, 3.0, 0.0]);
        assert_eq!(tm.in_demand(), vec![0.0, 1.0, 5.0]);
    }

    #[test]
    fn hose_validation() {
        let tm = TrafficMatrix::new(2, vec![d(0, 1, 2.0), d(1, 0, 1.0)]);
        assert!(tm.is_hose_valid(&[2, 2], 1e-9));
        assert!(!tm.is_hose_valid(&[1, 1], 1e-9));
    }

    #[test]
    fn hose_normalization_scales_to_saturation() {
        let tm = TrafficMatrix::new(3, vec![d(0, 1, 0.5), d(0, 2, 0.5), d(1, 0, 0.25)]);
        let (norm, factor) = tm.normalized_to_hose(&[1, 1, 1]);
        assert!((factor - 1.0).abs() < 1e-12);
        let tm_small = tm.scaled(0.1);
        let (norm2, factor2) = tm_small.normalized_to_hose(&[1, 1, 1]);
        assert!((factor2 - 10.0).abs() < 1e-9);
        assert!((norm2.total_demand() - norm.total_demand()).abs() < 1e-9);
        // After normalization the busiest switch is exactly saturated.
        let out = norm.out_demand();
        assert!((out[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn normalizing_empty_tm_panics() {
        TrafficMatrix::empty(3).normalized_to_hose(&[1, 1, 1]);
    }

    #[test]
    fn scaled_preserves_structure() {
        let tm = TrafficMatrix::new(3, vec![d(0, 1, 1.0), d(2, 1, 4.0)]);
        let s = tm.scaled(0.5);
        assert_eq!(s.num_flows(), 2);
        assert_eq!(s.demand_between(2, 1), 2.0);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = TrafficMatrix::new(3, vec![d(0, 1, 1.0), d(2, 1, 4.0)]);
        let b = TrafficMatrix::new(3, vec![d(2, 1, 4.0), d(0, 1, 1.0)]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "order-insensitive");
        let c = TrafficMatrix::new(3, vec![d(0, 1, 1.0), d(2, 1, 4.0 + 1e-12)]);
        assert_ne!(a.fingerprint(), c.fingerprint(), "amount-sensitive");
        let e = TrafficMatrix::new(4, vec![d(0, 1, 1.0), d(2, 1, 4.0)]);
        assert_ne!(a.fingerprint(), e.fingerprint(), "size-sensitive");
    }
}
