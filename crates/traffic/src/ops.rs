//! Operators on traffic matrices: shuffling rack placement, downsampling to a
//! smaller rack count, and mapping a rack-level TM onto a topology's endpoint
//! switches (§IV-B of the paper).

use crate::matrix::{Demand, TrafficMatrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Randomly permutes which switch plays which role in the TM (the paper's
/// "Shuffled" placement): demand `T(u, v)` becomes `T(p(u), p(v))` for a
/// uniform random permutation `p` of the switches that appear in the TM.
pub fn shuffle(tm: &TrafficMatrix, seed: u64) -> TrafficMatrix {
    let mut used: Vec<usize> = tm.demands().iter().flat_map(|d| [d.src, d.dst]).collect();
    used.sort_unstable();
    used.dedup();
    let mut shuffled = used.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let mut map = vec![usize::MAX; tm.num_switches()];
    for (&from, &to) in used.iter().zip(&shuffled) {
        map[from] = to;
    }
    let demands = tm.demands().iter().map(|d| Demand {
        src: map[d.src],
        dst: map[d.dst],
        amount: d.amount,
    });
    TrafficMatrix::new(tm.num_switches(), demands)
}

/// Downsamples a rack-level TM to `target_racks` racks by keeping the first
/// `target_racks` racks' sub-matrix (the paper downsamples the 64-rack
/// Facebook TMs "to the nearest valid size" when a topology cannot host 64
/// ToRs).
pub fn downsample(tm: &TrafficMatrix, target_racks: usize) -> TrafficMatrix {
    assert!(target_racks >= 2);
    assert!(target_racks <= tm.num_switches());
    let demands = tm
        .demands()
        .iter()
        .filter(|d| d.src < target_racks && d.dst < target_racks)
        .copied();
    TrafficMatrix::new(target_racks, demands)
}

/// Maps a rack-level TM (indexed `0..racks`) onto a topology: rack `i` is
/// placed on `endpoint_switches[i]`, and the result is a TM over
/// `num_switches` switches. Panics if there are fewer endpoint switches than
/// racks.
pub fn map_onto(
    tm: &TrafficMatrix,
    endpoint_switches: &[usize],
    num_switches: usize,
) -> TrafficMatrix {
    assert!(
        endpoint_switches.len() >= tm.num_switches(),
        "not enough endpoint switches ({}) for {} racks",
        endpoint_switches.len(),
        tm.num_switches()
    );
    let demands = tm.demands().iter().map(|d| Demand {
        src: endpoint_switches[d.src],
        dst: endpoint_switches[d.dst],
        amount: d.amount,
    });
    TrafficMatrix::new(num_switches, demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facebook::{skew_ratio, tm_f};
    use crate::matrix::Demand;

    fn d(src: usize, dst: usize, amount: f64) -> Demand {
        Demand { src, dst, amount }
    }

    #[test]
    fn shuffle_preserves_totals_and_flow_count() {
        let tm = tm_f(16, 1);
        let sh = shuffle(&tm, 5);
        assert_eq!(sh.num_flows(), tm.num_flows());
        assert!((sh.total_demand() - tm.total_demand()).abs() < 1e-6);
        assert!((skew_ratio(&sh) - skew_ratio(&tm)).abs() / skew_ratio(&tm) < 1e-9);
        // but the per-switch loads move around
        assert_ne!(sh.out_demand(), tm.out_demand());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let tm = tm_f(16, 1);
        assert_eq!(shuffle(&tm, 5).demands(), shuffle(&tm, 5).demands());
    }

    #[test]
    fn downsample_keeps_prefix() {
        let tm = TrafficMatrix::new(6, vec![d(0, 1, 1.0), d(4, 5, 2.0), d(1, 3, 3.0)]);
        let ds = downsample(&tm, 4);
        assert_eq!(ds.num_switches(), 4);
        assert_eq!(ds.num_flows(), 2);
        assert_eq!(ds.demand_between(0, 1), 1.0);
        assert_eq!(ds.demand_between(1, 3), 3.0);
    }

    #[test]
    fn map_onto_relabels_endpoints() {
        let tm = TrafficMatrix::new(3, vec![d(0, 1, 1.0), d(1, 2, 2.0)]);
        let mapped = map_onto(&tm, &[10, 20, 30, 40], 50);
        assert_eq!(mapped.num_switches(), 50);
        assert_eq!(mapped.demand_between(10, 20), 1.0);
        assert_eq!(mapped.demand_between(20, 30), 2.0);
    }

    #[test]
    #[should_panic]
    fn map_onto_with_too_few_switches_panics() {
        let tm = TrafficMatrix::new(3, vec![d(0, 1, 1.0)]);
        map_onto(&tm, &[1, 2], 10);
    }
}
