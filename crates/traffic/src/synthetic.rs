//! Synthetic traffic-matrix generators (§II-C, §IV-A of the paper).

use crate::matrix::{Demand, TrafficMatrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tb_graph::matching::{greedy_assignment, max_weight_assignment};
use tb_graph::shortest_path::apsp_unweighted;
use tb_graph::Graph;

/// Switches that host at least one server (traffic endpoints).
fn endpoint_switches(servers: &[usize]) -> Vec<usize> {
    (0..servers.len()).filter(|&u| servers[u] > 0).collect()
}

/// The all-to-all (complete) TM `T_{A2A}`: every server sends `1/S` to every
/// other server (`S` = total servers), aggregated to switch level as
/// `T(u, v) = s_u * s_v / S`. Each server sends slightly less than 1 unit in
/// total, so the TM is hose-feasible by construction.
pub fn all_to_all(servers: &[usize]) -> TrafficMatrix {
    let n = servers.len();
    let total: usize = servers.iter().sum();
    assert!(total > 1, "all-to-all needs at least two servers");
    let eps = endpoint_switches(servers);
    let mut demands = Vec::with_capacity(eps.len() * eps.len());
    for &u in &eps {
        for &v in &eps {
            if u == v {
                continue;
            }
            demands.push(Demand {
                src: u,
                dst: v,
                amount: servers[u] as f64 * servers[v] as f64 / total as f64,
            });
        }
    }
    TrafficMatrix::new(n, demands)
}

/// The random-matching TM with `servers_per_switch` flows per endpoint switch
/// ("Random Matching - k" in Fig 2): each of the `k` server slots on every
/// endpoint switch sends one unit of traffic to a server slot chosen by a
/// random perfect matching over slots. Self-demands (matching a slot to a slot
/// on the same switch) are retried a bounded number of times and then dropped,
/// matching the behaviour of the reference implementation.
pub fn random_matching(servers: &[usize], servers_per_switch: usize, seed: u64) -> TrafficMatrix {
    let n = servers.len();
    let eps = endpoint_switches(servers);
    assert!(
        eps.len() > 1,
        "random matching needs at least two endpoint switches"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut demands = Vec::new();
    for round in 0..servers_per_switch {
        // A random derangement-ish permutation of endpoint switches: shuffle
        // and repair fixed points where possible.
        let mut perm: Vec<usize> = eps.clone();
        perm.shuffle(&mut rng);
        for i in 0..eps.len() {
            if perm[i] == eps[i] {
                let j = (i + 1) % eps.len();
                perm.swap(i, j);
            }
        }
        for (i, &src) in eps.iter().enumerate() {
            let dst = perm[i];
            if src == dst {
                continue; // unlucky leftover fixed point; drop this flow
            }
            demands.push(Demand {
                src,
                dst,
                amount: 1.0,
            });
        }
        let _ = round;
    }
    TrafficMatrix::new(n, demands)
}

/// The longest-matching TM (§II-C): pair endpoint switches one-to-one so that
/// the total shortest-path length between matched pairs is maximized, then
/// have every server on a switch send one unit to the matched switch.
///
/// The maximization is the assignment problem on the matrix of shortest-path
/// hop counts (self-pairings are forbidden with a large negative weight).
/// `exact = false` uses the greedy 1/2-approximation, which is useful for very
/// large instances.
pub fn longest_matching(graph: &Graph, servers: &[usize], exact: bool) -> TrafficMatrix {
    let n = servers.len();
    assert_eq!(graph.num_nodes(), n);
    let eps = endpoint_switches(servers);
    assert!(
        eps.len() > 1,
        "longest matching needs at least two endpoint switches"
    );
    let dist = apsp_unweighted(graph);
    let m = eps.len();
    let mut weights = vec![vec![0.0; m]; m];
    for (i, &u) in eps.iter().enumerate() {
        for (j, &v) in eps.iter().enumerate() {
            weights[i][j] = if i == j {
                -1e9 // forbid self-pairing
            } else {
                dist[u][v] as f64
            };
        }
    }
    let assignment = if exact {
        max_weight_assignment(&weights)
    } else {
        greedy_assignment(&weights)
    };
    let mut demands = Vec::with_capacity(m);
    for (i, &j) in assignment.assignment.iter().enumerate() {
        if i == j {
            continue;
        }
        let (src, dst) = (eps[i], eps[j]);
        demands.push(Demand {
            src,
            dst,
            amount: servers[src] as f64,
        });
    }
    TrafficMatrix::new(n, demands)
}

/// The Kodialam et al. TM: each source spreads its traffic so as to maximize
/// the average flow path length, subject to the hose constraints. Implemented
/// as a farthest-destination-first water filling: sources repeatedly send one
/// server-unit of demand to the farthest destination that still has receive
/// capacity, producing a TM with many flows per source (unlike the longest
/// matching, which has exactly one).
pub fn kodialam(graph: &Graph, servers: &[usize]) -> TrafficMatrix {
    let n = servers.len();
    assert_eq!(graph.num_nodes(), n);
    let eps = endpoint_switches(servers);
    assert!(eps.len() > 1);
    let dist = apsp_unweighted(graph);
    let mut send_left: Vec<f64> = servers.iter().map(|&s| s as f64).collect();
    let mut recv_left: Vec<f64> = servers.iter().map(|&s| s as f64).collect();
    let mut demands: Vec<Demand> = Vec::new();

    // Destination preference per source: farthest first.
    let mut pref: Vec<Vec<usize>> = Vec::with_capacity(eps.len());
    for &u in &eps {
        let mut order: Vec<usize> = eps.iter().copied().filter(|&v| v != u).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(dist[u][v]));
        pref.push(order);
    }
    // Round-robin one unit at a time so late sources are not starved.
    let unit = 1.0f64;
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (i, &u) in eps.iter().enumerate() {
            if send_left[u] <= 1e-12 {
                continue;
            }
            // farthest destination with remaining receive capacity
            if let Some(&v) = pref[i].iter().find(|&&v| recv_left[v] > 1e-12) {
                let amount = unit.min(send_left[u]).min(recv_left[v]);
                demands.push(Demand {
                    src: u,
                    dst: v,
                    amount,
                });
                send_left[u] -= amount;
                recv_left[v] -= amount;
                progressed = true;
            }
        }
    }
    TrafficMatrix::new(n, demands)
}

/// The non-uniform ("skewed") TM of Figs 10–12: starting from `base`, a
/// `fraction` of the flows (chosen uniformly at random) get their demand
/// multiplied by `weight`; the rest keep weight 1.
pub fn skewed(base: &TrafficMatrix, fraction: f64, weight: f64, seed: u64) -> TrafficMatrix {
    assert!((0.0..=1.0).contains(&fraction));
    assert!(weight > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..base.num_flows()).collect();
    idx.shuffle(&mut rng);
    let num_large = ((base.num_flows() as f64) * fraction).round() as usize;
    let large: std::collections::HashSet<usize> = idx.into_iter().take(num_large).collect();
    let demands = base.demands().iter().enumerate().map(|(i, d)| Demand {
        src: d.src,
        dst: d.dst,
        amount: if large.contains(&i) {
            d.amount * weight
        } else {
            d.amount
        },
    });
    TrafficMatrix::new(base.num_switches(), demands)
}

/// A single uniform-random permutation TM over endpoint switches, each flow
/// carrying the full server count of its source (used by tests and as a
/// lighter-weight alternative to [`random_matching`]).
pub fn random_permutation(servers: &[usize], seed: u64) -> TrafficMatrix {
    let n = servers.len();
    let eps = endpoint_switches(servers);
    assert!(eps.len() > 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<usize> = eps.clone();
    perm.shuffle(&mut rng);
    for i in 0..eps.len() {
        if perm[i] == eps[i] {
            let j = (i + 1) % eps.len();
            perm.swap(i, j);
        }
    }
    let demands = eps.iter().enumerate().filter_map(|(i, &src)| {
        let dst = perm[i];
        (src != dst).then_some(Demand {
            src,
            dst,
            amount: servers[src] as f64,
        })
    });
    TrafficMatrix::new(n, demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_graph::Graph;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn all_to_all_is_hose_feasible_and_complete() {
        let servers = vec![2, 2, 2, 2];
        let tm = all_to_all(&servers);
        assert_eq!(tm.num_flows(), 12);
        assert!(tm.is_hose_valid(&servers, 1e-9));
        // Every switch sends s_u * (S - s_u) / S = 2 * 6 / 8 = 1.5.
        for &o in &tm.out_demand() {
            assert!((o - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn all_to_all_skips_serverless_switches() {
        let servers = vec![1, 0, 1, 0];
        let tm = all_to_all(&servers);
        assert_eq!(tm.num_flows(), 2);
        assert_eq!(tm.out_demand()[1], 0.0);
    }

    #[test]
    fn random_matching_has_k_flows_per_switch() {
        let servers = vec![3; 10];
        let tm = random_matching(&servers, 3, 7);
        assert!(tm.is_hose_valid(&servers, 1e-9));
        // Each switch sends at most 3 units (some flows may merge or drop).
        for &o in &tm.out_demand() {
            assert!(o <= 3.0 + 1e-9);
            assert!(o >= 1.0);
        }
    }

    #[test]
    fn random_matching_is_deterministic() {
        let servers = vec![1; 8];
        let a = random_matching(&servers, 1, 3);
        let b = random_matching(&servers, 1, 3);
        assert_eq!(a.demands(), b.demands());
    }

    #[test]
    fn longest_matching_on_ring_pairs_antipodes() {
        let g = ring(8);
        let servers = vec![1; 8];
        let tm = longest_matching(&g, &servers, true);
        assert_eq!(tm.num_flows(), 8);
        // On an even ring the farthest node is the antipode, 4 hops away.
        for d in tm.demands() {
            assert_eq!((d.src + 4) % 8, d.dst);
        }
        assert!(tm.is_hose_valid(&servers, 1e-9));
    }

    #[test]
    fn longest_matching_greedy_close_to_exact() {
        let g = ring(10);
        let servers = vec![1; 10];
        let exact = longest_matching(&g, &servers, true);
        let approx = longest_matching(&g, &servers, false);
        assert!(approx.total_demand() >= 0.5 * exact.total_demand());
    }

    #[test]
    fn kodialam_saturates_hose_and_has_many_flows() {
        let g = ring(8);
        let servers = vec![2; 8];
        let tm = kodialam(&g, &servers);
        assert!(tm.is_hose_valid(&servers, 1e-9));
        let lm = longest_matching(&g, &servers, true);
        assert!(tm.num_flows() >= lm.num_flows());
        // hose saturated: every switch sends exactly 2
        for &o in &tm.out_demand() {
            assert!((o - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_scales_selected_flows() {
        let g = ring(6);
        let servers = vec![1; 6];
        let base = longest_matching(&g, &servers, true);
        let sk = skewed(&base, 0.5, 10.0, 1);
        assert_eq!(sk.num_flows(), base.num_flows());
        let big = sk.demands().iter().filter(|d| d.amount > 5.0).count();
        assert_eq!(big, 3);
        let all_big = skewed(&base, 1.0, 10.0, 1);
        assert!((all_big.total_demand() - 10.0 * base.total_demand()).abs() < 1e-9);
    }

    #[test]
    fn random_permutation_valid() {
        let servers = vec![2; 9];
        let tm = random_permutation(&servers, 11);
        assert!(tm.is_hose_valid(&servers, 1e-9));
        assert!(tm.num_flows() >= 8);
    }
}
