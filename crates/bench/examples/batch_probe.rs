//! Batch-size sweep for the batch-parallel MWU schedule: runs the dense
//! 64-switch shapes at `batch_size` ∈ {serial, 8, 16, 32, 64} and prints
//! wall-clock, bounds and the `SolveStats` counters (phases, epochs, guard
//! state). This is the tuning loop behind `auto_batch_size` — rerun it when
//! touching the pricing-round scheduler or the merge, once at
//! `RAYON_NUM_THREADS=1` (the schedule's serial overhead) and once at the
//! machine's core count (the actual speedup). Set `TB_SOLVER_TRACE=1` for
//! per-solve tree counts.
//!
//! Run: `cargo run --release -p tb_bench --example batch_probe`

use std::time::Instant;
use tb_flow::{FleischerConfig, FleischerSolver, SolverWorkspace};
use tb_topology::hypercube::hypercube;
use tb_topology::jellyfish::jellyfish;
use tb_traffic::synthetic::all_to_all;

fn main() {
    let shapes: Vec<(&str, tb_topology::Topology)> = vec![
        ("hypercube64", hypercube(6, 1)),
        ("jellyfish64", jellyfish(64, 6, 1, 42)),
    ];
    println!(
        "pool: {} worker(s) (set RAYON_NUM_THREADS to change)",
        rayon::current_num_threads()
    );
    for (name, topo) in &shapes {
        let tm = all_to_all(&topo.servers);
        let base = FleischerConfig::fast().with_auto_aggregation(topo.graph.num_nodes());
        for batch in [None, Some(8), Some(16), Some(32), Some(64)] {
            let cfg = FleischerConfig {
                batch_size: batch,
                ..base
            };
            let solver = FleischerSolver::new(cfg);
            let mut ws = SolverWorkspace::new();
            let (b, stats) = solver.solve_with_stats(&topo.graph, &tm, &mut ws);
            let reps = 5;
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = solver.solve_with(&topo.graph, &tm, &mut ws);
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            println!(
                "{name:<12} batch={batch:?} {ms:8.3} ms  bounds=({:.5},{:.5}) stats={stats:?}",
                b.lower, b.upper
            );
        }
    }
}
