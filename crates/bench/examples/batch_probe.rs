//! Tuning sweep for the batched MWU schedulers: for each probe shape —
//! dense A2A, the skewed Facebook TM-F, and the sparse longest-matching TM
//! that motivated the work-stealing scheduler — runs the serial baseline,
//! PR 5's fixed pricing rounds, and the stealing scheduler across
//! steal-chunk sizes and bounded-staleness bounds, and prints wall-clock,
//! bounds, and the `SolveStats` counters including the per-round straggler
//! proxy (max/mean Dijkstra settle counts per tree build, and tasks per
//! tree — how much pricing work each cached tree amortizes).
//!
//! This is the tuning loop behind `auto_batch_size`/`auto_steal_chunk` —
//! rerun it when touching the schedulers or the merge, once at
//! `RAYON_NUM_THREADS=1` (the schedule's serial overhead) and once at the
//! machine's core count (the actual speedup). Set `TB_SOLVER_TRACE=1` for
//! per-solve tree counts.
//!
//! Run: `cargo run --release -p tb_bench --example batch_probe`

use std::time::Instant;
use tb_flow::fleischer::auto_batch_size;
use tb_flow::{FleischerConfig, FleischerSolver, PricingMode, SolverWorkspace};
use tb_topology::hypercube::hypercube;
use tb_topology::jellyfish::jellyfish;
use tb_traffic::synthetic::{all_to_all, longest_matching};
use tb_traffic::TrafficMatrix;

fn probe(
    name: &str,
    label: &str,
    graph: &tb_graph::Graph,
    tm: &TrafficMatrix,
    cfg: FleischerConfig,
) {
    let solver = FleischerSolver::new(cfg);
    let mut ws = SolverWorkspace::new();
    let (b, stats) = solver.solve_with_stats(graph, tm, &mut ws);
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = solver.solve_with(graph, tm, &mut ws);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let straggler = match stats.steal_settle_total.checked_div(stats.steal_trees) {
        Some(settle_mean) => format!(
            " settle(max/mean)={}/{} tasks/tree={:.1}",
            stats.steal_settle_max,
            settle_mean,
            stats.steal_tasks as f64 / stats.steal_trees as f64,
        ),
        None => String::new(),
    };
    println!(
        "{name:<16} {label:<24} {ms:8.3} ms  bounds=({:.5},{:.5}) phases={} epochs={} trees={}{straggler}{}",
        b.lower,
        b.upper,
        stats.phases,
        stats.epochs,
        stats.steal_trees,
        if stats.guard_triggered { " GUARD" } else { "" },
    );
}

fn main() {
    let h64 = hypercube(6, 1);
    let j64 = jellyfish(64, 6, 1, 42);
    let shapes: Vec<(&str, &tb_topology::Topology, TrafficMatrix)> = vec![
        ("hypercube64/a2a", &h64, all_to_all(&h64.servers)),
        ("jellyfish64/a2a", &j64, all_to_all(&j64.servers)),
        ("jellyfish64/tmf", &j64, tb_traffic::facebook::tm_f(64, 7)),
        (
            "jellyfish64/lm",
            &j64,
            longest_matching(&j64.graph, &j64.servers, true),
        ),
    ];
    println!(
        "pool: {} worker(s) (set RAYON_NUM_THREADS to change)",
        rayon::current_num_threads()
    );
    for (name, topo, tm) in &shapes {
        let n = topo.graph.num_nodes();
        let base = FleischerConfig::fast().with_auto_aggregation(n);
        let batch = Some(auto_batch_size(n));
        probe(name, "serial", &topo.graph, tm, base);
        probe(
            name,
            "rounds b=auto",
            &topo.graph,
            tm,
            FleischerConfig {
                batch_size: batch,
                pricing: PricingMode::Rounds,
                ..base
            },
        );
        for chunk in [8usize, 16, 32, 64] {
            probe(
                name,
                &format!("steal b=auto chunk={chunk}"),
                &topo.graph,
                tm,
                FleischerConfig {
                    batch_size: batch,
                    pricing: PricingMode::Stealing,
                    steal_chunk: Some(chunk),
                    ..base
                },
            );
        }
        for s in [2usize, 4, 8] {
            probe(
                name,
                &format!("steal b=auto async S={s}"),
                &topo.graph,
                tm,
                FleischerConfig {
                    batch_size: batch,
                    pricing: PricingMode::Stealing,
                    async_staleness: Some(s),
                    ..base
                },
            );
        }
        // The configuration `with_auto_batching` actually ships for this
        // shape when parallelism is available (skewed TMs get a smaller
        // batch plus the serial-tail drain); `solver_jobs = 2` clears the
        // serial-jobs screen so the probe shows the engaged pick.
        let auto = base.with_auto_batching(tm, 2);
        probe(
            name,
            &format!(
                "auto ({:?} b={:?}{})",
                auto.batch_gate,
                auto.batch_size,
                if auto.steal_serial_tail { " tail" } else { "" }
            ),
            &topo.graph,
            tm,
            auto,
        );
    }
}
