//! Tuning sweep for the batched MWU schedulers: for each probe shape —
//! dense A2A, the skewed Facebook TM-F, and the sparse longest-matching TM
//! that motivated the work-stealing scheduler — runs the serial baseline,
//! PR 5's fixed pricing rounds, and the stealing scheduler across
//! steal-chunk sizes and bounded-staleness bounds, and prints wall-clock,
//! bounds, and the `SolveStats` counters including the per-round straggler
//! proxy (max/mean Dijkstra settle counts per tree build, and tasks per
//! tree — how much pricing work each cached tree amortizes).
//!
//! This is the tuning loop behind `auto_batch_size`/`auto_steal_chunk` —
//! rerun it when touching the schedulers or the merge, once at
//! `RAYON_NUM_THREADS=1` (the schedule's serial overhead) and once at the
//! machine's core count (the actual speedup). Set `TB_SOLVER_TRACE=1` for
//! per-solve tree counts.
//!
//! The second half sweeps the **cross-instance warm-start knobs** (see
//! `tb_flow::WarmStart`): for each ladder family's skew-fraction chain it
//! runs the cold baseline and then warm chains across the projection rescale
//! rule (`Floor` vs `Mean`), the admissibility slack (`warm_guard_factor`),
//! and two chain lengths, printing per-solve phase counts and gate decisions
//! plus the aggregate saving. This is the measurement behind the shipped
//! defaults (`Mean`, slack = the batching guard factor) and behind the
//! honest per-family verdict in ROADMAP: FatTree transfers, the
//! expander-like families reset.
//!
//! Run: `cargo run --release -p tb_bench --example batch_probe`

use std::time::Instant;
use tb_flow::fleischer::auto_batch_size;
use tb_flow::{
    FleischerConfig, FleischerSolver, PricingMode, SolverWorkspace, WarmGate, WarmRescale,
    WarmStart,
};
use tb_topology::fattree::fat_tree;
use tb_topology::hypercube::hypercube;
use tb_topology::jellyfish::jellyfish;
use tb_traffic::synthetic::{all_to_all, longest_matching, skewed};
use tb_traffic::TrafficMatrix;

fn probe(
    name: &str,
    label: &str,
    graph: &tb_graph::Graph,
    tm: &TrafficMatrix,
    cfg: FleischerConfig,
) {
    let solver = FleischerSolver::new(cfg);
    let mut ws = SolverWorkspace::new();
    let (b, stats) = solver.solve_with_stats(graph, tm, &mut ws);
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = solver.solve_with(graph, tm, &mut ws);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let straggler = match stats.steal_settle_total.checked_div(stats.steal_trees) {
        Some(settle_mean) => format!(
            " settle(max/mean)={}/{} tasks/tree={:.1}",
            stats.steal_settle_max,
            settle_mean,
            stats.steal_tasks as f64 / stats.steal_trees as f64,
        ),
        None => String::new(),
    };
    println!(
        "{name:<16} {label:<24} {ms:8.3} ms  bounds=({:.5},{:.5}) phases={} epochs={} trees={}{straggler}{}",
        b.lower,
        b.upper,
        stats.phases,
        stats.epochs,
        stats.steal_trees,
        if stats.guard_triggered { " GUARD" } else { "" },
    );
}

fn main() {
    if std::env::var_os("TB_PROBE_BLEND").is_some() {
        warm_knob_sweep();
        return;
    }
    let h64 = hypercube(6, 1);
    let j64 = jellyfish(64, 6, 1, 42);
    let shapes: Vec<(&str, &tb_topology::Topology, TrafficMatrix)> = vec![
        ("hypercube64/a2a", &h64, all_to_all(&h64.servers)),
        ("jellyfish64/a2a", &j64, all_to_all(&j64.servers)),
        ("jellyfish64/tmf", &j64, tb_traffic::facebook::tm_f(64, 7)),
        (
            "jellyfish64/lm",
            &j64,
            longest_matching(&j64.graph, &j64.servers, true),
        ),
    ];
    println!(
        "pool: {} worker(s) (set RAYON_NUM_THREADS to change)",
        rayon::current_num_threads()
    );
    for (name, topo, tm) in &shapes {
        let n = topo.graph.num_nodes();
        let base = FleischerConfig::fast().with_auto_aggregation(n);
        let batch = Some(auto_batch_size(n));
        probe(name, "serial", &topo.graph, tm, base);
        probe(
            name,
            "rounds b=auto",
            &topo.graph,
            tm,
            FleischerConfig {
                batch_size: batch,
                pricing: PricingMode::Rounds,
                ..base
            },
        );
        for chunk in [8usize, 16, 32, 64] {
            probe(
                name,
                &format!("steal b=auto chunk={chunk}"),
                &topo.graph,
                tm,
                FleischerConfig {
                    batch_size: batch,
                    pricing: PricingMode::Stealing,
                    steal_chunk: Some(chunk),
                    ..base
                },
            );
        }
        for s in [2usize, 4, 8] {
            probe(
                name,
                &format!("steal b=auto async S={s}"),
                &topo.graph,
                tm,
                FleischerConfig {
                    batch_size: batch,
                    pricing: PricingMode::Stealing,
                    async_staleness: Some(s),
                    ..base
                },
            );
        }
        // The configuration `with_auto_batching` actually ships for this
        // shape when parallelism is available (skewed TMs get a smaller
        // batch plus the serial-tail drain); `solver_jobs = 2` clears the
        // serial-jobs screen so the probe shows the engaged pick.
        let auto = base.with_auto_batching(tm, 2);
        probe(
            name,
            &format!(
                "auto ({:?} b={:?}{})",
                auto.batch_gate,
                auto.batch_size,
                if auto.steal_serial_tail { " tail" } else { "" }
            ),
            &topo.graph,
            tm,
            auto,
        );
    }
    warm_knob_sweep();
}

/// One warm chain over `fractions` of the skew ladder on `topo`, with
/// break-on-reset (the sweep runner's policy): after the first gate reset
/// the remaining rungs run cold. Prints per-solve phases + gate and returns
/// (cold aggregate, warm aggregate) phase counts.
fn warm_chain_probe(
    name: &str,
    label: &str,
    topo: &tb_topology::Topology,
    fractions: &[f64],
    cfg: FleischerConfig,
) -> (usize, usize) {
    warm_chain_probe_policy(name, label, topo, fractions, cfg, true)
}

fn warm_chain_probe_policy(
    name: &str,
    label: &str,
    topo: &tb_topology::Topology,
    fractions: &[f64],
    cfg: FleischerConfig,
    break_on_reset: bool,
) -> (usize, usize) {
    warm_chain_probe_blend(name, label, topo, fractions, cfg, break_on_reset, 1.0)
}

#[allow(clippy::too_many_arguments)]
fn warm_chain_probe_blend(
    name: &str,
    label: &str,
    topo: &tb_topology::Topology,
    fractions: &[f64],
    cfg: FleischerConfig,
    break_on_reset: bool,
    beta: f64,
) -> (usize, usize) {
    let solver = FleischerSolver::new(cfg);
    let mut ws = SolverWorkspace::new();
    let base = longest_matching(&topo.graph, &topo.servers, true);
    let mut chain: Option<WarmStart> = None;
    let mut broken = false;
    let mut cold_total = 0usize;
    let mut warm_total = 0usize;
    let mut per_solve = String::new();
    for &f in fractions {
        let tm = skewed(&base, f, 10.0, 7);
        let (_, cold_stats, _) = solver.solve_warm_with_stats(&topo.graph, &tm, &mut ws, None);
        // Experimental blend: soften the donor shape geometrically toward
        // the flat init (`lens^beta`; caps are uniform here, so the flat
        // shape is constant) before seeding. `beta = 1` is the pure shape.
        let blended = chain.as_ref().map(|w| {
            let mut b = w.clone();
            if beta != 1.0 {
                for l in &mut b.lens {
                    *l = l.powf(beta);
                }
            }
            b
        });
        let seed = if broken { None } else { blended.as_ref() };
        let (_, stats, w) = solver.solve_warm_with_stats(&topo.graph, &tm, &mut ws, seed);
        if matches!(
            stats.warm_gate,
            WarmGate::ResetLagging | WarmGate::ResetQuality
        ) {
            broken = break_on_reset;
        }
        cold_total += cold_stats.phases;
        warm_total += stats.phases;
        per_solve.push_str(&format!(
            " {:.0}%:{}/{}{}",
            f * 100.0,
            stats.phases,
            cold_stats.phases,
            match stats.warm_gate {
                WarmGate::Unset => "",
                WarmGate::Engaged => "+",
                WarmGate::EngagedProjected => "~",
                WarmGate::RejectedShape => "!",
                WarmGate::ResetLagging => "L",
                WarmGate::ResetQuality => "Q",
            }
        ));
        chain = Some(w);
    }
    let save = 100.0 * (cold_total as f64 - warm_total as f64) / cold_total.max(1) as f64;
    println!(
        "{name:<16} {label:<28} phases warm/cold={warm_total}/{cold_total} save={save:+.0}% \
         [per-solve warm/cold+gate:{per_solve}]"
    );
    (cold_total, warm_total)
}

/// The warm-start knob sweep: rescale rule × admissibility slack × chain
/// length, per ladder family. Gate legend: `+` engaged, `~` engaged via
/// projection, `!` shape rejected, `L` reset lagging, `Q` reset quality.
fn warm_knob_sweep() {
    println!("\n--- warm-start knobs (per skew-fraction ladder family) ---");
    if std::env::var_os("TB_PROBE_BLEND").is_some() {
        let ft8 = fat_tree(8);
        let h64 = hypercube(6, 1);
        let j64 = jellyfish(64, 6, 1, 42);
        let fine: Vec<f64> = vec![0.01, 0.015, 0.02, 0.03, 0.05, 0.075, 0.10];
        for (name, topo) in [
            ("fattree_k8", &ft8),
            ("hypercube64", &h64),
            ("jellyfish64", &j64),
        ] {
            let base = FleischerConfig::fast().with_auto_aggregation(topo.graph.num_nodes());
            for beta in [1.0, 0.75, 0.5, 0.25] {
                warm_chain_probe_blend(
                    name,
                    &format!("fine blend b={beta}"),
                    topo,
                    &fine,
                    base,
                    true,
                    beta,
                );
            }
        }
        return;
    }
    let ft6 = fat_tree(6);
    let ft8 = fat_tree(8);
    let h64 = hypercube(6, 1);
    let h64x3 = hypercube(6, 3);
    let j64 = jellyfish(64, 6, 1, 42);
    let j64x3 = jellyfish(64, 6, 3, 42);
    let families: Vec<(&str, &tb_topology::Topology)> = vec![
        ("fattree_k6", &ft6),
        ("fattree_k8", &ft8),
        ("hypercube64", &h64),
        ("hypercube64x3", &h64x3),
        ("jellyfish64", &j64),
        ("jellyfish64x3", &j64x3),
    ];
    let full: Vec<f64> = vec![0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00];
    let short: Vec<f64> = vec![0.05, 0.25, 1.00];
    for (name, topo) in families {
        let base = FleischerConfig::fast().with_auto_aggregation(topo.graph.num_nodes());
        for rescale in [WarmRescale::Mean, WarmRescale::Floor] {
            for slack in [0.5f64, 1.0, 2.0] {
                let cfg = FleischerConfig {
                    warm_rescale: rescale,
                    warm_guard_factor: Some(slack),
                    ..base
                };
                warm_chain_probe(
                    name,
                    &format!("{rescale:?} slack={slack} len=7"),
                    topo,
                    &full,
                    cfg,
                );
            }
        }
        // Chain length and rung density at the shipped knobs (Mean,
        // guard-factor slack). The fine ladder keeps adjacent fractions
        // close — the regime the transfer actually wins in.
        warm_chain_probe(name, "shipped len=3", topo, &short, base);
        warm_chain_probe(name, "shipped len=7", topo, &full, base);
        let fine: Vec<f64> = vec![0.01, 0.015, 0.02, 0.03, 0.05, 0.075, 0.10];
        warm_chain_probe(name, "shipped fine len=7", topo, &fine, base);
        warm_chain_probe_policy(name, "fine len=7 nobreak", topo, &fine, base, false);
    }
    ladder_chain_sweep();
}

/// The other chain axis the sweep runner warms: a family's *scaling ladder*
/// (the Fig. 5/6 x-axis), rung index ascending, same TM spec per rung. The
/// donor and receiver are different-sized graphs, so the seed always goes
/// through the projection path (`EngagedProjected` or a shape reject).
fn ladder_chain_sweep() {
    use tb_topology::families::{Scale, ALL_FAMILIES};
    println!("\n--- warm-start across scaling-ladder rungs (Fig. 5/6 chains) ---");
    for family in ALL_FAMILIES {
        for (tm_name, a2a_tm) in [("lm", false), ("a2a", true)] {
            let solver_for = |topo: &tb_topology::Topology| {
                FleischerSolver::new(
                    FleischerConfig::fast().with_auto_aggregation(topo.graph.num_nodes()),
                )
            };
            let mut ws = SolverWorkspace::new();
            let mut chain: Option<WarmStart> = None;
            let mut broken = false;
            let (mut cold_total, mut warm_total) = (0usize, 0usize);
            let mut per_solve = String::new();
            for index in 0..family.ladder_len(Scale::Small) {
                let Some(topo) = family.ladder_instance(Scale::Small, 42, index) else {
                    continue;
                };
                let tm = if a2a_tm {
                    all_to_all(&topo.servers)
                } else {
                    longest_matching(&topo.graph, &topo.servers, true)
                };
                let solver = solver_for(&topo);
                let (_, cold_stats, _) =
                    solver.solve_warm_with_stats(&topo.graph, &tm, &mut ws, None);
                let seed = if broken { None } else { chain.as_ref() };
                let (_, stats, w) = solver.solve_warm_with_stats(&topo.graph, &tm, &mut ws, seed);
                if matches!(
                    stats.warm_gate,
                    WarmGate::ResetLagging | WarmGate::ResetQuality
                ) {
                    broken = true;
                }
                cold_total += cold_stats.phases;
                warm_total += stats.phases;
                per_solve.push_str(&format!(
                    " r{index}:{}/{}{}",
                    stats.phases,
                    cold_stats.phases,
                    match stats.warm_gate {
                        WarmGate::Unset => "",
                        WarmGate::Engaged => "+",
                        WarmGate::EngagedProjected => "~",
                        WarmGate::RejectedShape => "!",
                        WarmGate::ResetLagging => "L",
                        WarmGate::ResetQuality => "Q",
                    }
                ));
                chain = Some(w);
            }
            let save = 100.0 * (cold_total as f64 - warm_total as f64) / cold_total.max(1) as f64;
            println!(
                "{:<20} {tm_name:<4} phases warm/cold={warm_total}/{cold_total} save={save:+.0}% \
                 [per-rung warm/cold+gate:{per_solve}]",
                family.name(),
            );
        }
    }
}
