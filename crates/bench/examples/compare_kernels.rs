//! Side-by-side wall-clock comparison of the current Fleischer kernel against
//! the frozen pre-refactor copy (`tb_bench::legacy`) across topology × TM
//! shapes, for picking and sanity-checking the committed benchmark instances.
//! Every pair also asserts the bounds stayed equal-quality, so this doubles
//! as the kernel-equivalence check: `--quick` runs a reduced shape set (a few
//! seconds, including the skewed Facebook TM-F) and is wired into CI to catch
//! drift between the kernels on every PR. Each shape additionally runs the
//! **work-stealing** schedule in the exact configuration `with_auto_batching`
//! ships (i.e. what `--solver-jobs > 1` would use — skewed TMs get the
//! quarter-size batch plus the serial-tail drain) and asserts its bounds
//! against the serial path with the shared target-gap contract, so the
//! stealing trajectory's quality is CI-checked on every PR too.
//!
//! Every solve additionally emits its [`ThroughputCertificate`] and re-checks
//! it on the spot (`verify_certificate` re-derives feasibility and the dual
//! bound from the stored evidence, trusting nothing from the solver), so the
//! CI smoke also proves the certificates the sweep pipeline would store are
//! verifiable on exactly these shapes. With `--exact-spot-check`, one
//! longest-matching cell per 64-switch family is additionally certified
//! against the true LP optimum: a warm-started `ExactLpSolver` run whose
//! result the FPTAS bounds must bracket — the drill that catches a bug shared
//! by both FPTAS kernels.
//!
//! Run: `cargo run --release -p tb_bench --example compare_kernels [-- --quick]
//! [-- --exact-spot-check]` (the stealing column parallelizes its pricing
//! fan-out across `RAYON_NUM_THREADS` workers).

use std::time::Instant;
use tb_bench::{assert_quality_within_target, assert_same_quality, legacy};
use tb_flow::{
    verify_certificate, ExactLpSolver, FleischerConfig, FleischerSolver, SolverWorkspace,
};
use tb_graph::Graph;
use tb_topology::hypercube::hypercube;
use tb_topology::jellyfish::jellyfish;
use tb_topology::torus::torus;
use tb_traffic::synthetic::{all_to_all, longest_matching, random_permutation};
use tb_traffic::TrafficMatrix;

fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f(); // warmup
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn compare(name: &str, g: &Graph, tm: &TrafficMatrix, reps: usize) {
    // Mirror the eval plumbing: the aggregation threshold is auto-picked from
    // the graph size, so dense TMs exercise the aggregated tree kernel.
    let cfg = FleischerConfig::fast().with_auto_aggregation(g.num_nodes());
    let solver = FleischerSolver::new(cfg);
    let mut ws = SolverWorkspace::new();
    let outcome = solver.solve_outcome_with(g, tm, &mut ws);
    let new_b = outcome.bounds;
    // The certificate this solve would ship in a `--certify` sweep must
    // independently re-verify right here, at the same acceptable gap the
    // evaluation layer enforces (capture is trajectory-neutral, so asking
    // for the outcome changes no benched number).
    verify_certificate(
        g,
        tm,
        &outcome.certificate,
        (3.0 * cfg.epsilon).max(cfg.target_gap),
    )
    .unwrap_or_else(|e| panic!("{name}: FPTAS certificate failed verification: {e}"));
    let old_b = legacy::solve(&cfg, g, tm);
    assert_same_quality(name, &cfg, new_b, old_b);
    // The work-stealing schedule in the exact configuration the auto pick
    // ships (what --solver-jobs > 1 runs; skewed TMs get the quarter-size
    // batch plus the serial-tail drain): a different, equally valid
    // trajectory — quality held to the configured target gap against the
    // serial path. The auto-pick is TM-aware: degenerate shapes (one
    // dominant commodity, too few flows) stay serial and report no
    // stealing column.
    let bat_cfg = cfg.with_auto_batching(tm, 2);
    let batched = bat_cfg.batch_size.map(|bsz| {
        let bat_solver = FleischerSolver::new(bat_cfg);
        let mut ws_bat = SolverWorkspace::new();
        let bat_b = bat_solver.solve_with(g, tm, &mut ws_bat);
        assert_quality_within_target(&format!("{name}/stealing"), &cfg, bat_b, new_b);
        let t_bat = time(
            || {
                let _ = bat_solver.solve_with(g, tm, &mut ws_bat);
            },
            reps,
        );
        (bsz, t_bat)
    });
    let t_new = time(
        || {
            let _ = solver.solve_with(g, tm, &mut ws);
        },
        reps,
    );
    let t_old = time(
        || {
            let _ = legacy::solve(&cfg, g, tm);
        },
        reps,
    );
    let bat_col = match batched {
        Some((bsz, t_bat)) => format!("steal(B={bsz:2}) {t_bat:9.3} ms"),
        None => format!("steal     (serial: {:?})", bat_cfg.batch_gate),
    };
    println!(
        "{name:<28} new {t_new:9.3} ms  legacy {t_old:9.3} ms  speedup {:5.2}x  {bat_col}  bounds new=({:.4},{:.4}) old=({:.4},{:.4})",
        t_old / t_new,
        new_b.lower,
        new_b.upper,
        old_b.lower,
        old_b.upper,
    );
}

/// The `--exact-spot-check` drill: certify one sampled cell against the true
/// LP optimum. A precise FPTAS pass supplies the warm-start hint and the
/// bracket that must contain the exact value; the `ExactLpSolver` result is
/// then verified as a certificate in its own right at a near-exact gap. This
/// is the check `assert_same_quality` cannot do — both FPTAS kernels could
/// share a bug, the LP optimum is an independent ground truth.
fn exact_spot_check(name: &str, g: &Graph, tm: &TrafficMatrix) {
    let fptas = FleischerSolver::new(FleischerConfig::precise());
    let mut ws = SolverWorkspace::new();
    let outcome = fptas.solve_outcome_with(g, tm, &mut ws);
    let t0 = Instant::now();
    let (b, cert) = ExactLpSolver::new()
        .solve_certified_with_hint(g, tm, Some(&outcome.certificate))
        .unwrap_or_else(|e| panic!("{name}: exact certification failed: {e}"));
    let secs = t0.elapsed().as_secs_f64();
    verify_certificate(g, tm, &cert, 1e-6)
        .unwrap_or_else(|e| panic!("{name}: exact certificate failed verification: {e}"));
    assert!(
        outcome.bounds.lower <= b.lower + 1e-6 && outcome.bounds.upper >= b.lower - 1e-6,
        "{name}: FPTAS bracket [{}, {}] misses the LP optimum {}",
        outcome.bounds.lower,
        outcome.bounds.upper,
        b.lower
    );
    println!(
        "{name:<28} exact t* = {:.6}  certified in {secs:6.2}s  FPTAS bracket [{:.6}, {:.6}]",
        b.lower, outcome.bounds.lower, outcome.bounds.upper
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spot = std::env::args().any(|a| a == "--exact-spot-check");

    let h6 = hypercube(6, 1);
    compare(
        "hypercube64/lm",
        &h6.graph,
        &longest_matching(&h6.graph, &h6.servers, true),
        if quick { 2 } else { 5 },
    );
    compare("hypercube64/a2a", &h6.graph, &all_to_all(&h6.servers), 3);

    let j64 = jellyfish(64, 6, 1, 42);
    compare(
        "jellyfish64x6/a2a",
        &j64.graph,
        &all_to_all(&j64.servers),
        3,
    );
    // The skewed dense shape (Facebook frontend TM-F): its stealing column
    // runs the skew-tuned pick (quarter-size batch + serial-tail drain), so
    // CI's --quick run asserts the stealing-vs-serial quality contract on
    // exactly the shape the scheduler was built for.
    compare(
        "jellyfish64x6/tmf",
        &j64.graph,
        &tb_traffic::facebook::tm_f(64, 7),
        if quick { 2 } else { 3 },
    );

    // One longest-matching cell per 64-switch family — the shapes the
    // column-generation exact solver reaches in seconds. Opt-in: the LP is
    // orders slower than one FPTAS solve, so the drill is its own flag.
    if spot {
        exact_spot_check(
            "hypercube64/lm",
            &h6.graph,
            &longest_matching(&h6.graph, &h6.servers, true),
        );
        exact_spot_check(
            "jellyfish64x6/lm",
            &j64.graph,
            &longest_matching(&j64.graph, &j64.servers, true),
        );
    }

    if quick {
        return;
    }

    compare(
        "hypercube64/perm",
        &h6.graph,
        &random_permutation(&h6.servers, 3),
        5,
    );
    compare(
        "jellyfish64x6/lm",
        &j64.graph,
        &longest_matching(&j64.graph, &j64.servers, true),
        5,
    );
    compare(
        "jellyfish64x6/perm",
        &j64.graph,
        &random_permutation(&j64.servers, 3),
        5,
    );

    let j256 = jellyfish(256, 8, 1, 42);
    compare(
        "jellyfish256x8/lm",
        &j256.graph,
        &longest_matching(&j256.graph, &j256.servers, true),
        3,
    );
    compare(
        "jellyfish256x8/a2a",
        &j256.graph,
        &all_to_all(&j256.servers),
        2,
    );

    let t256 = torus(2, 16, 1);
    compare(
        "torus16x16/lm",
        &t256.graph,
        &longest_matching(&t256.graph, &t256.servers, true),
        3,
    );
    compare(
        "torus16x16/perm",
        &t256.graph,
        &random_permutation(&t256.servers, 3),
        3,
    );
}
