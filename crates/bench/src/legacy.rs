//! Frozen copy of the max-concurrent-flow kernel as it stood *before* the
//! CSR / reusable-workspace / early-exit refactor: nested `Vec<Vec<..>>`
//! adjacency, fresh `dist`/`parent`/heap allocations on every Dijkstra call,
//! a cloned `remaining` vector per source per phase, no destination-aware
//! SSSP pruning, and a sequential dual-bound sweep.
//!
//! This exists **only** so `solver_microbench` can report the refactor's
//! speedup against its true baseline; no library code uses it (the
//! workspace's single production Dijkstra is `tb_graph::sssp_csr`). Treat it
//! as a measurement artifact, not an implementation to extend.

use tb_flow::{FlowProblem, ThroughputBounds};
use tb_graph::Graph;
use tb_traffic::TrafficMatrix;

/// Pre-refactor per-call Dijkstra: allocates `dist`, `parent` and the heap
/// on every invocation and always settles the whole component.
fn shortest_path_tree(
    n: usize,
    out_arcs: &[Vec<(usize, usize)>],
    src: usize,
    arc_len: &[f64],
) -> (Vec<f64>, Vec<Option<(usize, usize)>>) {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: usize,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[src] = 0.0;
    heap.push(Entry {
        dist: 0.0,
        node: src,
    });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, aid) in &out_arcs[u] {
            let nd = d + arc_len[aid];
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some((u, aid));
                heap.push(Entry { dist: nd, node: v });
            }
        }
    }
    (dist, parent)
}

/// Pre-refactor solver loop (identical math; allocation-heavy layout).
pub fn solve(
    cfg: &tb_flow::FleischerConfig,
    graph: &Graph,
    tm: &TrafficMatrix,
) -> ThroughputBounds {
    let prob = FlowProblem::new(graph, tm);
    let n = prob.num_nodes();
    let m = prob.num_arcs();
    let eps = cfg.epsilon;
    if m == 0 {
        return ThroughputBounds::exact(0.0);
    }
    // Nested adjacency, as the seed stored it.
    let mut out_arcs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (aid, a) in prob.arcs().iter().enumerate() {
        out_arcs[a.from].push((a.to, aid));
    }

    // Reachability check (the seed ran this as a separate BFS sweep).
    for s in prob.sources() {
        let dist = tb_graph::bfs_distances(graph, s.src);
        if s.dests
            .iter()
            .any(|&(dst, _)| dist[dst] == tb_graph::shortest_path::UNREACHABLE)
        {
            return ThroughputBounds::exact(0.0);
        }
    }

    let scale = prob.volumetric_estimate(graph).max(1e-12);
    let demands: Vec<Vec<f64>> = prob
        .sources()
        .iter()
        .map(|s| s.dests.iter().map(|&(_, d)| d * scale).collect())
        .collect();

    let caps: Vec<f64> = prob.arcs().iter().map(|a| a.cap).collect();
    let delta = (m as f64 / (1.0 - eps)).powf(-1.0 / eps);
    let mut len: Vec<f64> = caps.iter().map(|&c| delta / c).collect();
    let mut d_l: f64 = len.iter().zip(&caps).map(|(l, c)| l * c).sum();

    let mut flow_arc = vec![0.0f64; m];
    let mut routed: Vec<Vec<f64>> = demands.iter().map(|d| vec![0.0; d.len()]).collect();
    let mut best_lower = 0.0f64;
    let mut best_upper = f64::INFINITY;
    let mut avail = caps.clone();
    let mut used = vec![0.0f64; m];
    let mut touched: Vec<usize> = Vec::with_capacity(m);

    let evaluate = |routed: &[Vec<f64>], flow_arc: &[f64], len: &[f64], d_l: f64| {
        let mut mu = f64::INFINITY;
        for (f, c) in flow_arc.iter().zip(&caps) {
            if *f > 1e-15 {
                mu = mu.min(c / f);
            }
        }
        let lower = if mu.is_finite() {
            let mut worst = f64::INFINITY;
            for (r, d) in routed.iter().zip(&demands) {
                for (rj, dj) in r.iter().zip(d) {
                    worst = worst.min(rj / dj);
                }
            }
            if worst.is_finite() {
                worst * mu
            } else {
                0.0
            }
        } else {
            0.0
        };
        let mut alpha = 0.0;
        for (si, s) in prob.sources().iter().enumerate() {
            let (dist, _) = shortest_path_tree(n, &out_arcs, s.src, len);
            for (j, &(dst, _)) in s.dests.iter().enumerate() {
                alpha += demands[si][j] * dist[dst];
            }
        }
        let upper = if alpha > 0.0 {
            d_l / alpha
        } else {
            f64::INFINITY
        };
        (lower, upper)
    };

    let mut phase = 0usize;
    'phases: while phase < cfg.max_phases && d_l < 1.0 {
        for (si, s) in prob.sources().iter().enumerate() {
            let mut remaining = demands[si].clone();
            loop {
                if d_l >= 1.0 {
                    break 'phases;
                }
                let (_dist, parent) = shortest_path_tree(n, &out_arcs, s.src, &len);
                touched.clear();
                let mut progressed = false;
                for (j, &(dst, _)) in s.dests.iter().enumerate() {
                    if remaining[j] <= 1e-15 {
                        continue;
                    }
                    let mut bottleneck = f64::INFINITY;
                    let mut cur = dst;
                    while cur != s.src {
                        let (p, aid) = parent[cur].expect("reachable by check above");
                        bottleneck = bottleneck.min(avail[aid]);
                        cur = p;
                    }
                    let f = remaining[j].min(bottleneck);
                    if f <= 1e-15 {
                        continue;
                    }
                    let mut cur = dst;
                    while cur != s.src {
                        let (p, aid) = parent[cur].unwrap();
                        if used[aid] == 0.0 {
                            touched.push(aid);
                        }
                        avail[aid] -= f;
                        used[aid] += f;
                        cur = p;
                    }
                    remaining[j] -= f;
                    routed[si][j] += f;
                    progressed = true;
                }
                for &aid in &touched {
                    let u = used[aid];
                    flow_arc[aid] += u;
                    let old = len[aid];
                    let new = old * (1.0 + eps * u / caps[aid]);
                    d_l += (new - old) * caps[aid];
                    len[aid] = new;
                    used[aid] = 0.0;
                    avail[aid] = caps[aid];
                }
                touched.clear();
                if !progressed || remaining.iter().all(|&r| r <= 1e-15) {
                    break;
                }
            }
        }
        phase += 1;
        if phase.is_multiple_of(cfg.check_interval) {
            let (lo, up) = evaluate(&routed, &flow_arc, &len, d_l);
            best_lower = best_lower.max(lo);
            best_upper = best_upper.min(up);
            if best_upper.is_finite() && (best_upper - best_lower) / best_upper <= cfg.target_gap {
                break 'phases;
            }
        }
    }
    let (lo, up) = evaluate(&routed, &flow_arc, &len, d_l);
    best_lower = best_lower.max(lo);
    best_upper = best_upper.min(up);
    if !best_upper.is_finite() {
        best_upper = best_lower;
    }
    ThroughputBounds {
        lower: best_lower * scale,
        upper: best_upper * scale,
    }
}
