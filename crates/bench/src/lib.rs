//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench target corresponds to one table or figure of the paper and runs
//! a scaled-down version of the corresponding experiment kernel (the full
//! regeneration lives in the `experiments` binaries); in addition,
//! `solver_microbench` tracks the raw performance of the throughput solvers.

pub mod legacy;

use tb_flow::{FleischerConfig, ThroughputBounds};
use topobench::EvalConfig;

/// The evaluation configuration used by all benches: the fast solver profile
/// with a fixed seed so runs are comparable.
pub fn bench_config() -> EvalConfig {
    let mut cfg = EvalConfig::fast();
    cfg.random_graph_iterations = 1;
    cfg.seed = 7;
    cfg
}

/// The kernel-equivalence contract, shared by `solver_microbench`, the
/// `compare_kernels` example (CI's kernel smoke step), and the workspace
/// regression tests so the three enforcers cannot drift apart: two solver
/// kernels (or the current kernel and `legacy`) run on the same instance must
/// report no worse a gap than each other (small slack for their differing —
/// equally valid — routing choices), overlapping brackets, and feasible
/// values within twice the configured target gap.
///
/// # Panics
/// Panics with `name` in the message when any of the three checks fails.
pub fn assert_same_quality(
    name: &str,
    cfg: &FleischerConfig,
    new: ThroughputBounds,
    old: ThroughputBounds,
) {
    assert!(
        new.gap() <= old.gap() + 0.01,
        "{name}: kernel lost bound quality: new {new:?} vs baseline {old:?}"
    );
    assert!(
        new.lower <= old.upper * (1.0 + 1e-9) && old.lower <= new.upper * (1.0 + 1e-9),
        "{name}: kernel brackets do not overlap: new {new:?} vs baseline {old:?}"
    );
    let rel = (new.lower - old.lower).abs() / old.lower.max(1e-12);
    assert!(
        rel <= 2.0 * cfg.target_gap,
        "{name}: feasible values diverged by {rel:.4}: new {new:?} vs baseline {old:?}"
    );
}

/// The quality contract between *different solver trajectories* (e.g. the
/// batch-parallel schedule vs the serial one): both are equally valid FPTAS
/// runs, so each only promises the *configured* gap — unlike
/// [`assert_same_quality`], the baseline happening to land an (essentially)
/// exact result must not tighten the requirement on the other trajectory.
/// Checks: the new gap is within the configured target (plus the baseline's
/// own slack), brackets overlap, and feasible values agree to twice the
/// target gap.
///
/// # Panics
/// Panics with `name` in the message when any check fails.
pub fn assert_quality_within_target(
    name: &str,
    cfg: &FleischerConfig,
    new: ThroughputBounds,
    old: ThroughputBounds,
) {
    assert!(
        new.gap() <= old.gap().max(cfg.target_gap) + 0.01,
        "{name}: trajectory exceeded the configured gap: new {new:?} vs baseline {old:?} \
         (target_gap {})",
        cfg.target_gap
    );
    assert!(
        new.lower <= old.upper * (1.0 + 1e-9) && old.lower <= new.upper * (1.0 + 1e-9),
        "{name}: trajectory brackets do not overlap: new {new:?} vs baseline {old:?}"
    );
    let rel = (new.lower - old.lower).abs() / old.lower.max(1e-12);
    assert!(
        rel <= 2.0 * cfg.target_gap,
        "{name}: feasible values diverged by {rel:.4}: new {new:?} vs baseline {old:?}"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn config_is_fast_profile() {
        let cfg = super::bench_config();
        assert_eq!(cfg.random_graph_iterations, 1);
        assert_eq!(cfg.seed, 7);
    }
}
