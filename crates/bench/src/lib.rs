//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench target corresponds to one table or figure of the paper and runs
//! a scaled-down version of the corresponding experiment kernel (the full
//! regeneration lives in the `experiments` binaries); in addition,
//! `solver_microbench` tracks the raw performance of the throughput solvers.

pub mod legacy;

use topobench::EvalConfig;

/// The evaluation configuration used by all benches: the fast solver profile
/// with a fixed seed so runs are comparable.
pub fn bench_config() -> EvalConfig {
    let mut cfg = EvalConfig::fast();
    cfg.random_graph_iterations = 1;
    cfg.seed = 7;
    cfg
}

#[cfg(test)]
mod tests {
    #[test]
    fn config_is_fast_profile() {
        let cfg = super::bench_config();
        assert_eq!(cfg.random_graph_iterations, 1);
        assert_eq!(cfg.seed, 7);
    }
}
