//! Bench for Figure 15: the Yuan et al. replication kernels — K-shortest-path
//! generation, the subflow-counting estimator, and path-restricted throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_flow::restricted::{k_shortest_path_sets, PathRestrictedSolver, SubflowCountingEstimator};
use tb_topology::fattree::fat_tree;
use topobench::TmSpec;

fn bench(c: &mut Criterion) {
    let topo = fat_tree(4);
    let tm = TmSpec::AllToAll.generate(&topo, 1);
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("k_shortest_paths", |b| {
        b.iter(|| k_shortest_path_sets(&topo.graph, &tm, 3))
    });
    let paths = k_shortest_path_sets(&topo.graph, &tm, 3);
    group.bench_function("subflow_counting", |b| {
        b.iter(|| SubflowCountingEstimator::new().estimate(&paths))
    });
    group.bench_function("path_restricted_lp", |b| {
        b.iter(|| PathRestrictedSolver::new().solve(&topo.graph, &paths))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
