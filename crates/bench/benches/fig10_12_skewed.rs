//! Bench for Figures 10-12: throughput under the skewed (non-uniform) longest
//! matching TM.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::{fattree::fat_tree, hypercube::hypercube};
use topobench::{evaluate_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig10_12");
    group.sample_size(10);
    for (name, topo) in [("hypercube", hypercube(5, 2)), ("fat_tree", fat_tree(6))] {
        let spec = TmSpec::SkewedLongestMatching {
            fraction: 0.1,
            weight: 10.0,
        };
        let tm = spec.generate(&topo, 1);
        group.bench_function(format!("skewed_lm_{name}"), |b| {
            b.iter(|| evaluate_throughput(&topo, &tm, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
