//! Bench for Figures 5/6 and Table I: the relative-throughput kernel
//! (topology vs same-equipment random graph).

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::families::Family;
use topobench::{relative_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig05_06");
    group.sample_size(10);
    for family in [Family::Hypercube, Family::FatTree, Family::Jellyfish] {
        let topo = family
            .instances(tb_topology::families::Scale::Small, 1)
            .remove(0);
        group.bench_function(format!("relative_lm_{}", family.name()), |b| {
            b.iter(|| relative_throughput(&topo, &TmSpec::LongestMatching, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
