//! Bench for the scenario engine itself: what the sweep layer adds on top of
//! a raw solver call, and how fast the cache-hit path is.
//!
//! * `direct_solve`     — the bare kernel: `evaluate_throughput` on a fixed
//!   instance (the engine-free baseline).
//! * `cell_compute`     — the same instance through `run_cells` with the
//!   cache disabled: spec rebuild + TM regeneration + dispatch overhead.
//! * `cache_hit`        — the same cell served from a warm on-disk cache:
//!   this is the per-cell cost a resumed `--full` ladder pays.

use criterion::{criterion_group, criterion_main, Criterion};
use topobench::sweep::{run_cells, CellSpec, SweepCell, SweepOptions, TopoSpec};
use topobench::{evaluate_throughput, TmSpec};

fn cell() -> SweepCell {
    SweepCell::new(
        "bench/hypercube/A2A",
        CellSpec::Throughput {
            topo: TopoSpec::Hypercube {
                dims: 5,
                servers: 1,
            },
            tm: TmSpec::AllToAll,
            tm_seed: 7,
        },
    )
}

fn opts(use_cache: bool, cache_dir: &std::path::Path) -> SweepOptions {
    let mut o = SweepOptions::new(false, 7);
    o.use_cache = use_cache;
    o.cache_dir = cache_dir.to_path_buf();
    o.jobs = Some(1); // measure the engine path, not pool dispatch
    o
}

fn bench(c: &mut Criterion) {
    let cache_dir = std::env::temp_dir().join(format!("tb-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);

    let topo = tb_topology::hypercube::hypercube(5, 1);
    let cfg = opts(false, &cache_dir).eval_config();
    let tm = TmSpec::AllToAll.generate(&topo, 7);
    group.bench_function("direct_solve", |b| {
        b.iter(|| evaluate_throughput(&topo, &tm, &cfg))
    });

    group.bench_function("cell_compute", |b| {
        b.iter(|| run_cells(&opts(false, &cache_dir), vec![cell()]))
    });

    // Warm the cache once, then measure pure hits.
    run_cells(&opts(true, &cache_dir), vec![cell()]);
    group.bench_function("cache_hit", |b| {
        b.iter(|| {
            let report = run_cells(&opts(true, &cache_dir), vec![cell()]);
            assert_eq!(report.cache_hits, 1);
            report
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
