//! Bench for Figure 4: the normalized TM comparison kernel on one
//! representative topology.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::families::Family;
use topobench::{evaluate_throughput, lower_bound, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let topo = Family::DCell.representative(1);
    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    group.bench_function("lower_bound", |b| b.iter(|| lower_bound(&topo, &cfg)));
    group.bench_function("normalized_lm", |b| {
        b.iter(|| {
            let tm = TmSpec::LongestMatching.generate(&topo, 1);
            evaluate_throughput(&topo, &tm, &cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
