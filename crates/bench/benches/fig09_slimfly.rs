//! Bench for Figure 9: Slim Fly construction and its LM relative throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_graph::shortest_path::average_path_length;
use tb_topology::slimfly::{canonical_servers_per_router, slim_fly};
use topobench::{relative_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    group.bench_function("construct_q13", |b| b.iter(|| slim_fly(13, 10)));
    let topo = slim_fly(5, canonical_servers_per_router(5));
    group.bench_function("path_length_q5", |b| {
        b.iter(|| average_path_length(&topo.graph))
    });
    group.bench_function("relative_lm_q5", |b| {
        b.iter(|| relative_throughput(&topo, &TmSpec::LongestMatching, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
