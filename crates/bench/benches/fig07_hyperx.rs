//! Bench for Figure 7: HyperX design search plus relative throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::hyperx::{build_design, design_search};
use topobench::{relative_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("design_search", |b| b.iter(|| design_search(24, 256, 0.4)));
    let topo = build_design(&design_search(24, 64, 0.4).unwrap());
    group.bench_function("relative_lm", |b| {
        b.iter(|| relative_throughput(&topo, &TmSpec::LongestMatching, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
