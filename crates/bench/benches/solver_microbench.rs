//! Microbenchmarks of the solver stack: the current Fleischer kernel against
//! a frozen copy of the pre-refactor kernel, the exact LP at the crossover
//! sizes, the Hungarian assignment used by the longest-matching TM, and the
//! same-equipment random-graph constructor.
//!
//! Run with `TB_BENCH_JSON=BENCH_solver.json cargo bench --bench
//! solver_microbench` to (re)generate the committed baseline file.
//!
//! The new-vs-legacy pairs cover the hot-path refactor's behavior space
//! (see `tb_bench::legacy` for what the baseline is):
//!
//! * sparse single-destination TMs (longest-matching, random-permutation),
//!   where the goal-directed early-exit SSSP prunes most of the graph —
//!   the big wins, up to >3x on the 256-switch jellyfish;
//! * the hypercube is the adversarial case for goal direction (every node
//!   lies on some antipodal geodesic, so nothing can be pruned without
//!   giving up exact shortest-path routing) — longest-matching there leans
//!   on the decrease-key SSSP heap alone;
//! * dense all-to-all (hypercube and jellyfish), where the aggregated
//!   bottom-up tree routing loads each tree arc once per iteration instead
//!   of walking every destination's path, on top of the shared kernel wins
//!   — the dense-TM shapes the PR 1 kernel left at parity.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::{assert_same_quality, legacy};
use tb_flow::{ExactLpSolver, FleischerConfig, FleischerSolver};
use tb_graph::matching::max_weight_assignment;
use tb_graph::shortest_path::apsp_unweighted;
use tb_graph::Graph;
use tb_topology::{hypercube::hypercube, jellyfish::jellyfish, jellyfish::same_equipment};
use tb_traffic::synthetic::{all_to_all, longest_matching, random_permutation};
use tb_traffic::TrafficMatrix;

fn versus_legacy(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    cfg: FleischerConfig,
    g: &Graph,
    tm: &TrafficMatrix,
) {
    let new = FleischerSolver::new(cfg).solve(g, tm);
    let old = legacy::solve(&cfg, g, tm);
    assert_same_quality(name, &cfg, new, old);
    group.bench_function(format!("fptas_{name}"), |b| {
        b.iter(|| FleischerSolver::new(cfg).solve(g, tm))
    });
    group.bench_function(format!("fptas_legacy_{name}"), |b| {
        b.iter(|| legacy::solve(&cfg, g, tm))
    });
}

fn bench(c: &mut Criterion) {
    let cfg_fast = FleischerConfig::fast();

    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    let small = hypercube(3, 1);
    let small_tm = longest_matching(&small.graph, &small.servers, true);
    group.bench_function("exact_lp_hypercube_d3", |b| {
        b.iter(|| ExactLpSolver::new().solve(&small.graph, &small_tm).unwrap())
    });
    group.bench_function("fptas_hypercube_d3", |b| {
        b.iter(|| FleischerSolver::new(FleischerConfig::default()).solve(&small.graph, &small_tm))
    });

    // 64-switch topologies: the hypercube (structured, geodesic-rich) and a
    // same-degree jellyfish (the paper's central random-graph object).
    let medium = hypercube(6, 1);
    let jelly = jellyfish(64, 6, 1, 42);
    versus_legacy(
        &mut group,
        "hypercube_d6_lm",
        cfg_fast,
        &medium.graph,
        &longest_matching(&medium.graph, &medium.servers, true),
    );
    versus_legacy(
        &mut group,
        "hypercube_d6_perm",
        cfg_fast,
        &medium.graph,
        &random_permutation(&medium.servers, 3),
    );
    versus_legacy(
        &mut group,
        "hypercube_d6_a2a",
        cfg_fast,
        &medium.graph,
        &all_to_all(&medium.servers),
    );
    versus_legacy(
        &mut group,
        "jellyfish64_lm",
        cfg_fast,
        &jelly.graph,
        &longest_matching(&jelly.graph, &jelly.servers, true),
    );
    versus_legacy(
        &mut group,
        "jellyfish64_a2a",
        cfg_fast,
        &jelly.graph,
        &all_to_all(&jelly.servers),
    );

    group.bench_function("apsp_hypercube_d6", |b| {
        b.iter(|| apsp_unweighted(&medium.graph))
    });

    let dist = apsp_unweighted(&medium.graph);
    let weights: Vec<Vec<f64>> = dist
        .iter()
        .map(|row| row.iter().map(|&d| d as f64).collect())
        .collect();
    group.bench_function("hungarian_64x64", |b| {
        b.iter(|| max_weight_assignment(&weights))
    });

    group.bench_function("same_equipment_hypercube_d6", |b| {
        b.iter(|| same_equipment(&medium, 5))
    });
    group.finish();

    // Paper-scale sparse instance: this is where the goal-directed kernel's
    // pruning compounds with the allocation-free workspace.
    let mut large = c.benchmark_group("solver_large");
    large.sample_size(3);
    let jelly256 = jellyfish(256, 8, 1, 42);
    versus_legacy(
        &mut large,
        "jellyfish256_lm",
        cfg_fast,
        &jelly256.graph,
        &longest_matching(&jelly256.graph, &jelly256.servers, true),
    );
    large.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
