//! Microbenchmarks of the solver stack: exact LP vs FPTAS at the crossover
//! sizes, the Hungarian assignment used by the longest-matching TM, and the
//! same-equipment random-graph constructor.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_flow::{ExactLpSolver, FleischerConfig, FleischerSolver};
use tb_graph::matching::max_weight_assignment;
use tb_graph::shortest_path::apsp_unweighted;
use tb_topology::{hypercube::hypercube, jellyfish::same_equipment};
use tb_traffic::synthetic::longest_matching;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    let small = hypercube(3, 1);
    let small_tm = longest_matching(&small.graph, &small.servers, true);
    group.bench_function("exact_lp_hypercube_d3", |b| {
        b.iter(|| ExactLpSolver::new().solve(&small.graph, &small_tm).unwrap())
    });
    group.bench_function("fptas_hypercube_d3", |b| {
        b.iter(|| FleischerSolver::new(FleischerConfig::default()).solve(&small.graph, &small_tm))
    });

    let medium = hypercube(6, 1);
    let medium_tm = longest_matching(&medium.graph, &medium.servers, true);
    group.bench_function("fptas_hypercube_d6_lm", |b| {
        b.iter(|| FleischerSolver::new(FleischerConfig::fast()).solve(&medium.graph, &medium_tm))
    });

    group.bench_function("apsp_hypercube_d6", |b| b.iter(|| apsp_unweighted(&medium.graph)));

    let dist = apsp_unweighted(&medium.graph);
    let weights: Vec<Vec<f64>> = dist
        .iter()
        .map(|row| row.iter().map(|&d| d as f64).collect())
        .collect();
    group.bench_function("hungarian_64x64", |b| {
        b.iter(|| max_weight_assignment(&weights))
    });

    group.bench_function("same_equipment_hypercube_d6", |b| {
        b.iter(|| same_equipment(&medium, 5))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
