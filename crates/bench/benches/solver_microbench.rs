//! Microbenchmarks of the solver stack: the current Fleischer kernel against
//! a frozen copy of the pre-refactor kernel, the exact LP at the crossover
//! sizes, the Hungarian assignment used by the longest-matching TM, and the
//! same-equipment random-graph constructor.
//!
//! Run with `TB_BENCH_JSON=BENCH_solver.json cargo bench --bench
//! solver_microbench` to (re)generate the committed baseline file.
//!
//! The new-vs-legacy pairs cover the hot-path refactor's behavior space
//! (see `tb_bench::legacy` for what the baseline is):
//!
//! * sparse single-destination TMs (longest-matching, random-permutation),
//!   where the goal-directed early-exit SSSP prunes most of the graph —
//!   the big wins, up to >3x on the 256-switch jellyfish;
//! * the hypercube is the adversarial case for goal direction (every node
//!   lies on some antipodal geodesic, so nothing can be pruned without
//!   giving up exact shortest-path routing) — longest-matching there leans
//!   on the decrease-key SSSP heap alone;
//! * dense all-to-all (hypercube and jellyfish), where the aggregated
//!   bottom-up tree routing loads each tree arc once per iteration instead
//!   of walking every destination's path, on top of the shared kernel wins
//!   — the dense-TM shapes the PR 1 kernel left at parity;
//! * the **batch-parallel MWU schedules**: `fptas_batch_*` pins PR 5's
//!   fixed pricing rounds (the measured baseline), `fptas_steal_*` runs the
//!   work-stealing scheduler in the exact skew-tuned configuration
//!   `with_auto_batching` ships (what `--solver-jobs > 1` uses). The
//!   per-phase pricing fans out across `RAYON_NUM_THREADS` workers, so
//!   these entries measure the solver-level parallelism on this machine (on
//!   a single core they show the schedule's serial overhead instead —
//!   record which when comparing);
//! * the Facebook frontend fixed TM (`tm_f`, the Figs 13–14 workload) on a
//!   64-switch jellyfish — the skewed dense shape the sweeps spend real time
//!   on;
//! * the **cross-instance warm-start chains**: `fptas_warm_chain_*` runs a
//!   whole skew-fraction ladder on one graph with each solve seeded from the
//!   previous rung's `WarmStart` (the sweep runner's `--warm` policy,
//!   break-on-reset included), `fptas_cold_chain_*` the identical ladder
//!   cold. Criterion interleaves the paired entries, so the committed
//!   min-of-10 comparison sees the same machine state. `rel_warm_*` /
//!   `rel_cold_*` do the same for one relative-throughput cell's
//!   sample path (absolute solve + serially chained same-equipment
//!   samples vs the cold parallel fan-out).

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::{assert_quality_within_target, assert_same_quality, legacy};
use tb_flow::fleischer::auto_batch_size;
use tb_flow::{
    ExactLpSolver, FleischerConfig, FleischerSolver, PricingMode, SolverWorkspace, WarmGate,
    WarmStart,
};
use tb_graph::matching::max_weight_assignment;
use tb_graph::shortest_path::apsp_unweighted;
use tb_graph::Graph;
use tb_topology::{
    fattree::fat_tree, hypercube::hypercube, jellyfish::jellyfish, jellyfish::same_equipment,
    Topology,
};
use tb_traffic::facebook::tm_f;
use tb_traffic::synthetic::{all_to_all, longest_matching, random_permutation, skewed};
use tb_traffic::TrafficMatrix;
use topobench::{relative_throughput, EvalConfig, TmSpec};

/// The fine skew-fraction ladder the warm-chain entries run: adjacent rungs
/// are the close problem pairs a dense parameter sweep produces — the regime
/// the cross-instance transfer is for (coarse rung spacing measured roughly
/// break-even; see ROADMAP).
const WARM_LADDER: [f64; 7] = [0.01, 0.015, 0.02, 0.03, 0.05, 0.075, 0.10];

/// Benches one whole skew-fraction ladder warm (each solve seeded from the
/// previous rung's artifact, the runner's break-on-reset policy) against the
/// identical ladder cold, asserting every warm rung against its cold solve
/// with the shared target-gap contract first.
fn warm_chain(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    cfg: FleischerConfig,
    topo: &Topology,
) {
    let solver = FleischerSolver::new(cfg);
    let base = longest_matching(&topo.graph, &topo.servers, true);
    let tms: Vec<TrafficMatrix> = WARM_LADDER
        .iter()
        .map(|&f| skewed(&base, f, 10.0, 7))
        .collect();
    let run_warm = |ws: &mut SolverWorkspace| {
        let mut chain: Option<WarmStart> = None;
        let mut broken = false;
        let mut acc = 0.0f64;
        for tm in &tms {
            let seed = if broken { None } else { chain.as_ref() };
            let (b, stats, w) = solver.solve_warm_with_stats(&topo.graph, tm, ws, seed);
            if matches!(
                stats.warm_gate,
                WarmGate::ResetLagging | WarmGate::ResetQuality
            ) {
                broken = true;
            }
            chain = Some(w);
            acc += b.lower;
        }
        acc
    };
    {
        let mut ws = SolverWorkspace::new();
        let mut chain: Option<WarmStart> = None;
        let mut broken = false;
        for (i, tm) in tms.iter().enumerate() {
            let (cold, _, _) = solver.solve_warm_with_stats(&topo.graph, tm, &mut ws, None);
            let seed = if broken { None } else { chain.as_ref() };
            let (warm, stats, w) = solver.solve_warm_with_stats(&topo.graph, tm, &mut ws, seed);
            if matches!(
                stats.warm_gate,
                WarmGate::ResetLagging | WarmGate::ResetQuality
            ) {
                broken = true;
            }
            assert_quality_within_target(&format!("{name}/warm_rung{i}"), &cfg, warm, cold);
            chain = Some(w);
        }
    }
    group.bench_function(format!("fptas_warm_chain_{name}"), |b| {
        b.iter(|| run_warm(&mut SolverWorkspace::new()))
    });
    group.bench_function(format!("fptas_cold_chain_{name}"), |b| {
        b.iter(|| {
            let mut ws = SolverWorkspace::new();
            tms.iter()
                .map(|tm| solver.solve_with(&topo.graph, tm, &mut ws).lower)
                .sum::<f64>()
        })
    });
}

fn versus_legacy(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    cfg: FleischerConfig,
    g: &Graph,
    tm: &TrafficMatrix,
) {
    let new = FleischerSolver::new(cfg).solve(g, tm);
    let old = legacy::solve(&cfg, g, tm);
    assert_same_quality(name, &cfg, new, old);
    group.bench_function(format!("fptas_{name}"), |b| {
        b.iter(|| FleischerSolver::new(cfg).solve(g, tm))
    });
    group.bench_function(format!("fptas_legacy_{name}"), |b| {
        b.iter(|| legacy::solve(&cfg, g, tm))
    });
}

/// Benches the PR 5 fixed-rounds schedule at the auto-picked batch size
/// (pinned to [`PricingMode::Rounds`] so these entries stay the measured
/// baseline the stealing scheduler is judged against), asserting its bounds
/// against the serial trajectory with the shared target-gap contract first.
fn batched(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    cfg: FleischerConfig,
    g: &Graph,
    tm: &TrafficMatrix,
) {
    let bat_cfg = FleischerConfig {
        batch_size: Some(auto_batch_size(g.num_nodes())),
        pricing: PricingMode::Rounds,
        ..cfg
    };
    let serial = FleischerSolver::new(cfg).solve(g, tm);
    let bat = FleischerSolver::new(bat_cfg).solve(g, tm);
    assert_quality_within_target(&format!("{name}/batched"), &cfg, bat, serial);
    group.bench_function(format!("fptas_batch_{name}"), |b| {
        b.iter(|| FleischerSolver::new(bat_cfg).solve(g, tm))
    });
}

/// Benches the work-stealing schedule in the exact configuration
/// `with_auto_batching` ships for the instance (skewed TMs get the
/// quarter-size batch plus the serial-tail drain), with the same quality
/// gate. These are the PR 7 acceptance entries: at one worker they must sit
/// near serial (TM-F <= 1.15x, sparse LM <= 1.25x); at more workers they
/// measure the solver-level speedup.
fn stealing(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    cfg: FleischerConfig,
    g: &Graph,
    tm: &TrafficMatrix,
) {
    let steal_cfg = cfg.with_auto_batching(tm, 2);
    assert!(
        steal_cfg.batch_size.is_some(),
        "{name}: auto-batching gated off ({:?}) — pick a shape that engages",
        steal_cfg.batch_gate
    );
    let serial = FleischerSolver::new(cfg).solve(g, tm);
    let st = FleischerSolver::new(steal_cfg).solve(g, tm);
    assert_quality_within_target(&format!("{name}/stealing"), &cfg, st, serial);
    group.bench_function(format!("fptas_steal_{name}"), |b| {
        b.iter(|| FleischerSolver::new(steal_cfg).solve(g, tm))
    });
}

fn bench(c: &mut Criterion) {
    let cfg_fast = FleischerConfig::fast();

    let mut group = c.benchmark_group("solver");
    group.sample_size(10);

    let small = hypercube(3, 1);
    let small_tm = longest_matching(&small.graph, &small.servers, true);
    group.bench_function("exact_lp_hypercube_d3", |b| {
        b.iter(|| ExactLpSolver::new().solve(&small.graph, &small_tm).unwrap())
    });
    group.bench_function("fptas_hypercube_d3", |b| {
        b.iter(|| FleischerSolver::new(FleischerConfig::default()).solve(&small.graph, &small_tm))
    });

    // 64-switch topologies: the hypercube (structured, geodesic-rich) and a
    // same-degree jellyfish (the paper's central random-graph object).
    let medium = hypercube(6, 1);
    let jelly = jellyfish(64, 6, 1, 42);
    versus_legacy(
        &mut group,
        "hypercube_d6_lm",
        cfg_fast,
        &medium.graph,
        &longest_matching(&medium.graph, &medium.servers, true),
    );
    versus_legacy(
        &mut group,
        "hypercube_d6_perm",
        cfg_fast,
        &medium.graph,
        &random_permutation(&medium.servers, 3),
    );
    versus_legacy(
        &mut group,
        "hypercube_d6_a2a",
        cfg_fast,
        &medium.graph,
        &all_to_all(&medium.servers),
    );
    versus_legacy(
        &mut group,
        "jellyfish64_lm",
        cfg_fast,
        &jelly.graph,
        &longest_matching(&jelly.graph, &jelly.servers, true),
    );
    versus_legacy(
        &mut group,
        "jellyfish64_a2a",
        cfg_fast,
        &jelly.graph,
        &all_to_all(&jelly.servers),
    );

    // Batch-parallel MWU entries (dense shapes + the Facebook frontend TM);
    // the matching serial entries above / below are the baselines.
    let cfg_h6 = cfg_fast.with_auto_aggregation(medium.graph.num_nodes());
    let cfg_j64 = cfg_fast.with_auto_aggregation(jelly.graph.num_nodes());
    batched(
        &mut group,
        "hypercube_d6_a2a",
        cfg_h6,
        &medium.graph,
        &all_to_all(&medium.servers),
    );
    batched(
        &mut group,
        "jellyfish64_a2a",
        cfg_j64,
        &jelly.graph,
        &all_to_all(&jelly.servers),
    );
    let fb = tm_f(64, 7);
    versus_legacy(
        &mut group,
        "facebook_tmf_jellyfish64",
        cfg_fast,
        &jelly.graph,
        &fb,
    );
    batched(
        &mut group,
        "facebook_tmf_jellyfish64",
        cfg_j64,
        &jelly.graph,
        &fb,
    );
    // Work-stealing acceptance entries: the skewed dense shape (TM-F, where
    // the fixed rounds measured ~2.3x serial) and the sparse matching shape
    // (where they measured ~30x) — the two losses the stealing scheduler
    // was built to close.
    stealing(
        &mut group,
        "facebook_tmf_jellyfish64",
        cfg_j64,
        &jelly.graph,
        &fb,
    );
    stealing(
        &mut group,
        "jellyfish64_lm",
        cfg_j64,
        &jelly.graph,
        &longest_matching(&jelly.graph, &jelly.servers, true),
    );

    // Cross-instance warm-start chains on the fine skew-fraction ladder:
    // the FatTree rungs are the measured transfer winners, the hypercube
    // wins only where adjacent rungs are near-duplicates, the jellyfish is
    // the honest small win — same knobs and break-on-reset policy the sweep
    // runner ships under `--warm`.
    let ft6 = fat_tree(6);
    let ft8 = fat_tree(8);
    warm_chain(
        &mut group,
        "fattree_k6",
        cfg_fast.with_auto_aggregation(ft6.graph.num_nodes()),
        &ft6,
    );
    warm_chain(
        &mut group,
        "fattree_k8",
        cfg_fast.with_auto_aggregation(ft8.graph.num_nodes()),
        &ft8,
    );
    warm_chain(&mut group, "hypercube_d6", cfg_h6, &medium);
    warm_chain(&mut group, "jellyfish64", cfg_j64, &jelly);

    // One relative-throughput cell's sample path, warm vs cold: the warm
    // form seeds the absolute solve's artifact through the same-equipment
    // samples serially; the cold form is the parallel fan-out. Same seeds,
    // same instances — the means must agree within the solver tolerances.
    let rel_cold_cfg = EvalConfig::fast();
    let rel_warm_cfg = EvalConfig {
        warm: true,
        ..EvalConfig::fast()
    };
    let rel_cold = relative_throughput(&jelly, &TmSpec::LongestMatching, &rel_cold_cfg);
    let rel_warm = relative_throughput(&jelly, &TmSpec::LongestMatching, &rel_warm_cfg);
    let rel_tol = 4.0 * rel_cold_cfg.solver.target_gap;
    assert!(
        (rel_warm.relative.mean - rel_cold.relative.mean).abs()
            <= rel_tol * rel_cold.relative.mean.abs(),
        "warm relative-throughput diverged: warm={} cold={}",
        rel_warm.relative.mean,
        rel_cold.relative.mean,
    );
    group.bench_function("rel_warm_jellyfish64_lm", |b| {
        b.iter(|| relative_throughput(&jelly, &TmSpec::LongestMatching, &rel_warm_cfg))
    });
    group.bench_function("rel_cold_jellyfish64_lm", |b| {
        b.iter(|| relative_throughput(&jelly, &TmSpec::LongestMatching, &rel_cold_cfg))
    });

    group.bench_function("apsp_hypercube_d6", |b| {
        b.iter(|| apsp_unweighted(&medium.graph))
    });

    let dist = apsp_unweighted(&medium.graph);
    let weights: Vec<Vec<f64>> = dist
        .iter()
        .map(|row| row.iter().map(|&d| d as f64).collect())
        .collect();
    group.bench_function("hungarian_64x64", |b| {
        b.iter(|| max_weight_assignment(&weights))
    });

    group.bench_function("same_equipment_hypercube_d6", |b| {
        b.iter(|| same_equipment(&medium, 5))
    });
    group.finish();

    // Paper-scale sparse instance: this is where the goal-directed kernel's
    // pruning compounds with the allocation-free workspace.
    let mut large = c.benchmark_group("solver_large");
    large.sample_size(3);
    let jelly256 = jellyfish(256, 8, 1, 42);
    versus_legacy(
        &mut large,
        "jellyfish256_lm",
        cfg_fast,
        &jelly256.graph,
        &longest_matching(&jelly256.graph, &jelly256.servers, true),
    );
    // The paper-scale dense shape for the batch-parallel schedule.
    let tm256_a2a = all_to_all(&jelly256.servers);
    versus_legacy(
        &mut large,
        "jellyfish256_a2a",
        cfg_fast,
        &jelly256.graph,
        &tm256_a2a,
    );
    batched(
        &mut large,
        "jellyfish256_a2a",
        cfg_fast.with_auto_aggregation(jelly256.graph.num_nodes()),
        &jelly256.graph,
        &tm256_a2a,
    );
    large.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
