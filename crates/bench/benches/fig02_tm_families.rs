//! Bench for Figure 2: throughput of the TM families on a hypercube.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::hypercube::hypercube;
use topobench::{evaluate_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let topo = hypercube(5, 1);
    let mut group = c.benchmark_group("fig02");
    group.sample_size(10);
    for spec in [
        TmSpec::AllToAll,
        TmSpec::RandomMatching {
            servers_per_switch: 1,
        },
        TmSpec::LongestMatching,
        TmSpec::Kodialam,
    ] {
        let tm = spec.generate(&topo, 1);
        group.bench_function(spec.label(), |b| {
            b.iter(|| evaluate_throughput(&topo, &tm, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
