//! Bench for Figure 8: Long Hop construction and its LM relative throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::longhop::long_hop;
use topobench::{relative_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    group.bench_function("construct_dim6", |b| b.iter(|| long_hop(6, 9, 3)));
    let topo = long_hop(5, 8, 2);
    group.bench_function("relative_lm_dim5", |b| {
        b.iter(|| relative_throughput(&topo, &TmSpec::LongestMatching, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
