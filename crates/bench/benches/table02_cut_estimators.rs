//! Bench for Table II: each sparsest-cut estimator individually (via the
//! combined report) on a natural-network stand-in and on a structured network.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_cuts::estimate_sparsest_cut;
use tb_topology::{hypercube::hypercube, natural::natural_networks};
use topobench::TmSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table02");
    group.sample_size(10);
    let cube = hypercube(5, 1);
    let cube_tm = TmSpec::LongestMatching.generate(&cube, 1);
    group.bench_function("hypercube_d5", |b| {
        b.iter(|| estimate_sparsest_cut(&cube.graph, &cube_tm))
    });
    let nat = natural_networks(4, 1).remove(0);
    let nat_tm = TmSpec::LongestMatching.generate(&nat, 1);
    group.bench_function("natural_network", |b| {
        b.iter(|| estimate_sparsest_cut(&nat.graph, &nat_tm))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
