//! Bench for Figures 13/14: the real-world (Facebook-like) TM pipeline —
//! generation, placement, shuffling and throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_topology::jellyfish::jellyfish;
use tb_traffic::{facebook, ops};
use topobench::evaluate_throughput;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let topo = jellyfish(64, 8, 4, 3);
    let endpoints = topo.server_switches();
    let mut group = c.benchmark_group("fig13_14");
    group.sample_size(10);
    group.bench_function("generate_tm_f", |b| b.iter(|| facebook::tm_f(64, 1)));
    let tm_f = facebook::tm_f(64, 1);
    group.bench_function("shuffle", |b| b.iter(|| ops::shuffle(&tm_f, 5)));
    let placed = ops::map_onto(&tm_f, &endpoints, topo.num_switches())
        .normalized_to_hose(&topo.servers)
        .0;
    group.bench_function("throughput_tm_f_jellyfish64", |b| {
        b.iter(|| evaluate_throughput(&topo, &placed, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
