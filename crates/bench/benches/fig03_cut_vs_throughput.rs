//! Bench for Figure 3: sparse-cut estimation plus throughput on one network.

use criterion::{criterion_group, criterion_main, Criterion};
use tb_bench::bench_config;
use tb_cuts::estimate_sparsest_cut;
use tb_topology::jellyfish::jellyfish;
use topobench::{evaluate_throughput, TmSpec};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let topo = jellyfish(30, 4, 1, 3);
    let tm = TmSpec::LongestMatching.generate(&topo, 3);
    let mut group = c.benchmark_group("fig03");
    group.sample_size(10);
    group.bench_function("sparse_cut_estimators", |b| {
        b.iter(|| estimate_sparsest_cut(&topo.graph, &tm))
    });
    group.bench_function("throughput", |b| {
        b.iter(|| evaluate_throughput(&topo, &tm, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
