//! Spectral tools: the Fiedler-like second eigenvector of the *normalized*
//! Laplacian, used by the eigenvector sweep cut estimator (Appendix C of the
//! paper, citing Cheeger's inequality).
//!
//! We only ever need the eigenvector corresponding to the second smallest
//! eigenvalue of `L_norm = I - D^{-1/2} A D^{-1/2}`, so a deflated power
//! iteration on `2I - L_norm` (whose largest eigenvalue corresponds to the
//! smallest of `L_norm`) is sufficient and keeps the crate dependency-free.

use crate::graph::Graph;

/// Result of the spectral computation.
#[derive(Debug, Clone)]
pub struct SpectralResult {
    /// Approximation of the second smallest eigenvalue of the normalized
    /// Laplacian (the "algebraic connectivity" analogue; 0 for disconnected
    /// graphs).
    pub lambda2: f64,
    /// The corresponding eigenvector, one entry per node.
    pub eigenvector: Vec<f64>,
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Multiplies `M = 2I - L_norm = I + D^{-1/2} A D^{-1/2}` by `v`.
/// Isolated nodes (degree 0) only get the identity part.
fn apply_shifted(g: &Graph, inv_sqrt_deg: &[f64], v: &[f64], out: &mut [f64]) {
    let n = g.num_nodes();
    out[..n].copy_from_slice(&v[..n]);
    for e in g.edges() {
        let w = e.cap * inv_sqrt_deg[e.u] * inv_sqrt_deg[e.v];
        out[e.u] += w * v[e.v];
        out[e.v] += w * v[e.u];
    }
}

/// Computes (an approximation of) the eigenvector of the normalized Laplacian
/// associated with its second smallest eigenvalue, via deflated power
/// iteration.
///
/// Weighted degrees (sums of incident capacities) are used, so parallel edges
/// and non-unit capacities are handled. The iteration is deterministic.
pub fn second_smallest_normalized_laplacian(g: &Graph, iterations: usize) -> SpectralResult {
    let n = g.num_nodes();
    assert!(n >= 2, "need at least two nodes");
    // Weighted degree.
    let mut deg = vec![0.0f64; n];
    for e in g.edges() {
        deg[e.u] += e.cap;
        deg[e.v] += e.cap;
    }
    let inv_sqrt_deg: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    // Trivial eigenvector of L_norm for eigenvalue 0 is D^{1/2} * 1.
    let mut trivial: Vec<f64> = deg.iter().map(|&d| d.sqrt()).collect();
    normalize(&mut trivial);

    // Deterministic pseudo-random start, orthogonalized against the trivial
    // eigenvector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as f64 * 0.754877666 + 0.1).fract();
            x - 0.5
        })
        .collect();
    let t = dot(&v, &trivial);
    for i in 0..n {
        v[i] -= t * trivial[i];
    }
    normalize(&mut v);

    let mut next = vec![0.0; n];
    let mut rayleigh_shifted = 0.0;
    for _ in 0..iterations {
        apply_shifted(g, &inv_sqrt_deg, &v, &mut next);
        // Deflate the trivial eigenvector (its eigenvalue under 2I - L is 2,
        // the largest, so it must be removed every step).
        let t = dot(&next, &trivial);
        for i in 0..n {
            next[i] -= t * trivial[i];
        }
        normalize(&mut next);
        std::mem::swap(&mut v, &mut next);
    }
    // Rayleigh quotient of the shifted operator.
    apply_shifted(g, &inv_sqrt_deg, &v, &mut next);
    let t = dot(&next, &trivial);
    for i in 0..n {
        next[i] -= t * trivial[i];
    }
    rayleigh_shifted += dot(&v, &next);
    let lambda2 = 2.0 - rayleigh_shifted;
    SpectralResult {
        lambda2,
        eigenvector: v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_large_lambda2() {
        // K_n has normalized-Laplacian eigenvalues {0, n/(n-1), ...}.
        let n = 8;
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_unit_edge(i, j);
            }
        }
        let r = second_smallest_normalized_laplacian(&g, 400);
        assert!(
            (r.lambda2 - n as f64 / (n as f64 - 1.0)).abs() < 0.05,
            "{}",
            r.lambda2
        );
    }

    #[test]
    fn barbell_eigenvector_separates_the_two_cliques() {
        // Two K5s joined by a single edge: the second eigenvector should take
        // opposite signs on the two cliques.
        let mut g = Graph::new(10);
        for i in 0..5 {
            for j in i + 1..5 {
                g.add_unit_edge(i, j);
                g.add_unit_edge(5 + i, 5 + j);
            }
        }
        g.add_unit_edge(0, 5);
        let r = second_smallest_normalized_laplacian(&g, 2000);
        let left_sign = r.eigenvector[1].signum();
        for i in 1..5 {
            assert_eq!(r.eigenvector[i].signum(), left_sign);
        }
        for i in 6..10 {
            assert_eq!(r.eigenvector[i].signum(), -left_sign);
        }
        assert!(
            r.lambda2 < 0.5,
            "barbell should have small lambda2, got {}",
            r.lambda2
        );
    }

    #[test]
    fn cycle_lambda2_matches_formula() {
        // C_n normalized Laplacian eigenvalues: 1 - cos(2*pi*k/n).
        let n = 16;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges);
        let expected = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        let r = second_smallest_normalized_laplacian(&g, 4000);
        assert!(
            (r.lambda2 - expected).abs() < 0.02,
            "{} vs {}",
            r.lambda2,
            expected
        );
    }
}
