//! Connectivity utilities: connected components and connectivity checks.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Returns the component id of every node (ids are `0..num_components`,
/// assigned in order of discovery from node 0 upward).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    let mut q = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            for &(v, _) in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    if g.num_nodes() == 0 {
        return 0;
    }
    connected_components(g).iter().copied().max().unwrap() + 1
}

/// True iff the graph is connected (and non-empty).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() > 0 && num_components(g) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn two_components() {
        let mut g = Graph::new(5);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let comp = connected_components(&g);
        assert_eq!(num_components(&g), 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = Graph::new(0);
        assert_eq!(num_components(&g), 0);
        assert!(!is_connected(&g));
    }
}
