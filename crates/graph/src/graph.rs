//! Undirected capacitated multigraph used to model switch-level networks.
//!
//! Nodes are switches (indexed `0..n`). Edges are switch-to-switch links with a
//! capacity (the paper sets every switch-to-switch link to capacity 1 unless
//! noted otherwise). Servers are *not* nodes of this graph: the evaluation
//! framework folds servers into their switch because server-to-switch links
//! have infinite capacity (§II-A of the paper).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A single undirected link between two switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// Capacity of the link *in each direction* (the fluid-flow model treats an
    /// undirected link as a pair of unidirectional links of this capacity).
    pub cap: f64,
}

/// An undirected, capacitated multigraph.
///
/// Parallel edges are allowed (some topologies, e.g. HyperX with link trunking
/// or small Dragonflies, use them); self-loops are not.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency: for each node, a list of (neighbor, edge index).
    adj: Vec<Vec<(usize, usize)>>,
}

impl Graph {
    /// Creates an empty graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an explicit edge list. Panics if an endpoint is out
    /// of range or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v, 1.0);
        }
        g
    }

    /// Number of nodes (switches).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (links).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge with the given capacity and returns its index.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or non-positive capacity.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed in switch graphs");
        assert!(cap > 0.0, "edge capacity must be positive");
        let id = self.edges.len();
        self.edges.push(Edge { u, v, cap });
        self.adj[u].push((v, id));
        self.adj[v].push((u, id));
        id
    }

    /// Adds a unit-capacity undirected edge.
    pub fn add_unit_edge(&mut self, u: usize, v: usize) -> usize {
        self.add_edge(u, v, 1.0)
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    #[inline]
    pub fn edge(&self, id: usize) -> Edge {
        self.edges[id]
    }

    /// Neighbors of `u` as (neighbor, edge index) pairs. Parallel edges appear
    /// once per copy.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[(usize, usize)] {
        &self.adj[u]
    }

    /// Degree of `u` counting parallel edges (i.e. number of incident link
    /// endpoints, the "port count" used for equipment accounting).
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Degree sequence (ports used on each switch), in node order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        (0..self.n).map(|u| self.degree(u)).collect()
    }

    /// Total capacity summed over all undirected edges, counting both
    /// directions (this is the "total link capacity" of the volumetric bound in
    /// §II-B of the paper).
    pub fn total_directed_capacity(&self) -> f64 {
        2.0 * self.edges.iter().map(|e| e.cap).sum::<f64>()
    }

    /// Returns true if an edge (in either orientation) exists between u and v.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].iter().any(|&(w, _)| w == v)
    }

    /// Number of parallel edges between u and v.
    pub fn edge_multiplicity(&self, u: usize, v: usize) -> usize {
        self.adj[u].iter().filter(|&&(w, _)| w == v).count()
    }

    /// Sum of capacities of edges crossing the cut `(set, complement)`.
    ///
    /// `in_set[u]` must be true iff node `u` belongs to the set.
    pub fn cut_capacity(&self, in_set: &[bool]) -> f64 {
        assert_eq!(in_set.len(), self.n);
        self.edges
            .iter()
            .filter(|e| in_set[e.u] != in_set[e.v])
            .map(|e| e.cap)
            .sum()
    }

    /// The set of distinct neighbors of `u` (ignoring parallel edges).
    pub fn distinct_neighbors(&self, u: usize) -> BTreeSet<usize> {
        self.adj[u].iter().map(|&(w, _)| w).collect()
    }

    /// Returns a new graph with every capacity multiplied by `factor`.
    pub fn scaled_capacities(&self, factor: f64) -> Graph {
        assert!(factor > 0.0);
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.u, e.v, e.cap * factor);
        }
        g
    }

    /// Builds the subdivision of this graph: every edge is replaced by a path
    /// of `p` edges (adding `p - 1` new nodes per original edge), each new edge
    /// keeping the original capacity. Used by the Theorem 1 "graph B"
    /// construction (expander with subdivided edges).
    pub fn subdivide(&self, p: usize) -> Graph {
        assert!(p >= 1);
        if p == 1 {
            return self.clone();
        }
        let extra = self.edges.len() * (p - 1);
        let mut g = Graph::new(self.n + extra);
        let mut next = self.n;
        for e in &self.edges {
            let mut prev = e.u;
            for _ in 0..p - 1 {
                g.add_edge(prev, next, e.cap);
                prev = next;
                next += 1;
            }
            g.add_edge(prev, e.v, e.cap);
        }
        g
    }

    /// Checks structural sanity: endpoints in range, no self-loops, positive
    /// capacities, adjacency consistent with the edge list. Used by tests and
    /// by generators in debug builds.
    pub fn validate(&self) -> Result<(), String> {
        let mut incident = vec![0usize; self.n];
        for (i, e) in self.edges.iter().enumerate() {
            if e.u >= self.n || e.v >= self.n {
                return Err(format!("edge {i} endpoint out of range"));
            }
            if e.u == e.v {
                return Err(format!("edge {i} is a self-loop"));
            }
            if e.cap <= 0.0 || e.cap.is_nan() {
                return Err(format!("edge {i} has non-positive capacity"));
            }
            incident[e.u] += 1;
            incident[e.v] += 1;
        }
        for (u, expected) in incident.iter().enumerate() {
            if self.adj[u].len() != *expected {
                return Err(format!("adjacency of node {u} inconsistent with edge list"));
            }
            for &(v, id) in &self.adj[u] {
                let e = self.edges[id];
                if !((e.u == u && e.v == v) || (e.v == u && e.u == v)) {
                    return Err(format!(
                        "adjacency entry ({u},{v},{id}) does not match edge"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_edges_and_degrees() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(1, 2);
        g.add_unit_edge(2, 3);
        g.add_unit_edge(3, 0);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn parallel_edges_counted() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(0, 1);
        assert_eq!(g.edge_multiplicity(0, 1), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_unit_edge(1, 1);
    }

    #[test]
    fn cut_capacity_of_square() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cut = vec![true, true, false, false];
        assert_eq!(g.cut_capacity(&cut), 2.0);
        let cut = vec![true, false, true, false];
        assert_eq!(g.cut_capacity(&cut), 4.0);
    }

    #[test]
    fn total_directed_capacity_counts_both_directions() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.5);
        assert!((g.total_directed_capacity() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn subdivision_replaces_edges_with_paths() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = g.subdivide(3);
        // 3 original nodes + 3 edges * 2 new nodes each.
        assert_eq!(s.num_nodes(), 3 + 6);
        assert_eq!(s.num_edges(), 9);
        assert!(s.validate().is_ok());
        // Every original node keeps degree 2; every new node has degree 2.
        for u in 0..s.num_nodes() {
            assert_eq!(s.degree(u), 2);
        }
    }

    #[test]
    fn scaled_capacities() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 2.0);
        let s = g.scaled_capacities(0.5);
        assert!((s.edge(0).cap - 1.0).abs() < 1e-12);
    }
}
