//! Compressed sparse row (CSR) adjacency: the flat arc layout shared by every
//! shortest-path consumer in the workspace.
//!
//! The general-purpose [`Graph`](crate::Graph) stores adjacency as
//! `Vec<Vec<(usize, usize)>>`, which is convenient to build incrementally but
//! pointer-chasing to traverse. Hot paths (the Fleischer solver's inner
//! Dijkstra, the k-shortest-path router) instead traverse a [`CsrGraph`]: one
//! offsets array plus two flat arrays (`heads`, length indices), so a node's
//! out-arcs are a contiguous cache-friendly slice.
//!
//! Each directed arc carries a *length index* into a caller-provided length
//! array. For a CSR built [`from_graph`](CsrGraph::from_graph) the index is
//! the undirected edge id (both directions share one length); for one built
//! [`from_directed_arcs`](CsrGraph::from_directed_arcs) it is whatever arc id
//! the caller assigned (the flow solver uses per-direction arc ids).

use crate::graph::Graph;

/// Flat CSR adjacency over directed arcs. Immutable once built.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    num_nodes: usize,
    /// `offsets[u]..offsets[u + 1]` indexes `heads` / `lids` for node `u`.
    offsets: Vec<u32>,
    /// Head (target node) of each directed arc.
    heads: Vec<u32>,
    /// Length index of each directed arc (an index into the caller's length
    /// array, *not* a length itself).
    lids: Vec<u32>,
}

impl CsrGraph {
    /// Builds the directed CSR view of an undirected [`Graph`]: every edge
    /// becomes two arcs, both carrying the edge id as their length index.
    pub fn from_graph(g: &Graph) -> Self {
        let arcs = g
            .edges()
            .iter()
            .enumerate()
            .flat_map(|(eid, e)| [(e.u, e.v, eid), (e.v, e.u, eid)]);
        Self::from_directed_arcs(g.num_nodes(), arcs)
    }

    /// Builds a CSR from explicit `(from, to, length index)` directed arcs,
    /// using a counting sort over tails (O(n + m), no per-node vectors).
    pub fn from_directed_arcs(
        num_nodes: usize,
        arcs: impl IntoIterator<Item = (usize, usize, usize)> + Clone,
    ) -> Self {
        assert!(
            num_nodes < u32::MAX as usize,
            "node count exceeds CSR u32 range"
        );
        let mut counts = vec![0u32; num_nodes + 1];
        let mut num_arcs = 0usize;
        for (from, to, _) in arcs.clone() {
            debug_assert!(
                from < num_nodes && to < num_nodes,
                "arc endpoint out of range"
            );
            counts[from + 1] += 1;
            num_arcs += 1;
        }
        assert!(
            num_arcs < u32::MAX as usize,
            "arc count exceeds CSR u32 range"
        );
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut heads = vec![0u32; num_arcs];
        let mut lids = vec![0u32; num_arcs];
        // `counts[u]` now walks through node u's slice as its arcs are placed.
        let mut cursor = counts;
        for (from, to, lid) in arcs {
            let slot = cursor[from] as usize;
            heads[slot] = to as u32;
            lids[slot] = lid as u32;
            cursor[from] += 1;
        }
        CsrGraph {
            num_nodes,
            offsets,
            heads,
            lids,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.heads.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Out-arcs of `u` as `(head, length index)` pairs — a contiguous slice
    /// walk, the hot loop of the SSSP kernel.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.heads[lo..hi]
            .iter()
            .zip(&self.lids[lo..hi])
            .map(|(&h, &l)| (h as usize, l as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_graph_mirrors_adjacency() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_arcs(), 8);
        for u in 0..4 {
            let mut csr_adj: Vec<(usize, usize)> = csr.neighbors(u).collect();
            let mut g_adj: Vec<(usize, usize)> = g.neighbors(u).to_vec();
            csr_adj.sort_unstable();
            g_adj.sort_unstable();
            assert_eq!(csr_adj, g_adj, "node {u}");
        }
    }

    #[test]
    fn directed_arcs_keep_length_indices() {
        // Two arcs out of node 0 with distinct length ids.
        let csr = CsrGraph::from_directed_arcs(3, vec![(0, 1, 7), (0, 2, 9), (2, 0, 1)]);
        let adj0: Vec<(usize, usize)> = csr.neighbors(0).collect();
        assert_eq!(adj0, vec![(1, 7), (2, 9)]);
        assert_eq!(csr.degree(1), 0);
        let adj2: Vec<(usize, usize)> = csr.neighbors(2).collect();
        assert_eq!(adj2, vec![(0, 1)]);
    }

    #[test]
    fn parallel_edges_survive() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(0, 1);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.degree(0), 2);
        let lids: Vec<usize> = csr.neighbors(0).map(|(_, l)| l).collect();
        assert_eq!(lids, vec![0, 1]);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_graph(&Graph::new(3));
        assert_eq!(csr.num_arcs(), 0);
        assert_eq!(csr.neighbors(0).count(), 0);
    }
}
