//! A check-out/check-in pool for per-worker scratch state.
//!
//! The flow solver's parallel sweeps (dual-bound evaluation, potential
//! refreshes, and the batch-parallel routing epochs) hand each rayon worker
//! its own scratch workspace via `map_init`. Building that workspace fresh in
//! every `map_init` call allocates per parallel region — dozens of times per
//! solve for the epoch fan-out — so the regions draw from a [`WorkspacePool`]
//! instead: a worker leases a workspace at chunk start and returns it when the
//! chunk ends, and once the pool has seen as many concurrent workers as the
//! process will ever run, leasing stops allocating entirely.
//!
//! Pooling is a pure allocation optimization: every workspace type stored
//! here (e.g. [`SsspWorkspace`](crate::SsspWorkspace) with its generation
//! stamps) produces identical results whether it is freshly built or reused,
//! so which worker gets which pooled instance can never affect values — the
//! determinism the solver's bit-identity tests pin.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::SsspWorkspace;

/// A single-use work-claiming queue over a fixed, pre-built task list: the
/// "shared deque" of the flow solver's work-stealing pricing rounds.
///
/// The task list itself is deterministic (built by one thread before the
/// parallel region); the queue only hands out *indices* into it, one per
/// [`claim`](ClaimQueue::claim), via an atomic cursor. Which worker claims
/// which index varies run to run — that is the stealing — but because every
/// task's **result slot and fold position are keyed by the claimed index**,
/// not by the claiming worker, downstream reductions stay bit-identical for
/// any worker count. A task list is cheaper and lighter than a real deque:
/// there is no push side, so a fetch-add is the whole protocol.
#[derive(Debug)]
pub struct ClaimQueue {
    next: AtomicUsize,
    len: usize,
}

impl ClaimQueue {
    /// A queue over task indices `0..len`.
    pub fn new(len: usize) -> Self {
        ClaimQueue {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Claims the next unclaimed task index, or `None` once the list is
    /// drained. Each index in `0..len` is handed out exactly once across all
    /// workers.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Number of tasks claimed so far (saturating at the queue length).
    pub fn claimed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.len)
    }
}

/// A pool of reusable scratch workspaces, one leased per worker at a time.
///
/// `take`/[`lease`](WorkspacePool::lease) pops an idle workspace or builds a
/// fresh `T::default()`; dropping the [`PooledWorkspace`] guard returns it.
/// The pool is `Sync` (a mutex guards the idle list; it is locked only at
/// lease/return, never while a workspace is in use).
#[derive(Debug, Default)]
pub struct WorkspacePool<T> {
    idle: Mutex<Vec<T>>,
}

/// Cloning a pool yields an **empty** pool: pooled workspaces are scratch
/// state, not data, so a clone starts cold and refills on first use. (This
/// exists so owners like `tb_flow::SolverWorkspace` can stay `Clone`.)
impl<T> Clone for WorkspacePool<T> {
    fn clone(&self) -> Self {
        WorkspacePool {
            idle: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Default> WorkspacePool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        WorkspacePool {
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Leases a workspace: an idle pooled one if available, otherwise a fresh
    /// default. The guard returns it to the pool on drop.
    pub fn lease(&self) -> PooledWorkspace<'_, T> {
        let item = self.lock().pop().unwrap_or_default();
        PooledWorkspace {
            pool: self,
            item: Some(item),
        }
    }

    /// Number of idle (checked-in) workspaces currently held.
    pub fn idle_count(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        // A panic while the list is locked cannot leave it inconsistent (the
        // critical sections are a push/pop), so poisoning is ignored.
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A pool of SSSP workspaces — the shape every parallel sweep in `tb_flow`
/// leases per worker.
pub type SsspPool = WorkspacePool<SsspWorkspace>;

/// RAII lease of one pooled workspace; derefs to `T` and checks the
/// workspace back in on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'a, T: Default> {
    pool: &'a WorkspacePool<T>,
    item: Option<T>,
}

impl<T: Default> std::ops::Deref for PooledWorkspace<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("leased workspace present")
    }
}

impl<T: Default> std::ops::DerefMut for PooledWorkspace<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("leased workspace present")
    }
}

impl<T: Default> Drop for PooledWorkspace<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.lock().push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_queue_hands_out_each_index_once() {
        let q = ClaimQueue::new(5);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.claim()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.claim(), None);
        assert_eq!(q.claimed(), 5);
    }

    #[test]
    fn claim_queue_is_disjoint_across_threads() {
        let q = ClaimQueue::new(1000);
        let claims: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| std::iter::from_fn(|| q.claim()).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claims.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_claim_queue_yields_nothing() {
        let q = ClaimQueue::new(0);
        assert_eq!(q.claim(), None);
        assert_eq!(q.claimed(), 0);
    }

    #[test]
    fn lease_returns_to_pool_on_drop() {
        let pool: WorkspacePool<Vec<usize>> = WorkspacePool::new();
        assert_eq!(pool.idle_count(), 0);
        {
            let mut a = pool.lease();
            a.push(7);
            let b = pool.lease();
            assert!(b.is_empty());
            assert_eq!(pool.idle_count(), 0);
        }
        assert_eq!(pool.idle_count(), 2);
        // The grown buffer is recycled, contents intact until the user resets.
        let recycled = pool.lease();
        assert_eq!(pool.idle_count(), 1);
        assert!(recycled.capacity() > 0);
    }

    #[test]
    fn clone_starts_empty() {
        let pool: WorkspacePool<Vec<usize>> = WorkspacePool::new();
        drop(pool.lease());
        assert_eq!(pool.idle_count(), 1);
        assert_eq!(pool.clone().idle_count(), 0);
    }

    #[test]
    fn sssp_pool_workspaces_are_reusable_across_graphs() {
        use crate::{sssp_csr, CsrGraph, Graph};
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let csr = CsrGraph::from_graph(&g);
        let len = vec![1.0; g.num_edges()];
        let pool = SsspPool::new();
        for _ in 0..3 {
            let mut ws = pool.lease();
            sssp_csr(&csr, 0, &len, None, &mut ws);
            assert_eq!(ws.dist(3), 3.0);
        }
        assert_eq!(pool.idle_count(), 1);
    }
}
