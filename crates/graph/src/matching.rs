//! Maximum-weight perfect matching on a complete bipartite graph
//! (the assignment problem).
//!
//! The longest-matching traffic matrix (§II-C of the paper) pairs every source
//! with exactly one destination so as to *maximize* the total shortest-path
//! length of the pairing. That is an assignment problem on the complete
//! bipartite graph whose edge weights are the all-pairs shortest path lengths.
//!
//! Two solvers are provided:
//!
//! * [`max_weight_assignment`] — exact O(n³) Hungarian algorithm
//!   (Jonker–Volgenant style shortest augmenting paths on the dual), suitable
//!   for the sizes the paper evaluates (up to ~2k switches),
//! * [`greedy_assignment`] — an O(n² log n) greedy 1/2-approximation used as a
//!   cross-check in tests and as a fallback for very large instances.

/// Result of an assignment: `assignment[i] = j` means row `i` is matched to
/// column `j`; `total` is the summed weight of the matching.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Column assigned to each row.
    pub assignment: Vec<usize>,
    /// Total weight of the selected entries.
    pub total: f64,
}

/// Exact maximum-weight perfect matching on an `n × n` weight matrix
/// (`weights[i][j]` is the weight of assigning row `i` to column `j`).
///
/// Implemented as the classic Hungarian algorithm on the *cost* matrix
/// `cost = max_weight - weight`, using shortest augmenting paths with dual
/// potentials (O(n³)).
///
/// # Panics
/// Panics if the matrix is empty or not square.
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> Assignment {
    let n = weights.len();
    assert!(n > 0, "empty weight matrix");
    for row in weights {
        assert_eq!(row.len(), n, "weight matrix must be square");
    }
    let max_w = weights
        .iter()
        .flat_map(|r| r.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max);
    // Convert to a minimization problem with non-negative costs.
    let cost: Vec<Vec<f64>> = weights
        .iter()
        .map(|row| row.iter().map(|&w| max_w - w).collect())
        .collect();

    // Hungarian algorithm with potentials; 1-based internal arrays.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j (1-based; 0 = unmatched)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| weights[i][j])
        .sum();
    Assignment { assignment, total }
}

/// Greedy maximum-weight assignment: repeatedly pick the heaviest remaining
/// entry whose row and column are both unmatched. A 1/2-approximation.
pub fn greedy_assignment(weights: &[Vec<f64>]) -> Assignment {
    let n = weights.len();
    assert!(n > 0, "empty weight matrix");
    let mut entries: Vec<(usize, usize)> =
        (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    entries.sort_by(|a, b| {
        weights[b.0][b.1]
            .partial_cmp(&weights[a.0][a.1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut row_used = vec![false; n];
    let mut col_used = vec![false; n];
    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    for (i, j) in entries {
        if !row_used[i] && !col_used[j] {
            row_used[i] = true;
            col_used[j] = true;
            assignment[i] = j;
            total += weights[i][j];
        }
    }
    Assignment { assignment, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(assign: &[usize]) -> bool {
        let mut seen = vec![false; assign.len()];
        for &j in assign {
            if j >= assign.len() || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        true
    }

    #[test]
    fn trivial_1x1() {
        let a = max_weight_assignment(&[vec![3.0]]);
        assert_eq!(a.assignment, vec![0]);
        assert!((a.total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn picks_off_diagonal_when_heavier() {
        let w = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let a = max_weight_assignment(&w);
        assert!(is_permutation(&a.assignment));
        assert!((a.total - 20.0).abs() < 1e-9);
        assert_eq!(a.assignment, vec![1, 0]);
    }

    #[test]
    fn three_by_three_known_optimum() {
        let w = vec![
            vec![7.0, 4.0, 3.0],
            vec![6.0, 8.0, 5.0],
            vec![9.0, 4.0, 4.0],
        ];
        // Optimal: (0,1)? Check by brute force below.
        let a = max_weight_assignment(&w);
        let brute = brute_force(&w);
        assert!((a.total - brute).abs() < 1e-9);
        assert!(is_permutation(&a.assignment));
    }

    fn brute_force(w: &[Vec<f64>]) -> f64 {
        let n = w.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut best = f64::NEG_INFINITY;
        permute(&mut idx, 0, &mut |perm| {
            let s: f64 = perm.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
            if s > best {
                best = s;
            }
        });
        best
    }

    fn permute(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == idx.len() {
            f(idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute(idx, k + 1, f);
            idx.swap(k, i);
        }
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for n in 2..=6 {
            for _ in 0..5 {
                let w: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                    .collect();
                let a = max_weight_assignment(&w);
                let b = brute_force(&w);
                assert!(
                    (a.total - b).abs() < 1e-6,
                    "hungarian {} vs brute {} (n={})",
                    a.total,
                    b,
                    n
                );
                assert!(is_permutation(&a.assignment));
            }
        }
    }

    #[test]
    fn greedy_is_valid_and_at_least_half() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        for n in 2..=8 {
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let g = greedy_assignment(&w);
            let h = max_weight_assignment(&w);
            assert!(is_permutation(&g.assignment));
            assert!(g.total >= 0.5 * h.total - 1e-9);
            assert!(g.total <= h.total + 1e-9);
        }
    }
}
