//! Single-commodity maximum flow (Dinic's algorithm) and the induced minimum
//! s–t cut.
//!
//! Used by the cut tooling to compute exact minimum cuts between node sets
//! (e.g. validating bisection estimates) and by tests as an independent
//! oracle for two-terminal instances of the throughput problem (where max-flow
//! = min-cut holds exactly).

use crate::graph::Graph;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct FlowArc {
    to: usize,
    cap: f64,
    flow: f64,
    /// Index of the reverse arc in the arc list.
    rev: usize,
}

/// A Dinic max-flow instance over a directed arc set.
#[derive(Debug, Clone)]
pub struct MaxFlow {
    n: usize,
    arcs: Vec<FlowArc>,
    head: Vec<Vec<usize>>,
}

impl MaxFlow {
    /// Creates an empty instance with `n` nodes.
    pub fn new(n: usize) -> Self {
        MaxFlow {
            n,
            arcs: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Builds an instance from an undirected graph: every link becomes a pair
    /// of directed arcs, each with the link's capacity.
    pub fn from_graph(g: &Graph) -> Self {
        let mut mf = MaxFlow::new(g.num_nodes());
        for e in g.edges() {
            mf.add_edge(e.u, e.v, e.cap, e.cap);
        }
        mf
    }

    /// Adds a directed arc `u -> v` with capacity `cap` and a reverse arc with
    /// capacity `rev_cap` (use 0 for a purely directed arc).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64, rev_cap: f64) {
        assert!(u < self.n && v < self.n && u != v);
        let a = self.arcs.len();
        self.arcs.push(FlowArc {
            to: v,
            cap,
            flow: 0.0,
            rev: a + 1,
        });
        self.arcs.push(FlowArc {
            to: u,
            cap: rev_cap,
            flow: 0.0,
            rev: a,
        });
        self.head[u].push(a);
        self.head[v].push(a + 1);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.n];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &aid in &self.head[u] {
                let a = self.arcs[aid];
                if level[a.to] < 0 && a.cap - a.flow > 1e-12 {
                    level[a.to] = level[u] + 1;
                    q.push_back(a.to);
                }
            }
        }
        if level[t] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: f64,
        level: &[i32],
        it: &mut [usize],
    ) -> f64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.head[u].len() {
            let aid = self.head[u][it[u]];
            let (to, residual) = {
                let a = self.arcs[aid];
                (a.to, a.cap - a.flow)
            };
            if residual > 1e-12 && level[to] == level[u] + 1 {
                let d = self.dfs_push(to, t, pushed.min(residual), level, it);
                if d > 1e-12 {
                    self.arcs[aid].flow += d;
                    let rev = self.arcs[aid].rev;
                    self.arcs[rev].flow -= d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0.0
    }

    /// Computes the maximum s–t flow value. Can be called once per instance
    /// (flows accumulate).
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(s != t);
        let mut total = 0.0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.n];
            loop {
                let pushed = self.dfs_push(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= 1e-12 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// After [`max_flow`], returns the source side of a minimum s–t cut
    /// (nodes reachable from `s` in the residual graph).
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut q = VecDeque::new();
        seen[s] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &aid in &self.head[u] {
                let a = self.arcs[aid];
                if !seen[a.to] && a.cap - a.flow > 1e-9 {
                    seen[a.to] = true;
                    q.push_back(a.to);
                }
            }
        }
        seen
    }
}

/// Convenience: the maximum flow between two nodes of an undirected graph.
pub fn max_flow_value(g: &Graph, s: usize, t: usize) -> f64 {
    MaxFlow::from_graph(g).max_flow(s, t)
}

/// Convenience: the minimum s–t cut of an undirected graph as
/// (cut capacity, source-side membership vector).
pub fn min_st_cut(g: &Graph, s: usize, t: usize) -> (f64, Vec<bool>) {
    let mut mf = MaxFlow::from_graph(g);
    let value = mf.max_flow(s, t);
    (value, mf.min_cut_side(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_flow_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!((max_flow_value(&g, 0, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_gives_two_disjoint_paths() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((max_flow_value(&g, 0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn complete_graph_flow_equals_degree() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            for j in i + 1..5 {
                g.add_unit_edge(i, j);
            }
        }
        assert!((max_flow_value(&g, 0, 4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_bottleneck() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 2.5);
        assert!((max_flow_value(&g, 0, 2) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn min_cut_matches_flow_and_separates() {
        // Barbell: two K4s joined by one edge -> min cut 1 between the sides.
        let mut g = Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    g.add_unit_edge(base + i, base + j);
                }
            }
        }
        g.add_unit_edge(0, 4);
        let (value, side) = min_st_cut(&g, 1, 5);
        assert!((value - 1.0).abs() < 1e-9);
        assert!(side[0] && side[1] && side[2] && side[3]);
        assert!(!side[4] && !side[5]);
        assert!((g.cut_capacity(&side) - value).abs() < 1e-9);
    }

    #[test]
    fn directed_arcs_respected() {
        let mut mf = MaxFlow::new(3);
        mf.add_edge(0, 1, 1.0, 0.0);
        mf.add_edge(1, 2, 1.0, 0.0);
        assert!((mf.max_flow(0, 2) - 1.0).abs() < 1e-9);
        let mut back = MaxFlow::new(3);
        back.add_edge(0, 1, 1.0, 0.0);
        back.add_edge(1, 2, 1.0, 0.0);
        assert!(back.max_flow(2, 0).abs() < 1e-9);
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(0, 1);
        assert!((max_flow_value(&g, 0, 1) - 3.0).abs() < 1e-9);
    }
}
