//! # tb-graph
//!
//! Graph substrate for the topobench framework.
//!
//! This crate provides the low-level machinery every other topobench crate is
//! built on:
//!
//! * [`Graph`] — an undirected, capacitated multigraph over switch nodes with a
//!   compact edge list + adjacency representation,
//! * CSR adjacency ([`csr`]) — the flat arc layout every shortest-path hot
//!   path traverses,
//! * shortest paths ([`shortest_path`]) — unweighted BFS, the single shared
//!   Dijkstra kernel ([`sssp_csr`], reusable-workspace, early-exit), and
//!   (optionally parallel) all-pairs variants,
//! * maximum-weight perfect matchings ([`matching`]) — the Hungarian /
//!   Jonker–Volgenant algorithm used by the longest-matching traffic matrix,
//! * spectral tools ([`spectral`]) — the second eigenvector of the normalized
//!   Laplacian, used by the eigenvector sweep cut estimator,
//! * random graph models ([`random`]) — random regular graphs (Jellyfish),
//!   configuration-model graphs matching an arbitrary degree sequence
//!   (the "same equipment" normalizer), and the natural-network stand-ins
//!   (Erdős–Rényi, Watts–Strogatz, Barabási–Albert, stochastic block model),
//! * connectivity utilities ([`connectivity`]),
//! * a per-worker scratch pool ([`pool`]) — [`WorkspacePool`] leases reusable
//!   workspaces (e.g. [`SsspWorkspace`]) to parallel regions so repeated
//!   fan-outs stop allocating.
//!
//! All randomized constructions take an explicit seed and are deterministic for
//! a given seed, so experiments are reproducible.

pub mod connectivity;
pub mod csr;
pub mod graph;
pub mod matching;
pub mod maxflow;
pub mod pool;
pub mod random;
pub mod shortest_path;
pub mod spectral;

pub use csr::CsrGraph;
pub use graph::{Edge, Graph};
pub use maxflow::{max_flow_value, min_st_cut, MaxFlow};
pub use pool::{ClaimQueue, PooledWorkspace, SsspPool, WorkspacePool};
pub use shortest_path::{
    apsp_unweighted, bfs_distances, dijkstra, sssp_csr, sssp_csr_by, sssp_csr_goal,
    sssp_csr_goal_by, ShortestPathTree, SsspWorkspace,
};
