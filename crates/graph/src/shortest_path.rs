//! Shortest paths on switch graphs.
//!
//! Three users in the framework:
//!
//! * the longest-matching traffic matrix needs *unweighted* all-pairs shortest
//!   path lengths (hop counts),
//! * the Fleischer max-concurrent-flow solver needs single-source shortest
//!   paths under an arbitrary positive *length function on edges* (the dual
//!   variables), with the predecessor tree so flow can be routed back,
//! * the expanding-region cut estimator needs BFS balls.

use crate::graph::Graph;
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Distance value used to mark unreachable nodes in BFS results.
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first search hop distances from `src` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u];
        for &(v, _) in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs unweighted shortest path lengths (hop counts), row `u` is the BFS
/// distance vector from `u`. Runs the per-source BFS in parallel with rayon.
pub fn apsp_unweighted(g: &Graph) -> Vec<Vec<u32>> {
    (0..g.num_nodes())
        .into_par_iter()
        .map(|u| bfs_distances(g, u))
        .collect()
}

/// Average shortest path length over all ordered pairs of distinct nodes.
///
/// Returns `None` if the graph is disconnected (some pair is unreachable) or
/// has fewer than two nodes.
pub fn average_path_length(g: &Graph) -> Option<f64> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    let dist = apsp_unweighted(g);
    let mut total = 0u64;
    for (u, row) in dist.iter().enumerate() {
        for (v, &d) in row.iter().enumerate() {
            if u == v {
                continue;
            }
            if d == UNREACHABLE {
                return None;
            }
            total += d as u64;
        }
    }
    Some(total as f64 / (n as f64 * (n as f64 - 1.0)))
}

/// Diameter (max hop distance over all pairs); `None` if disconnected.
pub fn diameter(g: &Graph) -> Option<u32> {
    let dist = apsp_unweighted(g);
    let mut best = 0;
    for (u, row) in dist.iter().enumerate() {
        for (v, &d) in row.iter().enumerate() {
            if u == v {
                continue;
            }
            if d == UNREACHABLE {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// A single-source shortest path tree under an edge length function.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// Source node the tree is rooted at.
    pub src: usize,
    /// Distance from the source under the length function (`f64::INFINITY` if
    /// unreachable).
    pub dist: Vec<f64>,
    /// Predecessor of each node on its shortest path as `(parent node, edge id)`;
    /// `None` for the source and unreachable nodes.
    pub parent: Vec<Option<(usize, usize)>>,
}

impl ShortestPathTree {
    /// Reconstructs the path from the source to `dst` as a list of edge ids
    /// (source-to-destination order). Returns `None` if `dst` is unreachable.
    pub fn path_edges(&self, dst: usize) -> Option<Vec<usize>> {
        if dst == self.src {
            return Some(Vec::new());
        }
        self.parent[dst]?;
        let mut edges = Vec::new();
        let mut cur = dst;
        while cur != self.src {
            let (p, e) = self.parent[cur]?;
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    /// Reconstructs the path from the source to `dst` as a node sequence
    /// (including both endpoints).
    pub fn path_nodes(&self, dst: usize) -> Option<Vec<usize>> {
        if dst == self.src {
            return Some(vec![dst]);
        }
        self.parent[dst]?;
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != self.src {
            let (p, _) = self.parent[cur]?;
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        Some(nodes)
    }
}

#[derive(Copy, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance: reverse the comparison. Distances are finite
        // non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's algorithm from `src` under the per-edge length function
/// `edge_len` (indexed by edge id; all lengths must be non-negative).
pub fn dijkstra(g: &Graph, src: usize, edge_len: &[f64]) -> ShortestPathTree {
    assert_eq!(edge_len.len(), g.num_edges());
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[src] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: src });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, eid) in g.neighbors(u) {
            let len = edge_len[eid];
            debug_assert!(len >= 0.0, "negative edge length");
            let nd = d + len;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some((u, eid));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPathTree { src, dist, parent }
}

/// Yen-style K shortest (simple) paths between `src` and `dst` by hop count,
/// used by the LLSKR replication (Fig 15). Paths are returned as node
/// sequences ordered by length; fewer than `k` paths may exist.
pub fn k_shortest_paths(g: &Graph, src: usize, dst: usize, k: usize) -> Vec<Vec<usize>> {
    if src == dst || k == 0 {
        return Vec::new();
    }
    let unit = vec![1.0; g.num_edges()];
    let tree = dijkstra(g, src, &unit);
    let first = match tree.path_nodes(dst) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut paths: Vec<Vec<usize>> = vec![first];
    let mut candidates: Vec<Vec<usize>> = Vec::new();

    while paths.len() < k {
        let last = paths.last().unwrap().clone();
        for i in 0..last.len() - 1 {
            let spur_node = last[i];
            let root: Vec<usize> = last[..=i].to_vec();
            // Edge lengths: ban edges used by previous paths sharing this root,
            // and ban revisiting root nodes, by giving them infinite length.
            let mut len = vec![1.0; g.num_edges()];
            for p in &paths {
                if p.len() > i + 1 && p[..=i] == root[..] {
                    let (a, b) = (p[i], p[i + 1]);
                    for &(v, eid) in g.neighbors(a) {
                        if v == b {
                            len[eid] = f64::INFINITY;
                        }
                    }
                }
            }
            let mut banned = vec![false; g.num_nodes()];
            for &node in &root[..root.len() - 1] {
                banned[node] = true;
            }
            for (eid, e) in g.edges().iter().enumerate() {
                if banned[e.u] || banned[e.v] {
                    len[eid] = f64::INFINITY;
                }
            }
            let t = dijkstra(g, spur_node, &len);
            if t.dist[dst].is_finite() {
                if let Some(spur) = t.path_nodes(dst) {
                    let mut total = root.clone();
                    total.extend_from_slice(&spur[1..]);
                    if !paths.contains(&total) && !candidates.contains(&total) {
                        candidates.push(total);
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by_key(|p| p.len());
        paths.push(candidates.remove(0));
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn apsp_matches_bfs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let all = apsp_unweighted(&g);
        for u in 0..4 {
            assert_eq!(all[u], bfs_distances(&g, u));
        }
    }

    #[test]
    fn average_path_length_of_cycle() {
        // C4: distances from any node are 1,1,2 -> average 4/3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_path() {
        assert_eq!(diameter(&path_graph(6)), Some(5));
    }

    #[test]
    fn disconnected_has_no_apl() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        assert!(average_path_length(&g).is_none());
        assert!(diameter(&g).is_none());
    }

    #[test]
    fn dijkstra_respects_weights() {
        // Triangle where the direct 0-2 edge is expensive.
        let mut g = Graph::new(3);
        let e01 = g.add_unit_edge(0, 1);
        let e12 = g.add_unit_edge(1, 2);
        let e02 = g.add_unit_edge(0, 2);
        let mut len = vec![0.0; 3];
        len[e01] = 1.0;
        len[e12] = 1.0;
        len[e02] = 5.0;
        let t = dijkstra(&g, 0, &len);
        assert!((t.dist[2] - 2.0).abs() < 1e-12);
        assert_eq!(t.path_nodes(2).unwrap(), vec![0, 1, 2]);
        assert_eq!(t.path_edges(2).unwrap().len(), 2);
    }

    #[test]
    fn dijkstra_path_to_self_is_empty() {
        let g = path_graph(3);
        let t = dijkstra(&g, 1, &vec![1.0; g.num_edges()]);
        assert_eq!(t.path_edges(1).unwrap(), Vec::<usize>::new());
        assert_eq!(t.path_nodes(1).unwrap(), vec![1]);
    }

    #[test]
    fn k_shortest_paths_on_cycle() {
        // C4 between opposite corners has exactly two 2-hop paths.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let ps = k_shortest_paths(&g, 0, 2, 4);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].len(), 3);
        assert_eq!(ps[1].len(), 3);
        assert_ne!(ps[0], ps[1]);
    }

    #[test]
    fn k_shortest_paths_simple_and_ordered() {
        let g = Graph::from_edges(
            5,
            &[(0, 1), (1, 4), (0, 2), (2, 3), (3, 4), (0, 4)],
        );
        let ps = k_shortest_paths(&g, 0, 4, 3);
        assert_eq!(ps.len(), 3);
        // Ordered by hop count: 1-hop, 2-hop, 3-hop.
        assert!(ps[0].len() <= ps[1].len() && ps[1].len() <= ps[2].len());
        for p in &ps {
            // simple paths: no repeated nodes
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), p.len());
        }
    }
}
